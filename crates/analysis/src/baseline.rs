//! Baseline (suppression) files for `aodb-lint`.
//!
//! A baseline lets CI ratchet: pre-existing or deliberately-accepted
//! findings are listed once, with a justification, and everything *not*
//! listed fails the build. Two properties keep the ratchet honest:
//!
//! * every entry must carry a `reason` — suppressions are reviewable
//!   decisions, not noise control;
//! * an entry that no longer matches any finding is itself an error
//!   (stale suppression), so the baseline can only shrink as code heals.
//!
//! The format is a TOML subset parsed by hand (no new dependencies):
//!
//! ```toml
//! # comment
//! [[suppress]]
//! rule = "declaration-drift-missing"   # required
//! reason = "deliberate dirty fixture"  # required
//! file = "tests/enforcement.rs"        # optional, path suffix match
//! item = "handle"                      # optional, enclosing fn name
//! contains = "Undeclared"              # optional, substring of detail/excerpt
//! ```
//!
//! Entries key on `rule + file + item` (+ `contains`), never on line
//! numbers: an exact-line key silently goes stale whenever an unrelated
//! edit above it shifts the file, which punishes bystander PRs. A `line`
//! key is therefore rejected with a migration hint.

use std::fmt;
use std::path::PathBuf;

use crate::lint::{Finding, Rule};

/// One `[[suppress]]` entry.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Which rule this suppresses.
    pub rule: Rule,
    /// Human justification (required).
    pub reason: String,
    /// Path-suffix filter (`/`-separated), if any.
    pub file: Option<String>,
    /// Enclosing-item (function name) filter, if any.
    pub item: Option<String>,
    /// Substring filter against the finding's detail and excerpt.
    pub contains: Option<String>,
    /// Line of the entry in the baseline file (for stale reporting).
    pub defined_at: u32,
}

impl Suppression {
    /// Does this entry suppress the given finding?
    pub fn matches(&self, f: &Finding) -> bool {
        if f.rule != self.rule {
            return false;
        }
        if let Some(suffix) = &self.file {
            let path = f.file.to_string_lossy().replace('\\', "/");
            if !path.ends_with(suffix.trim_start_matches('/')) {
                return false;
            }
        }
        if let Some(item) = &self.item {
            if f.item.as_deref() != Some(item.as_str()) {
                return false;
            }
        }
        if let Some(sub) = &self.contains {
            if !f.detail.contains(sub.as_str()) && !f.excerpt.contains(sub.as_str()) {
                return false;
            }
        }
        true
    }
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Suppression>,
    /// Where the baseline was loaded from (for error reporting).
    pub path: PathBuf,
}

/// A malformed baseline file (bad key, missing field, unknown rule).
#[derive(Debug)]
pub struct BaselineError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses baseline text. Unknown keys and entries missing `rule` or
    /// `reason` are hard errors: a suppression that silently matches
    /// nothing (or everything) defeats the ratchet.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries: Vec<Suppression> = Vec::new();
        let mut current: Option<(u32, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[suppress]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unknown section `{line}` (only [[suppress]] is valid)"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(BaselineError {
                    line: lineno,
                    message: "key outside a [[suppress]] entry".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => {
                    let name = parse_string(value, lineno)?;
                    partial.rule = Some(Rule::from_name(&name).ok_or(BaselineError {
                        line: lineno,
                        message: format!("unknown rule `{name}`"),
                    })?);
                }
                "reason" => partial.reason = Some(parse_string(value, lineno)?),
                "file" => partial.file = Some(parse_string(value, lineno)?),
                "contains" => partial.contains = Some(parse_string(value, lineno)?),
                "item" => partial.item = Some(parse_string(value, lineno)?),
                "line" => {
                    return Err(BaselineError {
                        line: lineno,
                        message: "`line` keys are no longer supported (they go stale on \
                                  unrelated edits) — use `item = \"<enclosing fn>\"` instead"
                            .to_string(),
                    });
                }
                other => {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }
        Ok(Baseline {
            entries,
            path: PathBuf::new(),
        })
    }

    /// Loads and parses a baseline file from disk.
    pub fn load(path: &std::path::Path) -> Result<Baseline, BaselineError> {
        let text = std::fs::read_to_string(path).map_err(|e| BaselineError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let mut b = Baseline::parse(&text)?;
        b.path = path.to_path_buf();
        Ok(b)
    }

    /// Splits findings into (unsuppressed, stale entries). A finding is
    /// suppressed by the first matching entry; an entry matching zero
    /// findings is stale and must be removed from the baseline.
    pub fn apply<'a>(&'a self, findings: &[Finding]) -> (Vec<Finding>, Vec<&'a Suppression>) {
        let mut used = vec![false; self.entries.len()];
        let mut remaining = Vec::new();
        'findings: for f in findings {
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.matches(f) {
                    used[i] = true;
                    continue 'findings;
                }
            }
            remaining.push(f.clone());
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter_map(|(e, used)| (!used).then_some(e))
            .collect();
        (remaining, stale)
    }
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<Rule>,
    reason: Option<String>,
    file: Option<String>,
    item: Option<String>,
    contains: Option<String>,
}

impl PartialEntry {
    fn finish(self, at: u32) -> Result<Suppression, BaselineError> {
        let rule = self.rule.ok_or(BaselineError {
            line: at,
            message: "entry is missing required key `rule`".to_string(),
        })?;
        let reason = self.reason.filter(|r| !r.is_empty()).ok_or(BaselineError {
            line: at,
            message: "entry is missing required key `reason` (justify every suppression)"
                .to_string(),
        })?;
        Ok(Suppression {
            rule,
            reason,
            file: self.file,
            item: self.item,
            contains: self.contains,
            defined_at: at,
        })
    }
}

/// Strips a trailing `# comment`, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses a double-quoted TOML string with basic escapes.
fn parse_string(value: &str, line: u32) -> Result<String, BaselineError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(BaselineError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32, detail: &str) -> Finding {
        Finding {
            rule,
            file: PathBuf::from(file),
            line,
            excerpt: String::new(),
            detail: detail.to_string(),
            item: None,
            class: None,
        }
    }

    #[test]
    fn parses_and_matches() {
        let b = Baseline::parse(
            "# workspace baseline\n\
             [[suppress]]\n\
             rule = \"declaration-drift-missing\"  # the rule\n\
             reason = \"deliberate dirty actor for the debug-enforcement test\"\n\
             file = \"tests/enforcement.rs\"\n\
             contains = \"Undeclared\"\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 1);
        let hit = finding(
            Rule::DeclarationDriftMissing,
            "/repo/crates/analysis/tests/enforcement.rs",
            58,
            "sends `Undeclared` without a declaration",
        );
        let miss = finding(
            Rule::DeclarationDriftMissing,
            "/repo/crates/shm/src/gateway.rs",
            58,
            "sends `Undeclared` without a declaration",
        );
        let (rest, stale) = b.apply(&[hit, miss]);
        assert_eq!(rest.len(), 1);
        assert!(rest[0].file.ends_with("gateway.rs"));
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let b = Baseline::parse(
            "[[suppress]]\n\
             rule = \"persistence-hazard\"\n\
             reason = \"was fixed long ago\"\n",
        )
        .unwrap();
        let (rest, stale) = b.apply(&[]);
        assert!(rest.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].defined_at, 1);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Baseline::parse(
            "[[suppress]]\n\
             rule = \"reply-leak\"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        assert!(
            Baseline::parse("[[suppress]]\nrule = \"no-such-rule\"\nreason = \"x\"\n").is_err()
        );
        assert!(Baseline::parse(
            "[[suppress]]\nrule = \"reply-leak\"\nreason = \"x\"\nseverity = \"low\"\n"
        )
        .is_err());
    }

    #[test]
    fn item_filter_and_comments_in_strings() {
        let b = Baseline::parse(
            "[[suppress]]\n\
             rule = \"reply-leak\"\n\
             reason = \"has a # inside\"\n\
             item = \"handle\"\n",
        )
        .unwrap();
        assert_eq!(b.entries[0].reason, "has a # inside");
        let mut in_handle = finding(Rule::ReplyLeak, "a.rs", 7, "");
        in_handle.item = Some("handle".to_string());
        let mut in_other = finding(Rule::ReplyLeak, "a.rs", 8, "");
        in_other.item = Some("drain".to_string());
        let (rest, stale) = b.apply(&[in_handle, in_other]);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].item.as_deref(), Some("drain"));
        assert!(stale.is_empty());
    }

    #[test]
    fn line_key_is_rejected_with_migration_hint() {
        let err = Baseline::parse(
            "[[suppress]]\n\
             rule = \"reply-leak\"\n\
             reason = \"x\"\n\
             line = 7\n",
        )
        .unwrap_err();
        assert!(err.message.contains("item"), "{err}");
    }

    #[test]
    fn legacy_rule_alias_still_parses() {
        let b = Baseline::parse(
            "[[suppress]]\n\
             rule = \"std-sync-where-parking-lot\"\n\
             reason = \"alias for std-sync-primitive\"\n",
        )
        .unwrap();
        assert_eq!(b.entries[0].rule, Rule::StdSyncPrimitive);
    }
}
