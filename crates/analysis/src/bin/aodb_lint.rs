//! `aodb-lint` — static checks for the actor workspace.
//!
//! ```text
//! aodb-lint [--graph <edge-list>] [--dot <path>] [--src <dir>]
//!           [--baseline <file>] [--json] [--lock-dot <path>]
//!           [--no-lint] [--no-verify] [--no-lockcheck]
//!           [--no-replaycheck] [--no-schemacheck] [--emit-baseline]
//!           [--schema-lock <file>] [--write-schema-lock <path>]
//! ```
//!
//! With no arguments: builds the whole-workspace call graph from the
//! crates' declared topologies, rejects synchronous-call cycles, runs
//! the turn-discipline source lint, runs the aodb-verify dataflow
//! passes (declaration drift, persistence hazards, reply obligations)
//! over the whole workspace tree — `src/`, `tests/`, `examples/` and
//! `benches/` alike — runs the aodb-lockcheck passes (lock-order
//! cycles, guards held across blocking work) over the runtime substrate
//! (`crates/{runtime,store,chaos}/src`), runs the aodb-replaycheck
//! determinism passes (nondet-in-turn, unordered-persisted-state,
//! ambient-clock) over the actor crates (`crates/{shm,cattle,core}/src`
//! — bench and test harness code is deliberately outside those roots),
//! and runs the aodb-schemacheck passes (schema-drift against the
//! committed `schema.lock`, schema-unversioned, ack-before-commit) over
//! the persisted-state crates (`crates/{shm,cattle,core,store}/src`).
//! Exits nonzero on any violation.
//!
//! * `--graph <file>` — analyze a fixture edge list (`FROM call|send TO`
//!   per line) instead of the compiled-in workspace topology.
//! * `--dot <path>` — write the graph as Graphviz DOT (`-` for stdout).
//! * `--src <dir>` — root for the source passes (default: the workspace
//!   root, so crate `tests/` and `examples/` are covered; may be
//!   repeated).
//! * `--baseline <file>` — suppression file (`[[suppress]]` entries with
//!   mandatory `rule`/`reason`); non-matching findings still fail, and a
//!   baseline entry that matches nothing fails as *stale*.
//! * `--json` — emit findings as JSON lines on stdout; every rule emits
//!   the same `{rule, file, line, class, message}` record shape.
//! * `--lock-dot <path>` — write the lock-order graph as DOT (`-` for
//!   stdout).
//! * `--no-lint` — skip the turn-discipline source lint.
//! * `--no-verify` — skip the dataflow verify passes.
//! * `--no-lockcheck` — skip the lock-order/blocking passes.
//! * `--no-replaycheck` — skip the determinism passes.
//! * `--no-schemacheck` — skip the persisted-format / ack-durability
//!   passes.
//! * `--schema-lock <file>` — lockfile for the schema-drift check
//!   (default: `schema.lock` at the workspace root, when present; with
//!   no lockfile the drift check is skipped and only the unversioned
//!   and ack rules run).
//! * `--write-schema-lock <path>` — regenerate the lockfile from the
//!   current corpus (the layout-change workflow), then continue.
//! * `--emit-baseline` — after the summary, print ready-to-paste
//!   `[[suppress]]` TOML skeletons (with empty `reason = ""`) for every
//!   active finding, so accepting a finding into the baseline is a
//!   paste-plus-justify edit instead of hand transcription.

use std::path::PathBuf;
use std::process::ExitCode;

use aodb_analysis::{
    lint_tree, lockcheck_tree, replaycheck_tree, schema, schemacheck_corpus, verify_tree,
    workspace_graph, Baseline, CallGraph, Corpus, Finding, SchemaLock,
};

struct Options {
    graph_file: Option<PathBuf>,
    dot: Option<PathBuf>,
    lock_dot: Option<PathBuf>,
    src: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    run_lint: bool,
    run_verify: bool,
    run_lockcheck: bool,
    run_replaycheck: bool,
    run_schemacheck: bool,
    schema_lock: Option<PathBuf>,
    write_schema_lock: Option<PathBuf>,
    emit_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        graph_file: None,
        dot: None,
        lock_dot: None,
        src: Vec::new(),
        baseline: None,
        json: false,
        run_lint: true,
        run_verify: true,
        run_lockcheck: true,
        run_replaycheck: true,
        run_schemacheck: true,
        schema_lock: None,
        write_schema_lock: None,
        emit_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graph" => {
                let v = args.next().ok_or("--graph needs a file argument")?;
                opts.graph_file = Some(PathBuf::from(v));
            }
            "--dot" => {
                let v = args.next().ok_or("--dot needs a path argument")?;
                opts.dot = Some(PathBuf::from(v));
            }
            "--lock-dot" => {
                let v = args.next().ok_or("--lock-dot needs a path argument")?;
                opts.lock_dot = Some(PathBuf::from(v));
            }
            "--src" => {
                let v = args.next().ok_or("--src needs a directory argument")?;
                opts.src.push(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a file argument")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--json" => opts.json = true,
            "--no-lint" => opts.run_lint = false,
            "--no-verify" => opts.run_verify = false,
            "--no-lockcheck" => opts.run_lockcheck = false,
            "--no-replaycheck" => opts.run_replaycheck = false,
            "--no-schemacheck" => opts.run_schemacheck = false,
            "--schema-lock" => {
                let v = args.next().ok_or("--schema-lock needs a file argument")?;
                opts.schema_lock = Some(PathBuf::from(v));
            }
            "--write-schema-lock" => {
                let v = args
                    .next()
                    .ok_or("--write-schema-lock needs a path argument")?;
                opts.write_schema_lock = Some(PathBuf::from(v));
            }
            "--emit-baseline" => opts.emit_baseline = true,
            "--help" | "-h" => {
                println!(
                    "aodb-lint [--graph <edge-list>] [--dot <path>] [--src <dir>] \
                     [--baseline <file>] [--json] [--lock-dot <path>] \
                     [--no-lint] [--no-verify] [--no-lockcheck] \
                     [--no-replaycheck] [--no-schemacheck] [--emit-baseline] \
                     [--schema-lock <file>] [--write-schema-lock <path>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The roots the lockcheck passes audit. A workspace root is narrowed to
/// the runtime-substrate crates' `src/` trees (application handlers and
/// test code follow different disciplines, checked by the other passes);
/// any other root — a fixture directory in the analyzer's own tests — is
/// audited as-is.
fn lockcheck_roots(roots: &[PathBuf]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for root in roots {
        if root.join("crates/runtime").is_dir() {
            for krate in ["runtime", "store", "chaos"] {
                let src = root.join("crates").join(krate).join("src");
                if src.is_dir() {
                    out.push(src);
                }
            }
        } else {
            out.push(root.clone());
        }
    }
    out
}

/// The roots the replaycheck passes audit. A workspace root is narrowed
/// to the actor crates' `src/` trees — turn determinism is an actor-code
/// discipline; bench and test harnesses may freely read clocks and RNG —
/// while any other root (fixture directories) is audited as-is.
fn replaycheck_roots(roots: &[PathBuf]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for root in roots {
        if root.join("crates/runtime").is_dir() {
            for krate in ["shm", "cattle", "core"] {
                let src = root.join("crates").join(krate).join("src");
                if src.is_dir() {
                    out.push(src);
                }
            }
        } else {
            out.push(root.clone());
        }
    }
    out
}

/// The roots the schemacheck passes audit. A workspace root is narrowed
/// to the crates that define persisted state or on-disk formats —
/// actors plus the store engine; any other root (fixture directories)
/// is audited as-is.
fn schemacheck_roots(roots: &[PathBuf]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for root in roots {
        if root.join("crates/runtime").is_dir() {
            for krate in ["shm", "cattle", "core", "store"] {
                let src = root.join("crates").join(krate).join("src");
                if src.is_dir() {
                    out.push(src);
                }
            }
        } else {
            out.push(root.clone());
        }
    }
    out
}

/// The workspace root, resolved relative to this crate's build-time
/// location so the binary works from any working directory. The root
/// (not `crates/`) is the default so top-level `examples/`, integration
/// `tests/`, and bench code are linted too.
fn default_src_root() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.parent()?.parent()?.to_path_buf();
    root.is_dir().then_some(root)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn emit(findings: &[Finding], json: bool) {
    for f in findings {
        if json {
            // Uniform record across every rule: lockcheck rules carry
            // their lock class, the others their enclosing item.
            let class = f.class.as_deref().or(f.item.as_deref()).unwrap_or("");
            println!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"class\":{},\"message\":{}}}",
                json_str(f.rule.name()),
                json_str(&f.file.to_string_lossy()),
                f.line,
                json_str(class),
                json_str(&f.detail),
            );
        } else {
            eprintln!("{f}");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aodb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let graph = match &opts.graph_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("aodb-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match CallGraph::parse_edge_list(&text) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("aodb-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => workspace_graph(),
    };

    if let Some(dot_path) = &opts.dot {
        let dot = graph.to_dot();
        if dot_path.as_os_str() == "-" {
            print!("{dot}");
        } else if let Err(e) = std::fs::write(dot_path, dot) {
            eprintln!("aodb-lint: cannot write {}: {e}", dot_path.display());
            return ExitCode::from(2);
        }
    }

    let baseline = match &opts.baseline {
        Some(path) => match Baseline::load(path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("aodb-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut violations = 0usize;

    println!(
        "call graph: {} actor types, {} declared edges",
        graph.nodes().len(),
        graph.edges().len()
    );
    let cycles = graph.call_cycles();
    if cycles.is_empty() {
        println!("reentrancy: no synchronous-call cycles — topology is deadlock-free");
    } else {
        for cycle in &cycles {
            violations += 1;
            eprintln!(
                "reentrancy deadlock: synchronous call cycle: {} -> {}",
                cycle.join(" -> "),
                cycle[0]
            );
        }
    }

    let roots = if opts.src.is_empty() {
        match default_src_root() {
            Some(r) => vec![r],
            None => {
                eprintln!("aodb-lint: cannot locate the workspace root (pass --src)");
                return ExitCode::from(2);
            }
        }
    } else {
        opts.src.clone()
    };

    // Collect source-pass findings, then apply the baseline once across
    // all of them so one file can suppress any pass's finding.
    let mut findings: Vec<Finding> = Vec::new();

    if opts.run_lint {
        for root in &roots {
            match lint_tree(root) {
                Ok(f) => findings.extend(f),
                Err(e) => {
                    eprintln!("aodb-lint: lint failed under {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    if opts.run_verify {
        match verify_tree(&roots) {
            Ok(f) => {
                println!("aodb-verify: {} raw finding(s) across the corpus", f.len());
                findings.extend(f);
            }
            Err(e) => {
                eprintln!("aodb-lint: verify failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run_lockcheck {
        match lockcheck_tree(&lockcheck_roots(&roots)) {
            Ok(analysis) => {
                println!(
                    "aodb-lockcheck: {} lock class(es), {} held-while-acquiring edge(s), \
                     {} raw finding(s)",
                    analysis.graph.nodes().len(),
                    analysis.graph.edges().len(),
                    analysis.findings.len()
                );
                if let Some(path) = &opts.lock_dot {
                    let dot = analysis.graph.to_dot();
                    if path.as_os_str() == "-" {
                        print!("{dot}");
                    } else if let Err(e) = std::fs::write(path, dot) {
                        eprintln!("aodb-lint: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                findings.extend(analysis.findings);
            }
            Err(e) => {
                eprintln!("aodb-lint: lockcheck failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run_replaycheck {
        match replaycheck_tree(&replaycheck_roots(&roots)) {
            Ok(f) => {
                println!(
                    "aodb-replaycheck: {} raw finding(s) across the actor crates",
                    f.len()
                );
                findings.extend(f);
            }
            Err(e) => {
                eprintln!("aodb-lint: replaycheck failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run_schemacheck || opts.write_schema_lock.is_some() {
        let corpus = match Corpus::load(&schemacheck_roots(&roots)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("aodb-lint: schemacheck failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(path) = &opts.write_schema_lock {
            let lock = schema::compute_lock(&corpus);
            if let Err(e) = std::fs::write(path, lock.render()) {
                eprintln!("aodb-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "aodb-schemacheck: wrote {} layout fingerprint(s) to {}",
                lock.entries.len(),
                path.display()
            );
        }
        if opts.run_schemacheck {
            // Lock resolution: explicit flag, else the file just written,
            // else `schema.lock` at a source root when one exists. With
            // no lockfile the drift check is skipped (fixture trees);
            // the unversioned and ack rules always run.
            let lock_path = opts
                .schema_lock
                .clone()
                .or_else(|| opts.write_schema_lock.clone())
                .or_else(|| {
                    roots.iter().find_map(|r| {
                        let p = r.join("schema.lock");
                        p.is_file().then_some(p)
                    })
                });
            let lock = match &lock_path {
                Some(path) => match SchemaLock::load(path) {
                    Ok(l) => Some(l),
                    Err(e) => {
                        eprintln!("aodb-lint: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    println!("aodb-schemacheck: no schema.lock found — drift check skipped");
                    None
                }
            };
            let f = schemacheck_corpus(&corpus, lock.as_ref());
            println!(
                "aodb-schemacheck: {} layout(s) fingerprinted, {} raw finding(s)",
                schema::extract_entries(&corpus).len(),
                f.len()
            );
            findings.extend(f);
        }
    }

    let (active, stale): (Vec<Finding>, Vec<_>) = match &baseline {
        Some(b) => {
            let (remaining, stale) = b.apply(&findings);
            (remaining, stale)
        }
        None => (findings, Vec::new()),
    };

    emit(&active, opts.json);
    violations += active.len();

    for entry in &stale {
        violations += 1;
        eprintln!(
            "{}:{}: stale baseline entry [{}] (\"{}\") matches no finding — remove it",
            baseline
                .as_ref()
                .map(|b| b.path.display().to_string())
                .unwrap_or_default(),
            entry.defined_at,
            entry.rule,
            entry.reason
        );
    }

    println!(
        "source passes: {} active finding(s), {} suppressed, {} stale baseline entr(ies)",
        active.len(),
        baseline
            .as_ref()
            .map(|b| b.entries.len() - stale.len())
            .unwrap_or(0),
        stale.len()
    );

    if opts.emit_baseline && !active.is_empty() {
        // One skeleton per (rule, file, item) — the baseline's own match
        // key — so repeated findings in one function collapse.
        let mut seen: Vec<(String, String, String)> = Vec::new();
        println!("# ready-to-paste baseline skeletons — fill in every `reason`:");
        for f in &active {
            let file = f.file.to_string_lossy().to_string();
            let item = f.item.clone().unwrap_or_default();
            let key = (f.rule.name().to_string(), file.clone(), item.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            println!();
            println!("[[suppress]]");
            println!("rule = \"{}\"", f.rule.name());
            println!("file = \"{file}\"");
            if !item.is_empty() {
                println!("item = \"{item}\"");
            }
            println!("reason = \"\"");
        }
    }

    if violations > 0 {
        eprintln!("aodb-lint: {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("aodb-lint: clean");
        ExitCode::SUCCESS
    }
}
