//! `aodb-lint` — static checks for the actor workspace.
//!
//! ```text
//! aodb-lint [--graph <edge-list>] [--dot <path>] [--src <dir>] [--no-lint]
//! ```
//!
//! With no arguments: builds the whole-workspace call graph from the
//! crates' declared topologies, rejects synchronous-call cycles, and runs
//! the turn-discipline source lint over `crates/*/src`. Exits nonzero on
//! any violation.
//!
//! * `--graph <file>` — analyze a fixture edge list (`FROM call|send TO`
//!   per line) instead of the compiled-in workspace topology.
//! * `--dot <path>` — write the graph as Graphviz DOT (`-` for stdout).
//! * `--src <dir>` — root for the source lint (default: the workspace's
//!   `crates/` directory; may be repeated).
//! * `--no-lint` — skip the source lint (graph checks only).

use std::path::PathBuf;
use std::process::ExitCode;

use aodb_analysis::{lint_tree, workspace_graph, CallGraph};

struct Options {
    graph_file: Option<PathBuf>,
    dot: Option<PathBuf>,
    src: Vec<PathBuf>,
    run_lint: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        graph_file: None,
        dot: None,
        src: Vec::new(),
        run_lint: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--graph" => {
                let v = args.next().ok_or("--graph needs a file argument")?;
                opts.graph_file = Some(PathBuf::from(v));
            }
            "--dot" => {
                let v = args.next().ok_or("--dot needs a path argument")?;
                opts.dot = Some(PathBuf::from(v));
            }
            "--src" => {
                let v = args.next().ok_or("--src needs a directory argument")?;
                opts.src.push(PathBuf::from(v));
            }
            "--no-lint" => opts.run_lint = false,
            "--help" | "-h" => {
                println!(
                    "aodb-lint [--graph <edge-list>] [--dot <path>] [--src <dir>] [--no-lint]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The workspace `crates/` directory, resolved relative to this crate's
/// build-time location so the binary works from any working directory.
fn default_src_root() -> Option<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let crates = manifest.parent()?.to_path_buf();
    crates.is_dir().then_some(crates)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("aodb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let graph = match &opts.graph_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("aodb-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match CallGraph::parse_edge_list(&text) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("aodb-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => workspace_graph(),
    };

    if let Some(dot_path) = &opts.dot {
        let dot = graph.to_dot();
        if dot_path.as_os_str() == "-" {
            print!("{dot}");
        } else if let Err(e) = std::fs::write(dot_path, dot) {
            eprintln!("aodb-lint: cannot write {}: {e}", dot_path.display());
            return ExitCode::from(2);
        }
    }

    let mut violations = 0usize;

    println!(
        "call graph: {} actor types, {} declared edges",
        graph.nodes().len(),
        graph.edges().len()
    );
    let cycles = graph.call_cycles();
    if cycles.is_empty() {
        println!("reentrancy: no synchronous-call cycles — topology is deadlock-free");
    } else {
        for cycle in &cycles {
            violations += 1;
            eprintln!(
                "reentrancy deadlock: synchronous call cycle: {} -> {}",
                cycle.join(" -> "),
                cycle[0]
            );
        }
    }

    if opts.run_lint {
        let roots = if opts.src.is_empty() {
            match default_src_root() {
                Some(r) => vec![r],
                None => {
                    eprintln!("aodb-lint: cannot locate workspace crates/ (pass --src)");
                    return ExitCode::from(2);
                }
            }
        } else {
            opts.src.clone()
        };
        for root in &roots {
            match lint_tree(root) {
                Ok(findings) => {
                    for f in &findings {
                        violations += 1;
                        eprintln!("{f}");
                    }
                    println!(
                        "turn discipline: {} finding(s) under {}",
                        findings.len(),
                        root.display()
                    );
                }
                Err(e) => {
                    eprintln!("aodb-lint: lint failed under {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    if violations > 0 {
        eprintln!("aodb-lint: {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("aodb-lint: clean");
        ExitCode::SUCCESS
    }
}
