//! Per-function control-flow extraction and dataflow evaluation.
//!
//! Built on the token stream from [`crate::lexer`], this module recovers
//! just enough structure for path-sensitive lints:
//!
//! * **Item model** ([`FileModel`]) — every `impl` block (with its self
//!   type, trait, and trait argument), every `fn` (with its owner, `&mut
//!   self`-ness, and parameter roles), every `Actor` impl's `TYPE_NAME`
//!   and `declared_calls()` entries, and every struct carrying `ReplyTo`
//!   fields. Items are found anywhere, including impls nested inside
//!   test functions.
//! * **Flow tree** ([`Flow`]) — each function body parsed into
//!   sequences, branches (`if`/`else` chains, `match`, `let..else`),
//!   loops, `return`s, and `?` exits. Closure bodies are flattened into
//!   straight-line code: for these lints a closure's tokens *happening*
//!   matters, its exits do not.
//! * **Evaluator** ([`eval_flow`]) — propagates a small state set over
//!   the tree (branches fork and re-merge, loops run zero-or-once) and
//!   reports the state at every function exit.
//!
//! Two analyses live here because they are pure per-function dataflow:
//! the **persistence hazard** check (a `Persisted::get_mut_untracked()`
//! mutation that can reach an exit before any `mutate`/`save`/`flush`)
//! and the **reply obligation** check (a handler of a message carrying
//! `ReplyTo` sinks with a path that never touches the sink). Send-site
//! extraction builds on the same model in [`crate::sendsites`].
//!
//! Soundness limits (by design — see DESIGN.md §9): intra-procedural
//! only, no macro expansion, no type inference. The parser is a
//! recognizer for idiomatic workspace code, not for all of Rust; on
//! unrecognized shapes it degrades to treating tokens as straight-line
//! code, which errs toward *missing* findings, never toward crashing.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};
use crate::lint::{Finding, Rule};

/// Method names that mark `Persisted` state as durably captured. Shared
/// with the replaycheck effect walk, where the same calls are the
/// "persisted write" sinks a tainted value must not reach.
pub(crate) const PERSIST_METHODS: &[&str] = &["mutate", "save", "flush", "persist", "save_state"];

// ---------------------------------------------------------------- model

/// Parsed view of one source file.
pub struct FileModel {
    /// Source path (reporting only).
    pub path: PathBuf,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Raw source lines (1-based access via `line as usize - 1`).
    pub lines: Vec<String>,
    /// Every function with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Every `impl Actor for T` found, with name and declarations.
    pub actors: Vec<ActorInfo>,
    /// Struct name → names of its `ReplyTo<_>` fields.
    pub reply_structs: HashMap<String, Vec<String>>,
    /// Line → `aodb-lint: allow(...)` rule names on that line.
    pub allows: HashMap<u32, Vec<String>>,
}

/// One `impl Actor for T` block.
pub struct ActorInfo {
    /// Rust type identifier (`IngestGateway`).
    pub type_ident: String,
    /// `TYPE_NAME` constant value (`"shm.ingest-gateway"`), if present.
    pub type_name: Option<String>,
    /// Entries parsed out of `declared_calls()`.
    pub decls: Vec<Decl>,
}

/// One `CallDecl` entry from a `declared_calls()` body.
#[derive(Clone, Debug)]
pub struct Decl {
    /// True for `CallDecl::call(..)`, false for `send(..)`/`send_any()`.
    pub is_call: bool,
    /// Target actor type name; `"*"` for `send_any()`.
    pub to: String,
    /// Source line of the entry.
    pub line: u32,
}

/// The impl block owning a method.
#[derive(Clone, Debug)]
pub struct Owner {
    /// Self type identifier (last path segment).
    pub type_ident: String,
    /// Trait identifier for trait impls (`Handler`, `Actor`), else None.
    pub trait_ident: Option<String>,
    /// Last path segment of the trait's first type argument
    /// (`Handler<CollarReport>` → `CollarReport`).
    pub trait_arg: Option<String>,
}

/// One function (or method) with a body.
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Enclosing impl block, if any.
    pub owner: Option<Owner>,
    /// Whether the receiver is `&mut self`.
    pub has_mut_self: bool,
    /// Names of parameters whose type mentions `ActorContext`.
    pub ctx_params: Vec<String>,
    /// First parameter that is neither `self` nor a context (the message
    /// in a `Handler::handle`).
    pub msg_param: Option<String>,
    /// Parsed body.
    pub body: Flow,
    /// Token index range of the body's interior.
    pub body_range: (usize, usize),
    /// Line of the body's closing brace (fall-through exit line).
    pub end_line: u32,
}

// ------------------------------------------------------------ flow tree

/// A sequence of control-flow steps.
#[derive(Debug, Default)]
pub struct Flow(pub Vec<Step>);

/// One step in a [`Flow`].
#[derive(Debug)]
pub enum Step {
    /// Straight-line code: token indices into [`FileModel::toks`].
    Run(Vec<usize>),
    /// A plain `{ .. }` block (or struct literal) in statement position.
    /// Control flow runs straight through, but scope-sensitive analyses
    /// (guard liveness in [`crate::locks`]) need the boundary.
    Scope(Flow),
    /// A fork: `if`/`else` chain, `match`, or `let .. else`.
    Branch {
        /// One flow per arm.
        arms: Vec<Flow>,
        /// True when one arm always runs (`match`, `if` with final
        /// `else`); false when fall-through past all arms is possible.
        exhaustive: bool,
    },
    /// `for`/`while`/`loop` body (evaluated zero-or-once).
    Loop(Flow),
    /// `return expr;` — expr tokens run, then the function exits.
    Return {
        /// Token indices of the returned expression.
        toks: Vec<usize>,
        /// Line of the `return` keyword.
        line: u32,
    },
    /// A `?` operator: the function may exit here with an error.
    Try {
        /// Line of the `?`.
        line: u32,
    },
}

/// How a path left the function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitKind {
    /// Explicit `return`.
    Return,
    /// `?` error propagation.
    Try,
    /// Fell off the end of the body (tail expression).
    End,
}

/// A dataflow state observed at a function exit.
pub struct Exit<S> {
    /// The state on that path.
    pub state: S,
    /// How the path exited.
    pub kind: ExitKind,
    /// Exit line.
    pub line: u32,
}

/// Bound on the per-point state set; beyond this, extra states are
/// dropped (the analyses stay linting-sound: they may miss, not crash).
const MAX_STATES: usize = 32;

/// Evaluates `flow` with the given transfer function over every path,
/// returning the state at each exit. `transfer` mutates a state with the
/// effects of a straight-line token run.
pub fn eval_flow<S: Clone + PartialEq>(
    flow: &Flow,
    init: S,
    end_line: u32,
    transfer: &mut impl FnMut(&mut S, &[usize]),
) -> Vec<Exit<S>> {
    let mut exits = Vec::new();
    let finals = eval_seq(flow, vec![init], &mut exits, transfer);
    for state in finals {
        exits.push(Exit {
            state,
            kind: ExitKind::End,
            line: end_line,
        });
    }
    exits
}

fn eval_seq<S: Clone + PartialEq>(
    flow: &Flow,
    mut states: Vec<S>,
    exits: &mut Vec<Exit<S>>,
    transfer: &mut impl FnMut(&mut S, &[usize]),
) -> Vec<S> {
    for step in &flow.0 {
        match step {
            Step::Run(idxs) => {
                for s in &mut states {
                    transfer(s, idxs);
                }
            }
            Step::Scope(body) => {
                states = eval_seq(body, states, exits, transfer);
            }
            Step::Return { toks, line } => {
                for mut s in states.drain(..) {
                    transfer(&mut s, toks);
                    exits.push(Exit {
                        state: s,
                        kind: ExitKind::Return,
                        line: *line,
                    });
                }
            }
            Step::Try { line } => {
                for s in &states {
                    exits.push(Exit {
                        state: s.clone(),
                        kind: ExitKind::Try,
                        line: *line,
                    });
                }
            }
            Step::Branch { arms, exhaustive } => {
                let mut out: Vec<S> = if *exhaustive {
                    Vec::new()
                } else {
                    states.clone()
                };
                for arm in arms {
                    for s in eval_seq(arm, states.clone(), exits, transfer) {
                        if !out.contains(&s) {
                            out.push(s);
                        }
                    }
                }
                states = out;
            }
            Step::Loop(body) => {
                for s in eval_seq(body, states.clone(), exits, transfer) {
                    if !states.contains(&s) {
                        states.push(s);
                    }
                }
            }
        }
        states.dedup_by(|a, b| a == b);
        states.truncate(MAX_STATES);
        if states.is_empty() {
            break; // every path already exited
        }
    }
    states
}

// --------------------------------------------------------------- parser

impl FileModel {
    /// Lexes and parses one source file.
    pub fn parse(path: &Path, src: &str) -> FileModel {
        let mut model = FileModel {
            path: path.to_path_buf(),
            toks: lex(src),
            lines: src.lines().map(str::to_string).collect(),
            fns: Vec::new(),
            actors: Vec::new(),
            reply_structs: HashMap::new(),
            allows: HashMap::new(),
        };
        for (idx, raw) in src.lines().enumerate() {
            let allows = crate::lint::parse_allows(raw);
            if !allows.is_empty() {
                model.allows.insert(
                    idx as u32 + 1,
                    allows.into_iter().map(str::to_string).collect(),
                );
            }
        }
        let end = model.toks.len();
        let mut parser = Parser { model: &mut model };
        parser.scan_items(0, end, None);
        model.collect_decls();
        model
    }

    /// Post-pass: scan every `declared_calls()` body for `CallDecl`
    /// constructors and attach them to the owning actor.
    fn collect_decls(&mut self) {
        let mut by_type: Vec<(String, Vec<Decl>)> = Vec::new();
        for f in &self.fns {
            if f.name != "declared_calls" {
                continue;
            }
            let Some(owner) = &f.owner else { continue };
            if owner.trait_ident.as_deref() != Some("Actor") {
                continue;
            }
            let mut decls = Vec::new();
            let (start, end) = f.body_range;
            let mut i = start;
            while i < end {
                if self.toks[i].is_ident("CallDecl")
                    && i + 3 < end
                    && self.toks[i + 1].is_punct(':')
                    && self.toks[i + 2].is_punct(':')
                    && self.toks[i + 3].kind == TokKind::Ident
                {
                    let kw = &self.toks[i + 3];
                    let line = kw.line;
                    let target = self.toks[i + 4..end.min(i + 8)]
                        .iter()
                        .find(|t| t.kind == TokKind::Str)
                        .map(|t| t.text.clone());
                    match (kw.text.as_str(), target) {
                        ("call", Some(to)) => decls.push(Decl {
                            is_call: true,
                            to,
                            line,
                        }),
                        ("send", Some(to)) => decls.push(Decl {
                            is_call: false,
                            to,
                            line,
                        }),
                        ("send_any", _) => decls.push(Decl {
                            is_call: false,
                            to: "*".to_string(),
                            line,
                        }),
                        _ => {}
                    }
                    i += 4;
                    continue;
                }
                i += 1;
            }
            by_type.push((owner.type_ident.clone(), decls));
        }
        for (type_ident, decls) in by_type {
            if let Some(actor) = self.actors.iter_mut().find(|a| a.type_ident == type_ident) {
                actor.decls = decls;
            }
        }
    }

    /// True when a finding at `line` is suppressed by an
    /// `aodb-lint: allow(<rule>)` marker on that line or the line above.
    pub fn allowed(&self, line: u32, rule: Rule) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|names| names.iter().any(|n| n == rule.name()))
        })
    }

    /// The raw source line (trimmed) for an excerpt, if in range.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

struct Parser<'m> {
    model: &'m mut FileModel,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> &Tok {
        &self.model.toks[i]
    }

    /// Scans `[i, end)` for items, recursing into `impl`/`mod` bodies.
    fn scan_items(&mut self, mut i: usize, end: usize, owner: Option<&Owner>) {
        while i < end {
            let t = self.tok(i);
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "impl" => i = self.parse_impl(i, end),
                "fn" => i = self.parse_fn(i, end, owner),
                "struct" => i = self.parse_struct(i, end),
                "mod" => {
                    // `mod name { ... }` → recurse; `mod name;` → skip.
                    let mut j = i + 1;
                    while j < end && !self.tok(j).is_punct('{') && !self.tok(j).is_punct(';') {
                        j += 1;
                    }
                    if j < end && self.tok(j).is_punct('{') {
                        let close = self.match_brace(j, end);
                        self.scan_items(j + 1, close, None);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "const" if owner.is_some() => i = self.parse_const(i, end, owner.unwrap()),
                _ => i += 1,
            }
        }
    }

    /// Index just past the `}` matching the `{` at `open`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.tok(i).is_punct('{') {
                depth += 1;
            } else if self.tok(i).is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Skips a balanced `<...>` generics group starting at `i` (which
    /// must be `<`); `->` arrows inside are not closers.
    fn skip_angles(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    fn parse_impl(&mut self, kw: usize, end: usize) -> usize {
        let mut i = kw + 1;
        if i < end && self.tok(i).is_punct('<') {
            i = self.skip_angles(i, end);
        }
        // Header: tokens up to the body `{` at bracket depth 0.
        let head_start = i;
        let mut depth = 0i32;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                break;
            }
            i += 1;
        }
        if i >= end {
            return end;
        }
        let owner = self.impl_owner(head_start, i);
        let open = i;
        let close = self.match_brace(open, end);
        if owner.trait_ident.as_deref() == Some("Actor") {
            self.model.actors.push(ActorInfo {
                type_ident: owner.type_ident.clone(),
                type_name: None,
                decls: Vec::new(),
            });
        }
        self.scan_items(open + 1, close, Some(&owner.clone()));
        close + 1
    }

    /// Splits an impl header into (trait, self type): `Handler<M> for X`.
    fn impl_owner(&self, start: usize, mut end: usize) -> Owner {
        // A trailing `where` clause is not part of either type.
        if let Some(w) = self.depth0_where(start, end) {
            end = w;
        }
        // Find ` for ` at angle depth 0.
        let mut angle = 0i32;
        let mut for_at = None;
        let mut i = start;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && t.is_ident("for") {
                for_at = Some(i);
                break;
            }
            i += 1;
        }
        match for_at {
            Some(f) => Owner {
                type_ident: self.last_depth0_ident(f + 1, end).unwrap_or_default(),
                trait_ident: self.last_depth0_ident(start, f),
                trait_arg: self.first_generic_arg(start, f),
            },
            None => Owner {
                type_ident: self.last_depth0_ident(start, end).unwrap_or_default(),
                trait_ident: None,
                trait_arg: None,
            },
        }
    }

    /// Index of a `where` keyword at angle depth 0, if any.
    fn depth0_where(&self, start: usize, end: usize) -> Option<usize> {
        let mut angle = 0i32;
        let mut i = start;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && t.is_ident("where") {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Last identifier at angle depth 0 in `[start, end)` (the final
    /// path segment of a possibly-generic type).
    fn last_depth0_ident(&self, start: usize, end: usize) -> Option<String> {
        let mut angle = 0i32;
        let mut found = None;
        let mut i = start;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && t.kind == TokKind::Ident {
                found = Some(t.text.clone());
            }
            i += 1;
        }
        found
    }

    /// Last path segment of the first generic argument in `[start, end)`:
    /// `Handler<aodb_core::ReminderFired>` → `ReminderFired`.
    fn first_generic_arg(&self, start: usize, end: usize) -> Option<String> {
        let open = (start..end).find(|&i| self.tok(i).is_punct('<'))?;
        let mut angle = 1i32;
        let mut found = None;
        let mut i = open + 1;
        while i < end && angle > 0 {
            let t = self.tok(i);
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 1 && t.is_punct(',') {
                break;
            } else if angle == 1 && t.kind == TokKind::Ident {
                found = Some(t.text.clone());
            }
            i += 1;
        }
        found
    }

    /// `const TYPE_NAME .. = "x";` and `declared_calls` bodies are the
    /// two impl-level constants the model cares about. `declared_calls`
    /// entries are also scanned here when written as `const CALLS`.
    fn parse_const(&mut self, kw: usize, end: usize, owner: &Owner) -> usize {
        let mut i = kw + 1;
        let is_type_name = i < end && self.tok(i).is_ident("TYPE_NAME");
        // Skip to `;` at brace depth 0 (array literals stay balanced).
        let mut depth = 0i32;
        let start = i;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('{') || t.is_punct('[') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(']') || t.is_punct(')') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            i += 1;
        }
        if is_type_name && owner.trait_ident.as_deref() == Some("Actor") {
            let value = (start..i)
                .map(|j| self.tok(j))
                .find(|t| t.kind == TokKind::Str)
                .map(|t| t.text.clone());
            if let Some(actor) = self
                .model
                .actors
                .iter_mut()
                .rev()
                .find(|a| a.type_ident == owner.type_ident)
            {
                actor.type_name = value;
            }
        }
        i + 1
    }

    fn parse_struct(&mut self, kw: usize, end: usize) -> usize {
        let mut i = kw + 1;
        let Some(name) =
            (i < end && self.tok(i).kind == TokKind::Ident).then(|| self.tok(i).text.clone())
        else {
            return i;
        };
        i += 1;
        if i < end && self.tok(i).is_punct('<') {
            i = self.skip_angles(i, end);
        }
        // Unit / tuple structs carry no named ReplyTo fields we track.
        while i < end
            && !self.tok(i).is_punct('{')
            && !self.tok(i).is_punct(';')
            && !self.tok(i).is_punct('(')
        {
            i += 1;
        }
        if i >= end || !self.tok(i).is_punct('{') {
            return i + 1;
        }
        let close = self.match_brace(i, end);
        let mut fields = Vec::new();
        // Split body on top-level commas; a field whose type mentions
        // ReplyTo is a reply sink.
        let mut seg_start = i + 1;
        let mut depth = 0i32;
        for j in i + 1..=close {
            let t = self.tok(j);
            let top_comma = depth == 0 && t.is_punct(',');
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            }
            if top_comma || j == close {
                if let Some(field) = self.reply_field(seg_start, j) {
                    fields.push(field);
                }
                seg_start = j + 1;
            }
        }
        if !fields.is_empty() {
            self.model.reply_structs.insert(name, fields);
        }
        close + 1
    }

    /// In a field segment `pub name: Type`, returns the field name when
    /// the type mentions `ReplyTo`.
    fn reply_field(&self, start: usize, end: usize) -> Option<String> {
        let colon = (start..end).find(|&i| self.tok(i).is_punct(':'))?;
        if !(colon..end).any(|i| self.tok(i).is_ident("ReplyTo")) {
            return None;
        }
        (start..colon)
            .rev()
            .map(|i| self.tok(i))
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
    }

    fn parse_fn(&mut self, kw: usize, end: usize, owner: Option<&Owner>) -> usize {
        let mut i = kw + 1;
        let Some(name) =
            (i < end && self.tok(i).kind == TokKind::Ident).then(|| self.tok(i).text.clone())
        else {
            return i;
        };
        let fn_line = self.tok(kw).line;
        i += 1;
        if i < end && self.tok(i).is_punct('<') {
            i = self.skip_angles(i, end);
        }
        if i >= end || !self.tok(i).is_punct('(') {
            return i;
        }
        // Parameters: split on top-level commas within the parens.
        let params_open = i;
        let mut depth = 0i32;
        let mut params_close = end.saturating_sub(1);
        while i < end {
            let t = self.tok(i);
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    params_close = i;
                    break;
                }
            }
            i += 1;
        }
        let (has_mut_self, ctx_params, msg_param) =
            self.parse_params(params_open + 1, params_close);
        // Return type / where clause: up to the body `{` or a `;`.
        i = params_close + 1;
        let mut depth = 0i32;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if depth <= 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            i += 1;
        }
        if i >= end || self.tok(i).is_punct(';') {
            return i + 1; // trait method signature without a body
        }
        let open = i;
        let close = self.match_brace(open, end);
        let stmts = StmtParser {
            toks: &self.model.toks,
        };
        let (body, _) = stmts.parse_block(open, close + 1);
        self.model.fns.push(FnItem {
            name,
            line: fn_line,
            owner: owner.cloned(),
            has_mut_self,
            ctx_params,
            msg_param,
            body,
            body_range: (open + 1, close),
            end_line: self.tok(close).line,
        });
        // Items can nest inside function bodies (test-local actors).
        self.scan_items(open + 1, close, None);
        close + 1
    }

    /// Returns (`&mut self` present, ctx param names, message param).
    fn parse_params(&self, start: usize, end: usize) -> (bool, Vec<String>, Option<String>) {
        let mut has_mut_self = false;
        let mut ctx = Vec::new();
        let mut msg = None;
        let mut depth = 0i32;
        let mut seg_start = start;
        let mut handle_seg = |s: usize, e: usize| {
            if s >= e {
                return;
            }
            let idents: Vec<&str> = (s..e)
                .map(|i| self.tok(i))
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if idents.contains(&"self") {
                if idents.contains(&"mut") {
                    has_mut_self = true;
                }
                return;
            }
            let Some(colon) = (s..e).find(|&i| self.tok(i).is_punct(':')) else {
                return;
            };
            let Some(name) = (s..colon)
                .map(|i| self.tok(i))
                .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                .map(|t| t.text.clone())
            else {
                return;
            };
            if (colon..e).any(|i| self.tok(i).is_ident("ActorContext")) {
                ctx.push(name);
            } else if msg.is_none() {
                msg = Some(name);
            }
        };
        let mut i = start;
        while i < end {
            let t = self.tok(i);
            if t.is_punct('-') && i + 1 < end && self.tok(i + 1).is_punct('>') {
                i += 2;
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                handle_seg(seg_start, i);
                seg_start = i + 1;
            }
            i += 1;
        }
        handle_seg(seg_start, end);
        (has_mut_self, ctx, msg)
    }
}

// ------------------------------------------------------- statement parse

/// How a statement sequence terminates.
enum Term {
    /// Started at `{`; consume through the matching `}`.
    Block,
    /// Match-arm expression: stop at a top-level `,` (consumed) or the
    /// match's `}` (not consumed).
    Arm,
}

struct StmtParser<'t> {
    toks: &'t [Tok],
}

impl StmtParser<'_> {
    /// Parses the block whose `{` is at `open`; returns the flow and the
    /// index just past the matching `}`. `end` caps scanning.
    fn parse_block(&self, open: usize, end: usize) -> (Flow, usize) {
        self.parse_seq(open + 1, end, Term::Block)
    }

    fn parse_seq(&self, mut i: usize, end: usize, term: Term) -> (Flow, usize) {
        let mut steps = Vec::new();
        let mut run: Vec<usize> = Vec::new();
        let mut depth = 0i32; // paren/bracket depth within the sequence
        let flush = |run: &mut Vec<usize>, steps: &mut Vec<Step>| {
            if !run.is_empty() {
                steps.push(Step::Run(std::mem::take(run)));
            }
        };
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('}') && depth == 0 {
                flush(&mut run, &mut steps);
                return match term {
                    Term::Block => (Flow(steps), i + 1),
                    Term::Arm => (Flow(steps), i),
                };
            }
            if matches!(term, Term::Arm) && depth == 0 && t.is_punct(',') {
                flush(&mut run, &mut steps);
                return (Flow(steps), i + 1);
            }
            if t.is_punct('{') {
                // Closure body → flatten; plain block / struct literal →
                // a Scope step (exits inside are function exits, but the
                // brace bounds local lifetimes).
                let closure = run
                    .iter()
                    .rev()
                    .map(|&j| &self.toks[j])
                    .find(|t| !t.is_ident("move"))
                    .is_some_and(|t| t.is_punct('|'));
                let (inner, ni) = self.parse_block(i, end);
                if closure {
                    flatten_into(&inner, &mut run);
                } else {
                    flush(&mut run, &mut steps);
                    steps.push(Step::Scope(inner));
                }
                i = ni;
                continue;
            }
            if t.kind == TokKind::Ident && depth == 0 {
                match t.text.as_str() {
                    "if" => {
                        flush(&mut run, &mut steps);
                        let (mut branch_steps, ni, _) = self.parse_if(i, end);
                        steps.append(&mut branch_steps);
                        i = ni;
                        continue;
                    }
                    "match" => {
                        flush(&mut run, &mut steps);
                        let (head, open_b) = self.scan_until_block(i + 1, end);
                        steps.push(Step::Run(head));
                        let (arms, ni) = self.parse_match_arms(open_b, end);
                        steps.push(Step::Branch {
                            arms,
                            exhaustive: true,
                        });
                        i = ni;
                        continue;
                    }
                    "while" | "for" => {
                        flush(&mut run, &mut steps);
                        let (head, open_b) = self.scan_until_block(i + 1, end);
                        steps.push(Step::Run(head));
                        let (body, ni) = self.parse_block(open_b, end);
                        steps.push(Step::Loop(body));
                        i = ni;
                        continue;
                    }
                    "loop" => {
                        flush(&mut run, &mut steps);
                        let (_, open_b) = self.scan_until_block(i + 1, end);
                        let (body, ni) = self.parse_block(open_b, end);
                        steps.push(Step::Loop(body));
                        i = ni;
                        continue;
                    }
                    "return" => {
                        flush(&mut run, &mut steps);
                        let line = t.line;
                        let (expr, ni) = self.scan_return_expr(i + 1, end);
                        steps.push(Step::Return { toks: expr, line });
                        i = ni;
                        continue;
                    }
                    "else" => {
                        // Bare `else` in statement position = `let..else`
                        // diverging arm: runs (and must exit) or not.
                        flush(&mut run, &mut steps);
                        let (_, open_b) = self.scan_until_block(i + 1, end);
                        let (body, ni) = self.parse_block(open_b, end);
                        steps.push(Step::Branch {
                            arms: vec![body],
                            exhaustive: false,
                        });
                        i = ni;
                        continue;
                    }
                    _ => {}
                }
            }
            if t.is_punct('?') {
                run.push(i);
                flush(&mut run, &mut steps);
                steps.push(Step::Try { line: t.line });
                i += 1;
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            run.push(i);
            i += 1;
        }
        flush(&mut run, &mut steps);
        (Flow(steps), end)
    }

    /// Parses an `if` chain starting at the `if` keyword. Returns the
    /// steps (condition run + branch), the next index, and whether the
    /// chain ends in an unconditional `else`.
    fn parse_if(&self, kw: usize, end: usize) -> (Vec<Step>, usize, bool) {
        let (cond, open_b) = self.scan_until_block(kw + 1, end);
        let (then_flow, mut i) = self.parse_block(open_b, end);
        let mut arms = vec![then_flow];
        let mut exhaustive = false;
        if i < end && self.toks[i].is_ident("else") {
            if i + 1 < end && self.toks[i + 1].is_ident("if") {
                let (else_steps, ni, ex) = self.parse_if(i + 1, end);
                arms.push(Flow(else_steps));
                exhaustive = ex;
                i = ni;
            } else {
                let (_, open_e) = self.scan_until_block(i + 1, end);
                let (else_flow, ni) = self.parse_block(open_e, end);
                arms.push(else_flow);
                exhaustive = true;
                i = ni;
            }
        }
        (
            vec![Step::Run(cond), Step::Branch { arms, exhaustive }],
            i,
            exhaustive,
        )
    }

    /// Collects token indices until a `{` at paren/bracket depth 0.
    /// Returns (collected, index of the `{`).
    fn scan_until_block(&self, mut i: usize, end: usize) -> (Vec<usize>, usize) {
        let mut out = Vec::new();
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') && depth == 0 {
                return (out, i);
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            out.push(i);
            i += 1;
        }
        (out, end.saturating_sub(1))
    }

    /// Collects a `return` expression through its `;` (consumed) or up
    /// to the enclosing block's `}` (not consumed).
    fn scan_return_expr(&self, mut i: usize, end: usize) -> (Vec<usize>, usize) {
        let mut out = Vec::new();
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if depth == 0 && t.is_punct(';') {
                return (out, i + 1);
            }
            if depth == 0 && t.is_punct('}') {
                return (out, i);
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            }
            out.push(i);
            i += 1;
        }
        (out, end)
    }

    /// Parses match arms from the `{` at `open` through the matching
    /// `}`; returns (arm flows including pattern tokens, next index).
    fn parse_match_arms(&self, open: usize, end: usize) -> (Vec<Flow>, usize) {
        let mut arms = Vec::new();
        let mut i = open + 1;
        loop {
            // Pattern: scan to `=>` at all-depth 0.
            let mut pattern = Vec::new();
            let mut depth = 0i32;
            let mut found_arrow = false;
            while i < end {
                let t = &self.toks[i];
                if depth == 0 && t.is_punct('}') {
                    return (arms, i + 1);
                }
                if depth == 0 && t.is_punct('=') && i + 1 < end && self.toks[i + 1].is_punct('>') {
                    i += 2;
                    found_arrow = true;
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                }
                pattern.push(i);
                i += 1;
            }
            if !found_arrow {
                return (arms, end);
            }
            let (mut arm, ni) = if i < end && self.toks[i].is_punct('{') {
                let (f, n) = self.parse_block(i, end);
                // A `{}`-bodied arm may omit the comma.
                let n = if n < end && self.toks[n].is_punct(',') {
                    n + 1
                } else {
                    n
                };
                (f, n)
            } else {
                self.parse_seq(i, end, Term::Arm)
            };
            arm.0.insert(0, Step::Run(pattern));
            arms.push(arm);
            i = ni;
        }
    }
}

/// Appends every token index in `flow` (in order) to `out` — used to
/// treat closure bodies as straight-line code.
fn flatten_into(flow: &Flow, out: &mut Vec<usize>) {
    for step in &flow.0 {
        match step {
            Step::Run(idxs) => out.extend_from_slice(idxs),
            Step::Scope(body) => flatten_into(body, out),
            Step::Return { toks, .. } => out.extend_from_slice(toks),
            Step::Try { .. } => {}
            Step::Branch { arms, .. } => {
                for arm in arms {
                    flatten_into(arm, out);
                }
            }
            Step::Loop(body) => flatten_into(body, out),
        }
    }
}

// ------------------------------------------------------------- analyses
//
// The persistence-hazard analysis lives in [`crate::durability`], which
// also owns the ack-before-commit rule — both walk the same
// commit-point seam.

/// Reply-obligation findings for one file. `reply_structs` maps message
/// struct names to their `ReplyTo` field names, corpus-wide.
pub fn reply_findings(
    model: &FileModel,
    reply_structs: &HashMap<String, Vec<String>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if f.name != "handle" {
            continue;
        }
        let Some(owner) = &f.owner else { continue };
        if owner.trait_ident.as_deref() != Some("Handler") {
            continue;
        }
        let Some(msg_type) = &owner.trait_arg else {
            continue;
        };
        let Some(fields) = reply_structs.get(msg_type) else {
            continue;
        };
        // Bitmask of still-unconsumed sinks.
        let all: u32 = (1u32 << fields.len().min(31)) - 1;
        let exits = eval_flow(&f.body, all, f.end_line, &mut |mask, idxs| {
            for &j in idxs {
                let t = &model.toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                if let Some(k) = fields.iter().position(|n| *n == t.text) {
                    *mask &= !(1u32 << k);
                }
            }
        });
        let mut reported: Vec<u32> = Vec::new();
        for exit in exits {
            if exit.kind == ExitKind::Try || exit.state == 0 {
                continue; // `?` propagates an error; 0 = all sinks touched
            }
            if reported.contains(&exit.line) {
                continue;
            }
            reported.push(exit.line);
            if model.allowed(exit.line, Rule::ReplyLeak) {
                continue;
            }
            let leaked: Vec<&str> = fields
                .iter()
                .enumerate()
                .filter(|(k, _)| exit.state & (1 << k) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            findings.push(Finding {
                rule: Rule::ReplyLeak,
                file: model.path.clone(),
                line: exit.line,
                excerpt: model.excerpt(exit.line),
                detail: format!(
                    "handler of `{msg_type}` for `{}` can exit here without delivering or \
                     forwarding reply sink(s) {} — the caller's promise is lost",
                    owner.type_ident,
                    leaked
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
                item: Some(f.name.clone()),
                class: None,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(Path::new("test.rs"), src)
    }

    #[test]
    fn fn_and_owner_extraction() {
        let m = model(
            "impl Handler<Ping> for Gateway {\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) -> u32 { 1 }\n\
             }\n\
             fn free(ctx: &ActorContext<'_>, n: u32) {}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let h = &m.fns[0];
        assert_eq!(h.name, "handle");
        assert!(h.has_mut_self);
        assert_eq!(h.ctx_params, ["ctx"]);
        assert_eq!(h.msg_param.as_deref(), Some("msg"));
        let o = h.owner.as_ref().unwrap();
        assert_eq!(o.type_ident, "Gateway");
        assert_eq!(o.trait_ident.as_deref(), Some("Handler"));
        assert_eq!(o.trait_arg.as_deref(), Some("Ping"));
        assert_eq!(m.fns[1].ctx_params, ["ctx"]);
    }

    #[test]
    fn actor_info_and_decls_via_sendsites_model() {
        let m = model(
            "impl Actor for Cow {\n\
             const TYPE_NAME: &'static str = \"cattle.cow\";\n\
             fn declared_calls() -> &'static [CallDecl] {\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"aodb.index-shard\")];\n\
             CALLS\n\
             }\n\
             }\n",
        );
        assert_eq!(m.actors.len(), 1);
        assert_eq!(m.actors[0].type_ident, "Cow");
        assert_eq!(m.actors[0].type_name.as_deref(), Some("cattle.cow"));
    }

    #[test]
    fn reply_struct_fields() {
        let m = model(
            "pub struct Slaughter {\n\
             pub cow: String,\n\
             pub reply: ReplyTo<Option<Vec<String>>>,\n\
             }\n\
             struct Plain { x: u32 }\n",
        );
        assert_eq!(m.reply_structs.get("Slaughter").unwrap(), &["reply"]);
        assert!(!m.reply_structs.contains_key("Plain"));
    }

    #[test]
    fn nested_impl_inside_test_fn_is_found() {
        let m = model(
            "fn test_body() {\n\
             struct Local;\n\
             impl Actor for Local {\n\
             const TYPE_NAME: &'static str = \"t.local\";\n\
             }\n\
             }\n",
        );
        assert!(m.actors.iter().any(|a| a.type_ident == "Local"));
    }

    #[test]
    fn reply_leak_on_one_path() {
        let mut structs = HashMap::new();
        structs.insert("Ask".to_string(), vec!["reply".to_string()]);
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             if self.ready {\n\
             msg.reply.deliver(self.answer());\n\
             }\n\
             }\n\
             }\n",
        );
        let f = reply_findings(&m, &structs);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ReplyLeak);
    }

    #[test]
    fn reply_stored_or_delivered_on_all_paths_is_clean() {
        let mut structs = HashMap::new();
        structs.insert("Ask".to_string(), vec!["done".to_string()]);
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             if self.busy {\n\
             msg.done.deliver(Outcome::Busy);\n\
             return;\n\
             }\n\
             self.pending.push(Pending { done: Some(msg.done) });\n\
             }\n\
             }\n",
        );
        assert!(reply_findings(&m, &structs).is_empty());
    }
}
