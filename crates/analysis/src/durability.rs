//! Ack-durability dataflow: persistence hazards and ack-before-commit.
//!
//! The runtime's recovery contract is *ack ⇒ durable*: once a caller
//! observes a reply, the turn's state effects must survive a crash.
//! Two per-function analyses enforce the source-level half of that
//! contract, both over the control-flow trees of [`crate::dataflow`]:
//!
//! * **`persistence-hazard`** — a `&mut self` method where a
//!   `get_mut_untracked()` mutation can reach an exit with no
//!   intervening commit-point write. Commit points are the `Persisted`
//!   capture methods (`mutate`/`save`/`flush`/...) *and* the tseries
//!   commit seam: `append_batch` persists the points and the captured
//!   sidecar atomically in the tail record, so a columnar handler that
//!   mutates untracked state and then appends has committed. One
//!   exemption: inside `on_activate`, a mutation whose statement
//!   overlays data derived from `SeriesStore::recover(..)` is the
//!   *product* of recovery, not a new fact — the authoritative copy
//!   already sits in the series store (tracked by a small
//!   recovery-binding taint walk, so the exemption covers exactly the
//!   overlay statements, not the whole function).
//! * **`ack-before-commit`** — a handler path that resolves a `ReplyTo`
//!   sink (`.deliver(..)`) and *then* performs durable-state activity
//!   (a commit-point write, or an untracked mutation). The caller's
//!   promise resolves the instant `deliver` runs — on such a path the
//!   ack leaves the actor while the turn's effects are still volatile.
//!   Delivers inside closure bodies (collector fan-ins, deferred
//!   completions) are excluded: they run after the turn, not during it.
//!
//! Sync-reply tails need no ordering check here: the runtime delivers a
//! sync handler's return value after the body completes, so everything
//! in the body happens before that ack — the tail is covered by
//! `persistence-hazard` alone (an exit with uncommitted state *is* the
//! ack-before-commit of the sync path).

use crate::dataflow::{eval_flow, FileModel, FnItem, PERSIST_METHODS};
use crate::lexer::TokKind;
use crate::lint::{Finding, Rule};

/// Store-write methods that commit state durably beyond the `Persisted`
/// capture methods: the tseries seam commits points + sidecar in one
/// atomic tail record. `append_batch_async` is the group-commit form of
/// the same seam — the captured sidecar rides the WAL frame and the
/// deferred reply resolves only after the group fsyncs, so a handler
/// that mutates untracked state and then calls it has committed (the
/// ack is gated on the durability of exactly this write).
pub(crate) const COMMIT_METHODS: &[&str] = &["append_batch", "append_batch_async"];

/// True when a method name is a commit-point store write.
fn is_commit_method(name: &str) -> bool {
    PERSIST_METHODS.contains(&name) || COMMIT_METHODS.contains(&name)
}

/// Persistence-hazard findings for one file: a `&mut self` method where
/// a `get_mut_untracked()` mutation reaches an exit with no intervening
/// commit-point write (`mutate`/`save`/`flush`/`append_batch`/...).
pub fn persistence_findings(model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if !f.has_mut_self {
            continue;
        }
        let touches =
            (f.body_range.0..f.body_range.1).any(|i| model.toks[i].is_ident("get_mut_untracked"));
        if !touches {
            continue;
        }
        let exempt = overlay_exempt_positions(model, f);
        let exits = eval_flow(&f.body, None::<u32>, f.end_line, &mut |pending, idxs| {
            for &j in idxs {
                let t = &model.toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let method_call = j > 0
                    && model.toks[j - 1].is_punct('.')
                    && model.toks.get(j + 1).is_some_and(|n| n.is_punct('('));
                if !method_call {
                    continue;
                }
                if t.text == "get_mut_untracked" {
                    if !exempt.contains(&j) {
                        *pending = Some(t.line);
                    }
                } else if is_commit_method(&t.text) {
                    *pending = None;
                }
            }
        });
        let mut reported: Vec<u32> = Vec::new();
        for exit in exits {
            let Some(mutation_line) = exit.state else {
                continue;
            };
            if reported.contains(&mutation_line) {
                continue;
            }
            reported.push(mutation_line);
            if model.allowed(exit.line, Rule::PersistenceHazard)
                || model.allowed(mutation_line, Rule::PersistenceHazard)
            {
                continue;
            }
            findings.push(Finding {
                rule: Rule::PersistenceHazard,
                file: model.path.clone(),
                line: exit.line,
                excerpt: model.excerpt(exit.line),
                detail: format!(
                    "`{}` mutates state via get_mut_untracked() on line {mutation_line} but \
                     this exit is reached with no commit-point write \
                     (mutate/save/flush/append_batch) — the store never sees the change",
                    f.name
                ),
                item: Some(f.name.clone()),
                class: None,
            });
        }
    }
    findings
}

/// Ack-before-commit findings for one file: handler paths where a
/// `.deliver(..)` precedes durable-state activity.
pub fn ack_findings(model: &FileModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.fns {
        if f.name != "handle"
            || f.owner.as_ref().and_then(|o| o.trait_ident.as_deref()) != Some("Handler")
        {
            continue;
        }
        let delivers = (f.body_range.0..f.body_range.1).any(|i| model.toks[i].is_ident("deliver"));
        if !delivers {
            continue;
        }
        let closures = closure_regions(model, f);
        let in_closure = |j: usize| closures.iter().any(|&(a, b)| j > a && j < b);
        // Path state: line of the first in-turn deliver, if any.
        // Violations (ack line, commit line) are collected as they are
        // crossed, so one path yields one pair per offending write.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let _ = eval_flow(&f.body, None::<u32>, f.end_line, &mut |ack, idxs| {
            for &j in idxs {
                let t = &model.toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let method_call = j > 0
                    && model.toks[j - 1].is_punct('.')
                    && model.toks.get(j + 1).is_some_and(|n| n.is_punct('('));
                if !method_call {
                    continue;
                }
                if t.text == "deliver" {
                    if !in_closure(j) && ack.is_none() {
                        *ack = Some(t.line);
                    }
                } else if is_commit_method(&t.text) || t.text == "get_mut_untracked" {
                    if let Some(ack_line) = *ack {
                        let pair = (ack_line, t.line);
                        if !pairs.contains(&pair) {
                            pairs.push(pair);
                        }
                    }
                }
            }
        });
        let msg_type = f
            .owner
            .as_ref()
            .and_then(|o| o.trait_arg.clone())
            .unwrap_or_default();
        for (ack_line, commit_line) in pairs {
            if model.allowed(ack_line, Rule::AckBeforeCommit)
                || model.allowed(commit_line, Rule::AckBeforeCommit)
            {
                continue;
            }
            findings.push(Finding {
                rule: Rule::AckBeforeCommit,
                file: model.path.clone(),
                line: commit_line,
                excerpt: model.excerpt(commit_line),
                detail: format!(
                    "handler of `{msg_type}` delivers its reply on line {ack_line} and then \
                     touches durable state here — the caller can observe the ack while \
                     the turn's effects are still volatile; commit before delivering",
                ),
                item: Some(f.name.clone()),
                class: None,
            });
        }
    }
    findings
}

/// Token ranges `(open, close)` of `|..| { .. }` closure bodies inside
/// the function — delivers there run after the turn, not during it.
fn closure_regions(model: &FileModel, f: &FnItem) -> Vec<(usize, usize)> {
    let toks = &model.toks;
    let (start, end) = f.body_range;
    let mut out = Vec::new();
    for j in start..end {
        if !toks[j].is_punct('{') {
            continue;
        }
        let prev = (start..j)
            .rev()
            .map(|k| &toks[k])
            .find(|t| !t.is_ident("move"));
        if !prev.is_some_and(|t| t.is_punct('|')) {
            continue;
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < end {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        out.push((j, k));
    }
    out
}

/// For `on_activate` only: token positions of `get_mut_untracked` calls
/// whose enclosing statement mentions a recovery-tainted binding — the
/// overlay-of-recovery exemption.
fn overlay_exempt_positions(model: &FileModel, f: &FnItem) -> Vec<usize> {
    if f.name != "on_activate" {
        return Vec::new();
    }
    let tainted = recovery_tainted(model, f);
    if tainted.is_empty() {
        return Vec::new();
    }
    let toks = &model.toks;
    let (start, end) = f.body_range;
    let mut out = Vec::new();
    for j in start..end {
        if !toks[j].is_ident("get_mut_untracked") {
            continue;
        }
        // Statement bounds: nearest `;` or brace either side.
        let stmt_start = (start..j)
            .rev()
            .find(|&k| toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}'))
            .map(|k| k + 1)
            .unwrap_or(start);
        let stmt_end = (j..end)
            .find(|&k| toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}'))
            .unwrap_or(end);
        if (stmt_start..stmt_end)
            .any(|k| toks[k].kind == TokKind::Ident && tainted.contains(&toks[k].text))
        {
            out.push(j);
        }
    }
    out
}

/// Fixpoint over `let` bindings: a binding is recovery-tainted when its
/// right-hand side calls `.recover(..)` or mentions another tainted
/// binding. Works for plain `let`, `if let`, and `while let` heads (the
/// RHS scan stops at the `{` that opens the conditional body).
fn recovery_tainted(model: &FileModel, f: &FnItem) -> Vec<String> {
    let toks = &model.toks;
    let (start, end) = f.body_range;
    if !(start..end).any(|i| toks[i].is_ident("recover")) {
        return Vec::new();
    }
    let mut tainted: Vec<String> = Vec::new();
    loop {
        let mut changed = false;
        let mut i = start;
        while i < end {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            // Binder idents up to the top-level `=`.
            let mut binders: Vec<String> = Vec::new();
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut eq: Option<usize> = None;
            while j < end {
                let t = &toks[j];
                if depth == 0
                    && t.is_punct('=')
                    && !toks.get(j + 1).is_some_and(|n| n.is_punct('='))
                {
                    eq = Some(j);
                    break;
                }
                if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    depth -= 1;
                } else if t.kind == TokKind::Ident
                    && !matches!(
                        t.text.as_str(),
                        "mut" | "ref" | "Ok" | "Some" | "Err" | "None"
                    )
                {
                    binders.push(t.text.clone());
                }
                j += 1;
            }
            let Some(eq) = eq else {
                i = j.max(i + 1);
                continue;
            };
            // RHS up to `;` or the body-opening `{`.
            let mut k = eq + 1;
            depth = 0;
            let mut dirty = false;
            while k < end {
                let t = &toks[k];
                if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                if t.kind == TokKind::Ident && (t.text == "recover" || tainted.contains(&t.text)) {
                    dirty = true;
                }
                k += 1;
            }
            if dirty {
                for b in binders {
                    if !tainted.contains(&b) {
                        tainted.push(b);
                        changed = true;
                    }
                }
            }
            i = k.max(i + 1);
        }
        if !changed {
            break;
        }
    }
    tainted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model(src: &str) -> FileModel {
        FileModel::parse(Path::new("test.rs"), src)
    }

    #[test]
    fn persist_hazard_on_early_return() {
        let m = model(
            "impl Handler<W> for A {\n\
             fn handle(&mut self, msg: W, _ctx: &mut ActorContext<'_>) -> R {\n\
             if !self.state.get_mut_untracked().guard.first_time(&msg.id) {\n\
             return R::Skip;\n\
             }\n\
             self.state.mutate(|s| s.n += 1);\n\
             R::Done\n\
             }\n\
             }\n",
        );
        let f = persistence_findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PersistenceHazard);
        assert_eq!(f[0].line, 4); // the `return R::Skip;`
    }

    #[test]
    fn persist_hazard_through_match_arm() {
        let m = model(
            "impl A {\n\
             fn step(&mut self, w: W) -> R {\n\
             self.state.get_mut_untracked().n += 1;\n\
             match w.kind {\n\
             K::Fast => R::Done,\n\
             K::Slow => { self.state.flush(); R::Done }\n\
             }\n\
             }\n\
             }\n",
        );
        let f = persistence_findings(&m);
        // The K::Fast arm falls through with the mutation unpersisted.
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn append_batch_is_a_commit_point() {
        let m = model(
            "impl Handler<Ingest> for Chan {\n\
             fn handle(&mut self, msg: Ingest, ctx: &mut ActorContext<'_>) -> u64 {\n\
             let s = self.state.get_mut_untracked();\n\
             s.total += msg.points.len() as u64;\n\
             let meta = encode_state(&SideCar::capture(s)).unwrap_or_default();\n\
             let _ = series.append_batch(&key, &msg.points, &meta);\n\
             s.total\n\
             }\n\
             }\n",
        );
        assert!(persistence_findings(&m).is_empty());
    }

    #[test]
    fn append_batch_on_one_arm_still_flags_the_other() {
        let m = model(
            "impl A {\n\
             fn step(&mut self) {\n\
             self.state.get_mut_untracked().n += 1;\n\
             if self.columnar {\n\
             let _ = self.series.append_batch(&k, &p, &m);\n\
             }\n\
             }\n\
             }\n",
        );
        assert_eq!(persistence_findings(&m).len(), 1);
    }

    #[test]
    fn append_batch_async_is_a_commit_point() {
        let m = model(
            "impl Handler<Ingest> for Chan {\n\
             fn handle(&mut self, msg: Ingest, ctx: &mut ActorContext<'_>) -> u32 {\n\
             let s = self.state.get_mut_untracked();\n\
             s.total += msg.points.len() as u64;\n\
             let meta = SideCar::capture(s).encode();\n\
             series.append_batch_async(&key, &msg.points, &meta, Box::new(move |r| {\n\
             reply.deliver(accepted);\n\
             }));\n\
             accepted\n\
             }\n\
             }\n",
        );
        assert!(persistence_findings(&m).is_empty());
        assert!(ack_findings(&m).is_empty(), "deferred ack is not in-turn");
    }

    #[test]
    fn recovery_overlay_in_on_activate_is_exempt() {
        let m = model(
            "impl Actor for Chan {\n\
             fn on_activate(&mut self, ctx: &mut ActorContext<'_>) {\n\
             self.state.load_or_default();\n\
             if let Ok(rec) = series.recover(&key) {\n\
             if let Ok(sidecar) = decode_state::<SideCar>(&rec.meta) {\n\
             sidecar.apply(self.state.get_mut_untracked());\n\
             }\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(
            persistence_findings(&m).is_empty(),
            "overlay must be exempt"
        );
    }

    #[test]
    fn non_recovery_mutation_in_on_activate_still_flags() {
        let m = model(
            "impl Actor for Chan {\n\
             fn on_activate(&mut self, ctx: &mut ActorContext<'_>) {\n\
             self.state.get_mut_untracked().n += 1;\n\
             }\n\
             }\n",
        );
        assert_eq!(persistence_findings(&m).len(), 1);
    }

    #[test]
    fn overlay_pattern_outside_on_activate_is_not_exempt() {
        let m = model(
            "impl Handler<W> for Chan {\n\
             fn handle(&mut self, msg: W, ctx: &mut ActorContext<'_>) {\n\
             if let Ok(rec) = series.recover(&key) {\n\
             if let Ok(sidecar) = decode_state::<SideCar>(&rec.meta) {\n\
             sidecar.apply(self.state.get_mut_untracked());\n\
             }\n\
             }\n\
             }\n\
             }\n",
        );
        assert_eq!(persistence_findings(&m).len(), 1);
    }

    #[test]
    fn let_else_diverging_arm_is_a_branch() {
        let m = model(
            "impl A {\n\
             fn step(&mut self) -> R {\n\
             let Some(x) = self.find() else {\n\
             return R::Missing;\n\
             };\n\
             self.state.get_mut_untracked().n = x;\n\
             self.state.save();\n\
             R::Done\n\
             }\n\
             }\n",
        );
        assert!(persistence_findings(&m).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_persistence() {
        let m = model(
            "impl A {\n\
             fn step(&mut self) {\n\
             // aodb-lint: allow(persistence-hazard)\n\
             self.state.get_mut_untracked().n += 1;\n\
             }\n\
             }\n",
        );
        assert!(persistence_findings(&m).is_empty());
    }

    #[test]
    fn deliver_then_mutate_is_ack_before_commit() {
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             msg.reply.deliver(self.answer());\n\
             self.state.mutate(|s| s.served += 1);\n\
             }\n\
             }\n",
        );
        let f = ack_findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AckBeforeCommit);
        assert_eq!(f[0].line, 4); // the mutate after the deliver
    }

    #[test]
    fn mutate_then_deliver_is_clean() {
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             self.state.mutate(|s| s.served += 1);\n\
             msg.reply.deliver(self.answer());\n\
             }\n\
             }\n",
        );
        assert!(ack_findings(&m).is_empty());
    }

    #[test]
    fn deliver_on_early_return_path_does_not_taint_other_path() {
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             if self.done {\n\
             msg.reply.deliver(None);\n\
             return;\n\
             }\n\
             self.state.mutate(|s| s.n += 1);\n\
             msg.reply.deliver(Some(1));\n\
             }\n\
             }\n",
        );
        assert!(ack_findings(&m).is_empty(), "{:?}", ack_findings(&m));
    }

    #[test]
    fn deliver_then_append_batch_is_flagged() {
        let m = model(
            "impl Handler<Ingest> for Chan {\n\
             fn handle(&mut self, msg: Ingest, _ctx: &mut ActorContext<'_>) {\n\
             msg.reply.deliver(Accepted);\n\
             let _ = self.series.append_batch(&k, &msg.points, &meta);\n\
             }\n\
             }\n",
        );
        assert_eq!(ack_findings(&m).len(), 1);
    }

    #[test]
    fn deliver_inside_collector_closure_is_not_an_in_turn_ack() {
        let m = model(
            "impl Handler<Q> for Org {\n\
             fn handle(&mut self, msg: Q, ctx: &mut ActorContext<'_>) {\n\
             let slot = msg.reply.slot();\n\
             let done = Collector::new(n, move |points| {\n\
             slot.deliver(points);\n\
             });\n\
             self.state.mutate(|s| s.queries += 1);\n\
             }\n\
             }\n",
        );
        assert!(ack_findings(&m).is_empty(), "{:?}", ack_findings(&m));
    }

    #[test]
    fn allow_marker_suppresses_ack() {
        let m = model(
            "impl Handler<Ask> for A {\n\
             fn handle(&mut self, msg: Ask, _ctx: &mut ActorContext<'_>) {\n\
             // aodb-lint: allow(ack-before-commit)\n\
             msg.reply.deliver(self.answer());\n\
             self.state.mutate(|s| s.served += 1);\n\
             }\n\
             }\n",
        );
        assert!(ack_findings(&m).is_empty());
    }
}
