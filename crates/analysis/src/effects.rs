//! Nondeterminism-source taxonomy and the per-turn effect walk.
//!
//! This module is the engine under the replaycheck pass
//! ([`crate::replay`]): it classifies where nondeterminism can *enter* a
//! turn and walks each turn function's control-flow tree to decide
//! whether a tainted value *leaves* it through an observable effect.
//!
//! **Sources** (the taxonomy):
//!
//! * unordered-collection iteration — `iter`/`keys`/`values`/`drain`/
//!   `into_iter`/… on a field whose type mentions `HashMap`/`HashSet`
//!   (registered as a class `Owner.field`, lockcheck-style);
//! * RNG — `thread_rng()`, `rand::…`, free `random()`;
//! * thread identity — `thread::current()`;
//! * ambient environment — `env::var`/`env::vars`, `fs::read*`,
//!   `File::open` (reads outside the `Store`/`ActorContext` API);
//! * ambient wall-clock — `Instant::now()`/`SystemTime::now()`; flagged
//!   unconditionally by the `ambient-clock` rule rather than traced,
//!   because time is observable even through control flow.
//!
//! **Sinks**: a send payload (`tell`/`ask`/`ask_with`/`call`/
//! `call_timeout`/`ask_replayable`), a `ReplyTo` resolution
//! (`.deliver(..)` or the handler's reply value), or a persisted write
//! (`mutate`/`save`/`flush`/…). A call to a same-corpus helper that
//! itself sends, delivers, or persists counts as a sink too — one level
//! of `self.`/free-call propagation, matching lockcheck's soundness
//! envelope.
//!
//! The walk is statement-granular: a statement that *uses* a source (or
//! a variable tainted by one) and *contains* a sink is a finding; a
//! `let` whose right-hand side does so taints its binding; `for pat in
//! tainted` taints the loop bindings. Receivers resolve like lockcheck:
//! owner-qualified field first, then corpus-unique field name; an
//! unresolvable receiver is skipped (may miss, never crashes).

use std::collections::{BTreeSet, HashMap};

use crate::dataflow::{FileModel, Flow, FnItem, Step, PERSIST_METHODS};
use crate::lexer::{Tok, TokKind};

/// Type identifiers whose iteration (and serde serialization) order is
/// arbitrary.
pub(crate) const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods whose visit order leaks the collection's internal
/// order. Keyed accessors (`get`, `insert`, `remove`, `contains_key`,
/// `entry`, `len`) are deterministic and deliberately absent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Reply-delivery methods beyond the plain send set.
const REPLY_METHODS: &[&str] = &["deliver"];

/// Extra send methods not in [`crate::sendsites::SITE_METHODS`] (the
/// chaos-replay variant used by retry loops).
const EXTRA_SEND_METHODS: &[&str] = &["ask_replayable"];

// ------------------------------------------------------------- classes

/// Where one unordered class was declared.
pub struct ClassDef {
    /// Owning struct identifier.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// Index into the corpus' file list.
    pub file: usize,
    /// Line of the field declaration.
    pub line: u32,
}

/// Corpus-wide registry of unordered-collection classes (`Owner.field`
/// for every struct field whose type mentions `HashMap`/`HashSet`).
#[derive(Default)]
pub struct UnorderedClasses {
    /// Class id → display name (`Owner.field`).
    pub names: Vec<String>,
    /// Declarations, id-indexed in parallel with `names`.
    pub defs: Vec<ClassDef>,
    by_owner_field: HashMap<(String, String), u16>,
    by_field: HashMap<String, Vec<u16>>,
}

impl UnorderedClasses {
    fn intern(&mut self, owner: &str, field: &str, file: usize, line: u32) -> u16 {
        if let Some(&id) = self
            .by_owner_field
            .get(&(owner.to_string(), field.to_string()))
        {
            return id;
        }
        let id = self.names.len() as u16;
        self.names.push(format!("{owner}.{field}"));
        self.defs.push(ClassDef {
            owner: owner.to_string(),
            field: field.to_string(),
            file,
            line,
        });
        self.by_owner_field
            .insert((owner.to_string(), field.to_string()), id);
        self.by_field.entry(field.to_string()).or_default().push(id);
        id
    }

    /// `(owner, field)` lookup.
    pub fn by_owner_field(&self, owner: &str, field: &str) -> Option<u16> {
        self.by_owner_field
            .get(&(owner.to_string(), field.to_string()))
            .copied()
    }

    /// The unique class with this field name, if unambiguous.
    pub fn unique_field(&self, field: &str) -> Option<u16> {
        match self.by_field.get(field).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }
}

/// True when the token range `[start, end)` mentions an unordered type.
fn mentions_unordered(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && UNORDERED_TYPES.contains(&t.text.as_str()))
}

/// Scans one file for struct fields of unordered type, interning a
/// class for each. `file_idx` tags the declarations for reporting.
pub fn collect_unordered_classes(
    model: &FileModel,
    file_idx: usize,
    classes: &mut UnorderedClasses,
) {
    let toks = &model.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("struct") {
            i = collect_struct_fields(toks, i, file_idx, classes);
            continue;
        }
        i += 1;
    }
}

/// Parses `struct Name { .. }` at the `struct` keyword, interning a
/// class for each unordered-typed named field. Returns the next index.
fn collect_struct_fields(
    toks: &[Tok],
    kw: usize,
    file_idx: usize,
    classes: &mut UnorderedClasses,
) -> usize {
    let mut i = kw + 1;
    let Some(name) =
        (i < toks.len() && toks[i].kind == TokKind::Ident).then(|| toks[i].text.clone())
    else {
        return i;
    };
    i += 1;
    // Skip to the body `{`; unit (`;`) and tuple (`(`) structs carry no
    // named fields we can address as `owner.field`.
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && (t.is_punct('{') || t.is_punct(';') || t.is_punct('(')) {
            break;
        }
        i += 1;
    }
    if i >= toks.len() || !toks[i].is_punct('{') {
        return i + 1;
    }
    let open = i;
    let mut depth = 0i32;
    let mut close = toks.len() - 1;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                close = i;
                break;
            }
        }
        i += 1;
    }
    // Split the body on top-level commas; each `field: Type` segment
    // whose type mentions an unordered type becomes a class.
    let mut seg_start = open + 1;
    let mut nest = 0i32;
    for j in open + 1..=close {
        let t = &toks[j];
        let top_comma = nest == 0 && t.is_punct(',');
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            nest -= 1;
        }
        if top_comma || j == close {
            if let Some(colon) = (seg_start..j).find(|&k| toks[k].is_punct(':')) {
                let is_path = colon < j && toks.get(colon + 1).is_some_and(|t| t.is_punct(':'));
                if !is_path && mentions_unordered(toks, colon + 1, j) {
                    if let Some(field) = (seg_start..colon)
                        .rev()
                        .map(|k| &toks[k])
                        .find(|t| t.kind == TokKind::Ident)
                    {
                        classes.intern(&name, &field.text.clone(), file_idx, field.line);
                    }
                }
            }
            seg_start = j + 1;
        }
    }
    close + 1
}

// ------------------------------------------------------------- helpers

/// Effect summary of one function, for one-level call propagation: does
/// calling it send, deliver a reply, or write persisted state?
#[derive(Clone, Copy, Default)]
pub struct EffectFacts {
    /// Contains a `.tell/.ask/.call/…(` send site.
    pub sends: bool,
    /// Contains a `.deliver(` reply resolution.
    pub delivers: bool,
    /// Contains a `.mutate/.save/.flush/…(` persisted write.
    pub persists: bool,
}

impl EffectFacts {
    /// Any observable effect at all.
    pub fn any(&self) -> bool {
        self.sends || self.delivers || self.persists
    }
}

/// True when `name` is a send-site method (including the replayable
/// variant).
fn is_send_method(name: &str) -> bool {
    crate::sendsites::SITE_METHODS
        .iter()
        .any(|(m, _)| *m == name)
        || EXTRA_SEND_METHODS.contains(&name)
}

/// Scans a function body's raw tokens for effect facts.
pub fn effect_facts(model: &FileModel, f: &FnItem) -> EffectFacts {
    let toks = &model.toks;
    let mut facts = EffectFacts::default();
    for j in f.body_range.0..f.body_range.1 {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method =
            j >= 1 && toks[j - 1].is_punct('.') && toks.get(j + 1).is_some_and(|n| n.is_punct('('));
        if !method {
            continue;
        }
        let name = t.text.as_str();
        if is_send_method(name) {
            facts.sends = true;
        } else if REPLY_METHODS.contains(&name) {
            facts.delivers = true;
        } else if PERSIST_METHODS.contains(&name) {
            facts.persists = true;
        }
    }
    facts
}

// ----------------------------------------------------------- the walk

/// One taint event observed at a sink.
pub struct EffectFinding {
    /// Line of the sink.
    pub line: u32,
    /// What kind of sink was reached (`send payload`, `reply`, …).
    pub sink: String,
    /// Provenance of the taint (`iteration order of Owner.field`, …).
    pub source: String,
    /// Unordered class involved, if the source was iteration.
    pub class: Option<String>,
}

/// A direct ambient-clock read.
pub struct ClockFinding {
    /// Line of the `::now()` call.
    pub line: u32,
    /// The matched path (`Instant::now`).
    pub what: String,
}

/// Dataflow state: tainted local bindings with their provenance (and
/// the class id when the source was unordered iteration).
#[derive(Clone, PartialEq, Default)]
struct TState {
    tainted: Vec<(String, String, Option<u16>)>,
}

/// Walk context for one turn function.
pub(crate) struct EffectCx<'a> {
    pub model: &'a FileModel,
    pub owner: Option<&'a str>,
    pub classes: &'a UnorderedClasses,
    /// Callee name → effect facts (same-file-first resolved in
    /// [`crate::replay`]; here just a flat map for this file's view).
    pub callee_effects: &'a dyn Fn(&str) -> Option<EffectFacts>,
    /// True when the fn is a `Handler::handle` (its reply value is a
    /// sink).
    pub is_handler: bool,
    pub findings: Vec<EffectFinding>,
    pub clocks: Vec<ClockFinding>,
    /// Dedup: (line, sink kind).
    seen: BTreeSet<(u32, String)>,
    /// Union of every binding ever tainted (for the tail-expression
    /// reply check, which runs after the path-sensitive walk).
    all_tainted: Vec<(String, String, Option<u16>)>,
}

const MAX_STATES: usize = 32;

/// What one statement scan observed.
#[derive(Default)]
struct StmtScan {
    /// Direct sources used in the statement.
    sources: Vec<(String, Option<u16>)>,
    /// Sinks present: (line, kind).
    sinks: Vec<(u32, String)>,
    /// `let` binding target, if the statement is a binding.
    binds: Option<String>,
}

impl EffectCx<'_> {
    /// Creates the context.
    pub(crate) fn new<'a>(
        model: &'a FileModel,
        owner: Option<&'a str>,
        classes: &'a UnorderedClasses,
        callee_effects: &'a dyn Fn(&str) -> Option<EffectFacts>,
        is_handler: bool,
    ) -> EffectCx<'a> {
        EffectCx {
            model,
            owner,
            classes,
            callee_effects,
            is_handler,
            findings: Vec::new(),
            clocks: Vec::new(),
            seen: BTreeSet::new(),
            all_tainted: Vec::new(),
        }
    }

    /// Runs the walk over a function body and (for handlers) checks the
    /// tail expression against the union of tainted names.
    pub(crate) fn walk_fn(&mut self, f: &FnItem) {
        walk_seq(self, &f.body, vec![TState::default()]);
        if self.is_handler {
            self.check_tail(f);
        }
    }

    /// Resolves the receiver of an iteration method at token `j` to an
    /// unordered class, or a tainted binding's provenance.
    fn resolve_iter_receiver(&self, s: &TState, j: usize) -> Option<(String, Option<u16>)> {
        let toks = &self.model.toks;
        if j < 2 {
            return None;
        }
        let r = j - 2; // past the `.`
        if toks[r].kind != TokKind::Ident {
            return None;
        }
        let field = toks[r].text.as_str();
        let qualified = r >= 1 && toks[r - 1].is_punct('.');
        let base_self = r >= 2 && qualified && toks[r - 2].is_ident("self");
        if base_self {
            if let Some(owner) = self.owner {
                if let Some(id) = self.classes.by_owner_field(owner, field) {
                    return Some((
                        format!("iteration order of `{}`", self.classes.names[id as usize]),
                        Some(id),
                    ));
                }
                // The owner is known and this field of it is ordered —
                // a same-named unordered field elsewhere is a different
                // class, so the corpus-unique fallback must not fire.
                return None;
            }
        }
        if !qualified {
            if let Some((_, src, class)) = s.tainted.iter().rev().find(|(n, _, _)| n == field) {
                return Some((src.clone(), *class));
            }
        }
        // Closure-parameter or struct-update receivers (`s.live.iter()`
        // inside a `mutate` closure) reach here as `qualified` but not
        // `self`-based: fall back to a corpus-unique field name.
        self.classes.unique_field(field).map(|id| {
            (
                format!("iteration order of `{}`", self.classes.names[id as usize]),
                Some(id),
            )
        })
    }

    /// Scans one statement's tokens for sources, sinks, and bindings.
    fn scan_stmt(&mut self, s: &TState, idxs: &[usize]) -> StmtScan {
        let toks = &self.model.toks;
        let mut scan = StmtScan::default();

        // `let <pattern> = ...` opens a binding: the first
        // lowercase-initial ident in the pattern (`let x`, `let mut x`,
        // `let Some(x)`; a tuple pattern binds only its first name — a
        // documented narrowing, erring toward missed taint).
        if let Some(&first) = idxs.first() {
            if toks[first].is_ident("let") {
                let mut depth = 0i32;
                for &j in &idxs[1..] {
                    let t = &toks[j];
                    if t.is_punct('=') && depth == 0 {
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                        depth -= 1;
                    } else if t.kind == TokKind::Ident
                        && t.text != "mut"
                        && t.text.chars().next().is_some_and(char::is_lowercase)
                    {
                        scan.binds = Some(t.text.clone());
                        break;
                    }
                }
            }
        }

        for (pos, &j) in idxs.iter().enumerate() {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev_dot = j >= 1 && toks[j - 1].is_punct('.');
            let prev_path = j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':');
            let next_paren = toks.get(j + 1).is_some_and(|n| n.is_punct('('));
            let name = t.text.as_str();

            // Ambient clock: `Instant::now()` / `SystemTime::now()`.
            if name == "now" && prev_path && next_paren && j >= 3 {
                let base = toks[j - 3].text.as_str();
                if base == "Instant" || base == "SystemTime" {
                    self.clocks.push(ClockFinding {
                        line: t.line,
                        what: format!("{base}::now"),
                    });
                }
            }

            // Unordered iteration.
            if prev_dot && next_paren && ITER_METHODS.contains(&name) {
                if let Some((src, class)) = self.resolve_iter_receiver(s, j) {
                    scan.sources.push((src, class));
                }
            }

            // RNG / thread identity / env / FS reads.
            if next_paren && !prev_dot {
                match name {
                    "thread_rng" | "random" => {
                        scan.sources.push((format!("RNG (`{name}()`)"), None));
                    }
                    "current" if prev_path && j >= 3 && toks[j - 3].is_ident("thread") => {
                        scan.sources
                            .push(("thread identity (`thread::current()`)".into(), None));
                    }
                    "var" | "vars" | "var_os"
                        if prev_path && j >= 3 && toks[j - 3].is_ident("env") =>
                    {
                        scan.sources
                            .push((format!("environment read (`env::{name}`)"), None));
                    }
                    "open" if prev_path && j >= 3 && toks[j - 3].is_ident("File") => {
                        scan.sources
                            .push(("filesystem read (`File::open`)".into(), None));
                    }
                    n if n.starts_with("read")
                        && prev_path
                        && j >= 3
                        && toks[j - 3].is_ident("fs") =>
                    {
                        scan.sources
                            .push((format!("filesystem read (`fs::{n}`)"), None));
                    }
                    _ => {}
                }
            }
            if !prev_dot
                && !prev_path
                && name == "rand"
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                scan.sources.push(("RNG (`rand::…`)".into(), None));
            }

            // Tainted-binding use (skip the binding target itself and
            // path/field positions — `x.y` only taints via receiver `x`).
            if !prev_dot && !prev_path && scan.binds.as_deref() != Some(name) {
                if let Some((_, src, class)) = s.tainted.iter().rev().find(|(n, _, _)| n == name) {
                    scan.sources.push((src.clone(), *class));
                }
            }

            // Sinks.
            if prev_dot && next_paren {
                if is_send_method(name) {
                    scan.sinks.push((t.line, "send payload".into()));
                } else if REPLY_METHODS.contains(&name) {
                    scan.sinks.push((t.line, "reply delivery".into()));
                } else if PERSIST_METHODS.contains(&name) {
                    scan.sinks.push((t.line, "persisted write".into()));
                }
            }

            // Helper-call sinks: `self.helper(..)` / free `helper(..)`
            // where the callee sends, delivers, or persists.
            if next_paren && !is_keywordish(name) && !ITER_METHODS.contains(&name) {
                let self_method = prev_dot && j >= 2 && toks[j - 2].is_ident("self");
                let free_call = !prev_dot && !prev_path;
                if self_method || free_call {
                    if let Some(facts) = (self.callee_effects)(name) {
                        if facts.any() {
                            let kind = if facts.sends {
                                "send payload"
                            } else if facts.delivers {
                                "reply delivery"
                            } else {
                                "persisted write"
                            };
                            scan.sinks
                                .push((t.line, format!("{kind} via helper `{name}`")));
                        }
                    }
                }
            }

            let _ = pos;
        }
        scan
    }

    /// Applies one statement scan: emits findings for taint reaching a
    /// sink, and taints the statement's binding when the RHS is dirty.
    fn apply_stmt(&mut self, s: &mut TState, scan: StmtScan) {
        if let Some((src, class)) = scan.sources.first() {
            for (line, sink) in &scan.sinks {
                if self.seen.insert((*line, sink.clone())) {
                    self.findings.push(EffectFinding {
                        line: *line,
                        sink: sink.clone(),
                        source: src.clone(),
                        class: class.map(|id| self.classes.names[id as usize].clone()),
                    });
                }
            }
            if let Some(name) = scan.binds {
                if !s.tainted.iter().any(|(n, _, _)| *n == name) {
                    s.tainted.push((name.clone(), src.clone(), *class));
                    self.note_tainted(name, src.clone(), *class);
                }
            }
        } else if let Some(name) = scan.binds {
            // A clean right-hand side rebinds (strong update): the old
            // taint no longer describes this name.
            s.tainted.retain(|(n, _, _)| *n != name);
        }
    }

    fn note_tainted(&mut self, name: String, src: String, class: Option<u16>) {
        if !self.all_tainted.iter().any(|(n, _, _)| *n == name) {
            self.all_tainted.push((name, src, class));
        }
    }

    /// Tail-expression reply check: the final statement of a handler
    /// body with no trailing `;` is the reply value. Uses the union of
    /// tainted names (path-insensitive by design — a reply built from a
    /// possibly-tainted binding is still nondeterministic on some path).
    fn check_tail(&mut self, f: &FnItem) {
        let toks = &self.model.toks;
        let (start, end) = f.body_range;
        // Last top-level statement boundary within the body.
        let mut depth = 0i32;
        let mut tail_start = start;
        for (off, t) in toks[start..end].iter().enumerate() {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                tail_start = start + off + 1;
            }
        }
        if start == end {
            return;
        }
        let last = end - 1;
        if toks[last].is_punct(';') || tail_start > last {
            return; // body ends in a statement, not a tail expression
        }
        // `for`/`while`/`loop`/`let` in tail position are statements —
        // their trailing `}` is not a value the handler replies with.
        if ["for", "while", "loop", "let"]
            .iter()
            .any(|kw| toks[tail_start].is_ident(kw))
        {
            return;
        }
        let state = TState {
            tainted: self.all_tainted.clone(),
        };
        let idxs: Vec<usize> = (tail_start..end).collect();
        let scan = self.scan_stmt(&state, &idxs);
        if let Some((src, class)) = scan.sources.first() {
            let line = toks[tail_start].line;
            if self.seen.insert((line, "reply value".into())) {
                self.findings.push(EffectFinding {
                    line,
                    sink: "reply value".into(),
                    source: src.clone(),
                    class: class.map(|id| self.classes.names[id as usize].clone()),
                });
            }
        }
    }
}

/// Walks a flow, splitting runs into statements at top-level `;`.
fn walk_seq(cx: &mut EffectCx<'_>, flow: &Flow, mut states: Vec<TState>) -> Vec<TState> {
    for step in &flow.0 {
        match step {
            Step::Run(idxs) => {
                for s in &mut states {
                    run_tokens(cx, s, idxs);
                }
            }
            Step::Scope(body) => {
                states = walk_seq(cx, body, states);
            }
            Step::Branch { arms, exhaustive } => {
                let mut out: Vec<TState> = if *exhaustive {
                    Vec::new()
                } else {
                    states.clone()
                };
                for arm in arms {
                    for s in walk_seq(cx, arm, states.clone()) {
                        if !out.contains(&s) {
                            out.push(s);
                        }
                    }
                }
                states = out;
            }
            Step::Loop(body) => {
                for s in walk_seq(cx, body, states.clone()) {
                    if !states.contains(&s) {
                        states.push(s);
                    }
                }
            }
            Step::Return { toks, .. } => {
                for s in &mut states {
                    run_tokens(cx, s, toks);
                    // An explicit `return expr` of a handler is a reply.
                    if cx.is_handler && !toks.is_empty() {
                        let scan = cx.scan_stmt(s, toks);
                        if let Some((src, class)) = scan.sources.first() {
                            let line = cx.model.toks[toks[0]].line;
                            if cx.seen.insert((line, "reply value".into())) {
                                let class_name =
                                    class.map(|id| cx.classes.names[id as usize].clone());
                                cx.findings.push(EffectFinding {
                                    line,
                                    sink: "reply value".into(),
                                    source: src.clone(),
                                    class: class_name,
                                });
                            }
                        }
                    }
                }
                states.clear();
            }
            Step::Try { .. } => {}
        }
        states.dedup_by(|a, b| a == b);
        states.truncate(MAX_STATES);
        if states.is_empty() {
            break;
        }
    }
    states
}

/// Applies one straight-line run: split into statements, handle `for
/// pat in expr` heads, scan each statement.
fn run_tokens(cx: &mut EffectCx<'_>, s: &mut TState, idxs: &[usize]) {
    let toks = &cx.model.toks;

    // `for pat in <expr>` loop heads: taint the pattern bindings when
    // the iterated expression is dirty.
    if let Some(in_pos) = for_head_in(toks, idxs) {
        let rhs: Vec<usize> = idxs[in_pos + 1..].to_vec();
        let scan = cx.scan_stmt(s, &rhs);
        if let Some((src, class)) = scan.sources.first() {
            for &j in &idxs[..in_pos] {
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && t.text != "mut"
                    && !s.tainted.iter().any(|(n, _, _)| *n == t.text)
                {
                    s.tainted.push((t.text.clone(), src.clone(), *class));
                    cx.note_tainted(t.text.clone(), src.clone(), *class);
                }
            }
        }
        // Heads carry no sinks; sources feeding sends directly inside a
        // head (`for x in m.keys() { … }`) taint the bindings above.
        return;
    }

    let mut depth = 0i32;
    let mut stmt: Vec<usize> = Vec::new();
    for &j in idxs {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            let scan = cx.scan_stmt(s, &stmt);
            cx.apply_stmt(s, scan);
            stmt.clear();
            continue;
        }
        stmt.push(j);
    }
    if !stmt.is_empty() {
        let scan = cx.scan_stmt(s, &stmt);
        cx.apply_stmt(s, scan);
    }
}

/// Detects a `pat in expr` loop head: returns the position (within
/// `idxs`) of the `in` keyword at depth 0, if the run looks like one.
fn for_head_in(toks: &[Tok], idxs: &[usize]) -> Option<usize> {
    let mut depth = 0i32;
    for (pos, &j) in idxs.iter().enumerate() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') || t.is_punct('=') {
            return None; // an ordinary statement, not a loop head
        } else if depth == 0 && t.is_ident("in") && pos > 0 {
            return Some(pos);
        }
    }
    None
}

/// Idents that look like calls but are control flow or constructors.
pub(crate) fn is_keywordish(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "assert"
            | "debug_assert"
            | "panic"
            | "vec"
            | "format"
            | "new"
    ) || name.chars().next().is_some_and(char::is_uppercase)
}
