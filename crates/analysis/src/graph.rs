//! The actor call graph: construction, cycle detection, and DOT rendering.
//!
//! Nodes are actor type names; edges come from
//! [`aodb_runtime::Actor::declared_calls`] (or from a fixture edge list —
//! see [`CallGraph::parse_edge_list`]). The analysis of interest is
//! *reentrancy-deadlock* detection: under turn-based execution a cycle of
//! synchronous [`CallKind::Call`] edges deadlocks, because every actor on
//! the cycle is blocking its only turn waiting on the next one. Tarjan's
//! SCC algorithm finds all such cycles in one linear pass.

use std::collections::HashMap;

use aodb_runtime::{ActorTopology, CallDecl, CallKind};

/// Display name of the synthetic wildcard node (see [`CallDecl::ANY`]):
/// the target of edges whose concrete actor type is chosen at runtime
/// (2PC participants, workflow step recipients).
pub const ANY_NODE: &str = "(any)";

/// One edge of the call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Source actor type name.
    pub from: String,
    /// Target actor type name ([`ANY_NODE`] for wildcard edges).
    pub to: String,
    /// Synchronous call or asynchronous send.
    pub kind: CallKind,
}

/// A directed multigraph over actor type names.
#[derive(Default, Clone, Debug)]
pub struct CallGraph {
    nodes: Vec<String>,
    index: HashMap<String, usize>,
    edges: Vec<Edge>,
}

impl CallGraph {
    /// An empty graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Builds a graph from exported topology rows (e.g. the concatenation
    /// of `aodb_shm::call_topology()`, `aodb_cattle::call_topology()`, and
    /// `aodb_core::call_topology()`).
    pub fn from_topology(rows: impl IntoIterator<Item = ActorTopology>) -> Self {
        let mut g = CallGraph::new();
        for row in rows {
            g.add_node(row.name);
            for decl in row.calls {
                g.add_edge(row.name, decl.to, decl.kind);
            }
        }
        g
    }

    /// Adds a node (idempotent); returns its index.
    pub fn add_node(&mut self, name: &str) -> usize {
        let name = normalize(name);
        if let Some(&i) = self.index.get(name.as_str()) {
            return i;
        }
        let i = self.nodes.len();
        self.index.insert(name.clone(), i);
        self.nodes.push(name);
        i
    }

    /// Adds an edge, creating endpoints as needed.
    pub fn add_edge(&mut self, from: &str, to: &str, kind: CallKind) {
        self.add_node(from);
        self.add_node(to);
        let edge = Edge {
            from: normalize(from),
            to: normalize(to),
            kind,
        };
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
    }

    /// Node names, in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Parses a fixture edge list: one `from (call|send) to` triple per
    /// line, `#` comments and blank lines ignored. Used to feed
    /// deliberately bad graphs to `aodb-lint` in tests.
    pub fn parse_edge_list(text: &str) -> Result<CallGraph, String> {
        let mut g = CallGraph::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (from, kind, to) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(f), Some(k), Some(t), None) => (f, k, t),
                _ => {
                    return Err(format!(
                        "line {}: expected `FROM call|send TO`, got `{line}`",
                        lineno + 1
                    ))
                }
            };
            let kind = match kind {
                "call" => CallKind::Call,
                "send" => CallKind::Send,
                other => {
                    return Err(format!(
                        "line {}: unknown edge kind `{other}` (expected `call` or `send`)",
                        lineno + 1
                    ))
                }
            };
            g.add_edge(from, to, kind);
        }
        Ok(g)
    }

    /// Finds all synchronous-call cycles: strongly connected components of
    /// the `Call`-edge subgraph with more than one node, plus `Call`
    /// self-loops. Each cycle is returned as the list of actor names on
    /// it, in graph order. An empty result means the declared topology is
    /// reentrancy-deadlock-free.
    ///
    /// A `Call` edge to the wildcard node is treated conservatively: the
    /// wildcard can stand for any actor, so such an edge is expanded to a
    /// `Call` edge to *every* node before the SCC pass.
    pub fn call_cycles(&self) -> Vec<Vec<String>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let any = self.index.get(ANY_NODE).copied();
        for e in &self.edges {
            if e.kind != CallKind::Call {
                continue;
            }
            let from = self.index[e.from.as_str()];
            let to = self.index[e.to.as_str()];
            if Some(to) == any {
                // `call` to a dynamically chosen target: may reach anyone.
                for t in 0..n {
                    if !adj[from].contains(&t) {
                        adj[from].push(t);
                    }
                }
            } else if !adj[from].contains(&to) {
                adj[from].push(to);
            }
        }
        let sccs = tarjan(n, &adj);
        let mut cycles = Vec::new();
        for scc in sccs {
            let cyclic = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
            if cyclic {
                cycles.push(scc.iter().map(|&i| self.nodes[i].clone()).collect());
            }
        }
        cycles
    }

    /// Renders the graph in Graphviz DOT, deterministically (nodes and
    /// edges sorted by name) so the output is golden-file testable.
    /// Synchronous calls are solid red edges; asynchronous sends are
    /// dashed gray.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph actor_calls {\n");
        out.push_str("    rankdir=LR;\n");
        out.push_str("    node [shape=box, fontname=\"monospace\"];\n");
        let mut names: Vec<&str> = self.nodes.iter().map(String::as_str).collect();
        names.sort_unstable();
        for name in &names {
            if *name == ANY_NODE {
                out.push_str(&format!(
                    "    \"{name}\" [style=dashed, label=\"any actor\\n(dynamic recipient)\"];\n"
                ));
            } else {
                out.push_str(&format!("    \"{name}\";\n"));
            }
        }
        let mut edges: Vec<&Edge> = self.edges.iter().collect();
        edges.sort_unstable_by_key(|e| (e.from.clone(), e.to.clone(), e.kind != CallKind::Call));
        for e in edges {
            let attrs = match e.kind {
                CallKind::Call => "color=red, label=\"call\"",
                CallKind::Send => "style=dashed, color=gray40, label=\"send\"",
            };
            out.push_str(&format!("    \"{}\" -> \"{}\" [{attrs}];\n", e.from, e.to));
        }
        out.push_str("}\n");
        out
    }
}

/// Maps the runtime's wildcard marker to its display node name.
fn normalize(name: &str) -> String {
    if name == CallDecl::ANY {
        ANY_NODE.to_string()
    } else {
        name.to_string()
    }
}

/// Iterative Tarjan SCC. Returns components in reverse topological order;
/// node order inside a component follows the DFS stack.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if state[start].visited {
            continue;
        }
        // Explicit DFS frame: (node, next-neighbour cursor).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                state[v].visited = true;
                state[v].index = counter;
                state[v].lowlink = counter;
                counter += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&w) = adj[v].get(*cursor) {
                *cursor += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_is_a_call_cycle() {
        let mut g = CallGraph::new();
        g.add_edge("a", "a", CallKind::Call);
        assert_eq!(g.call_cycles(), vec![vec!["a".to_string()]]);
    }

    #[test]
    fn send_self_loop_is_fine() {
        let mut g = CallGraph::new();
        g.add_edge("a", "a", CallKind::Send);
        assert!(g.call_cycles().is_empty());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = CallGraph::new();
        g.add_edge("a", "b", CallKind::Call);
        g.add_edge("b", "a", CallKind::Call);
        let cycles = g.call_cycles();
        assert_eq!(cycles.len(), 1);
        let mut members = cycles[0].clone();
        members.sort();
        assert_eq!(members, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn diamond_has_no_cycle() {
        let mut g = CallGraph::new();
        g.add_edge("top", "left", CallKind::Call);
        g.add_edge("top", "right", CallKind::Call);
        g.add_edge("left", "bottom", CallKind::Call);
        g.add_edge("right", "bottom", CallKind::Call);
        assert!(g.call_cycles().is_empty());
    }

    #[test]
    fn mixed_kind_cycle_is_not_a_deadlock() {
        // a -call-> b -send-> a: b never blocks, so a's reply eventually
        // arrives.
        let mut g = CallGraph::new();
        g.add_edge("a", "b", CallKind::Call);
        g.add_edge("b", "a", CallKind::Send);
        assert!(g.call_cycles().is_empty());
    }

    #[test]
    fn wildcard_call_is_conservative() {
        // a -call-> (any) and b -call-> a: the wildcard may stand for b,
        // closing the loop.
        let mut g = CallGraph::new();
        g.add_edge("a", CallDecl::ANY, CallKind::Call);
        g.add_edge("b", "a", CallKind::Call);
        assert!(!g.call_cycles().is_empty());
    }

    #[test]
    fn wildcard_send_is_fine() {
        let mut g = CallGraph::new();
        g.add_edge("a", CallDecl::ANY, CallKind::Send);
        g.add_edge("b", "a", CallKind::Call);
        assert!(g.call_cycles().is_empty());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = CallGraph::parse_edge_list(
            "# comment\n\
             a call b\n\
             \n\
             b send c\n",
        )
        .unwrap();
        assert_eq!(g.nodes().len(), 3);
        assert_eq!(g.edges().len(), 2);
        assert!(g.call_cycles().is_empty());
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(CallGraph::parse_edge_list("a calls b").is_err());
        assert!(CallGraph::parse_edge_list("a call").is_err());
    }

    #[test]
    fn dot_is_deterministic_and_marks_kinds() {
        let mut g = CallGraph::new();
        g.add_edge("b", "c", CallKind::Send);
        g.add_edge("a", "b", CallKind::Call);
        let dot = g.to_dot();
        assert!(dot.contains("\"a\" -> \"b\" [color=red, label=\"call\"]"));
        assert!(dot.contains("\"b\" -> \"c\" [style=dashed, color=gray40, label=\"send\"]"));
        // Deterministic: rebuilding in another insertion order gives the
        // same text.
        let mut g2 = CallGraph::new();
        g2.add_edge("a", "b", CallKind::Call);
        g2.add_edge("b", "c", CallKind::Send);
        assert_eq!(dot, g2.to_dot());
    }
}
