//! A hand-rolled Rust token scanner.
//!
//! The verification passes ([`crate::dataflow`], [`crate::sendsites`])
//! need to see source *structure* — brace nesting, `impl` headers,
//! statement boundaries — which the line-oriented lint cannot recover
//! once a expression spans lines. A full parser (`syn`) is overkill and
//! off-limits (no new dependencies); a lexer is enough, because Rust's
//! brace/paren/bracket structure is unambiguous at the token level once
//! comments and literals are out of the way.
//!
//! The scanner handles exactly the hard parts: nested block comments,
//! string/char/byte literals with escapes, raw strings with `#` fences,
//! and the `'a` lifetime vs `'a'` char-literal ambiguity. Everything
//! else is an ident, a number, or a single-character punct — multi-char
//! operators (`::`, `=>`, `->`) are left as punct sequences and matched
//! by the consumers, which keeps the scanner trivially correct.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `actor_ref`, ...).
    Ident,
    /// Single punctuation character (`{`, `:`, `?`, ...).
    Punct,
    /// String literal (text is the *content*, quotes and fences removed).
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal (integer or float mantissa chunk).
    Num,
    /// Lifetime (`'a`, `'_`, `'static`), tick included in the text.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this is this punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == ch as u8
    }
}

/// Lexes Rust source into tokens, discarding comments and whitespace.
///
/// The scanner never fails: unterminated literals or comments simply end
/// at EOF, which is the right behavior for a lint that must not crash on
/// the code it is criticizing.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (content, next) = scan_string(src, i + 1, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            'r' | 'b' if is_raw_or_byte_string(bytes, i) => {
                let start_line = line;
                let (content, next) = scan_raw_or_byte(src, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: start_line,
                });
                i = next;
            }
            '\'' => {
                let start_line = line;
                let (tok, next) = scan_tick(src, i, start_line);
                toks.push(tok);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let b = bytes[i] as char;
                    b.is_alphanumeric() || b == '_'
                } {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && {
                    let b = bytes[i] as char;
                    b.is_alphanumeric() || b == '_'
                } {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    toks
}

/// Scans an ordinary string body starting just after the opening quote;
/// returns (content, index after closing quote).
fn scan_string(src: &str, mut i: usize, line: &mut u32) -> (String, usize) {
    let bytes = src.as_bytes();
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                i += 2; // skip the escaped byte (content fidelity is irrelevant)
            }
            b'"' => return (out, i + 1),
            b'\n' => {
                *line += 1;
                out.push('\n');
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    (out, i)
}

/// True if position `i` starts `r"`, `r#`, `b"`, `br"`, `br#`, `b'`-free
/// raw/byte string forms (byte *char* `b'x'` is handled by the tick path
/// being unreachable here — we only claim forms that open a string).
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at the
/// `r`/`b`; returns (content, index after the closing fence).
fn scan_raw_or_byte(src: &str, mut i: usize, line: &mut u32) -> (String, usize) {
    let bytes = src.as_bytes();
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = i < bytes.len() && bytes[i] == b'r';
    if raw {
        i += 1;
    }
    let mut fence = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        fence += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        i += 1;
    }
    if !raw {
        // plain byte string: ordinary escape rules
        return scan_string(src, i, line);
    }
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == b'"'
            && src.as_bytes()[i + 1..]
                .iter()
                .take(fence)
                .all(|b| *b == b'#')
        {
            return (out, i + 1 + fence);
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    (out, i)
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) starting at
/// the tick; returns the token and the index after it.
fn scan_tick(src: &str, i: usize, line: u32) -> (Tok, usize) {
    let bytes = src.as_bytes();
    // Escaped char literal: '\n', '\'', '\u{...}'.
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Char,
                text: src[i..(j + 1).min(bytes.len())].to_string(),
                line,
            },
            (j + 1).min(bytes.len()),
        );
    }
    // Unescaped char literal: exactly one char then a closing tick.
    if let Some(c) = src[i + 1..].chars().next() {
        let after = i + 1 + c.len_utf8();
        if bytes.get(after) == Some(&b'\'') {
            return (
                Tok {
                    kind: TokKind::Char,
                    text: src[i..after + 1].to_string(),
                    line,
                },
                after + 1,
            );
        }
    }
    // Lifetime: tick plus ident chars.
    let mut j = i + 1;
    while j < bytes.len() && {
        let b = bytes[j] as char;
        b.is_alphanumeric() || b == '_'
    } {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Lifetime,
            text: src[i..j].to_string(),
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            texts("fn f(x: u32) -> u32 { x + 1 }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "+", "1", "}"]
        );
    }

    #[test]
    fn comments_are_discarded() {
        assert_eq!(
            texts("a // line\nb /* block /* nested */ still */ c"),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn strings_do_not_leak_braces() {
        let toks = lex(r#"let s = "{ not a } brace"; }"#);
        let braces: Vec<_> = toks.iter().filter(|t| t.is_punct('}')).collect();
        assert_eq!(braces.len(), 1);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_string_with_fence() {
        let toks = lex(r###"let s = r#"quote " inside"#; x"###);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "quote \" inside");
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("let c = 'x'; fn f<'a>(s: &'a str, u: &'_ str) {}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'_"));
        // The char literal's quotes must not have eaten the semicolon.
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = lex(r"let c = '\''; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        assert_eq!(toks.iter().filter(|t| t.is_punct('}')).count(), 1);
    }

    #[test]
    fn line_numbers_track_every_form() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn byte_strings() {
        let toks = lex(r#"let b = b"bytes { }"; }"#);
        assert_eq!(toks.iter().filter(|t| t.is_punct('}')).count(), 1);
    }
}
