//! # aodb-analysis — static analysis for the actor workspace
//!
//! Three checks, all derived from the turn-based execution model (an
//! actor handles one message at a time and must never block its turn on
//! another actor that might, transitively, be waiting on it):
//!
//! * **Call-graph extraction** — every actor type declares its outbound
//!   edges ([`aodb_runtime::Actor::declared_calls`]); the application
//!   crates export them via `call_topology()` and [`workspace_graph`]
//!   assembles the whole-workspace [`CallGraph`], renderable as Graphviz
//!   DOT.
//! * **Reentrancy-deadlock lint** — Tarjan SCC over the synchronous
//!   `Call` edges ([`CallGraph::call_cycles`]): any cycle means every
//!   actor on it can end up blocking its only turn on the next one, the
//!   classic deadlock of non-reentrant virtual-actor systems.
//! * **Turn-discipline lint** — a source scan ([`lint::lint_tree`]) for
//!   guards held across blocking points, blocking requests inside
//!   `Collector` fan-ins, and `std::sync` locks where `parking_lot` is
//!   the convention.
//! * **aodb-verify dataflow passes** — a hand-rolled lexer
//!   ([`lexer`]) plus per-function control-flow evaluation ([`dataflow`])
//!   powering three source-level checks: declaration drift between send
//!   sites and `declared_calls()` ([`sendsites`]), untracked state
//!   mutations that can exit a turn unpersisted, and sync-handler paths
//!   that leak their reply obligation. Accepted findings live in a
//!   [`baseline`] file with per-entry justifications; entries that stop
//!   firing fail the lint, so the baseline can only ratchet down.
//! * **aodb-replaycheck determinism passes** — a nondeterminism-source
//!   taxonomy and per-turn effect walk ([`effects`], [`replay`]) over
//!   the same corpus: values from unordered-collection iteration, RNG,
//!   thread identity, or env/FS reads that flow into a send payload, a
//!   reply, or a persisted write are `nondet-in-turn` findings;
//!   `Persisted<T>` state types carrying `HashMap`/`HashSet` fields are
//!   `unordered-persisted-state`; `Instant::now`/`SystemTime::now`
//!   inside a turn is `ambient-clock` (actor code uses
//!   `ActorContext::now()` instead).
//! * **aodb-schemacheck persisted-format passes** — layout
//!   fingerprinting over every `Persisted<T>` state type and binary
//!   on-disk format ([`schema`], [`schemalock`]) checked against a
//!   committed `schema.lock` (`schema-drift`, `schema-unversioned`),
//!   plus an ack-durability dataflow ([`durability`]) proving no
//!   handler path resolves a `ReplyTo` before its commit-point store
//!   write (`ack-before-commit`).
//! * **aodb-lockcheck runtime-internal passes** — lock-class extraction
//!   and guard-liveness dataflow over the runtime substrate itself
//!   ([`locks`]): every held-while-acquiring pair feeds a
//!   [`lockgraph::LockGraph`] whose SCCs are `lock-order-cycle`
//!   findings, and any guard live across blocking work (store I/O,
//!   parks, waits, channel ops, dispatch into actor code) is a
//!   `lock-across-blocking` finding.
//!
//! The `aodb-lint` binary drives all of it and exits nonzero on any
//! violation; debug builds of the runtime enforce the declarations at
//! dispatch time, so graph and code cannot silently drift apart.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod dataflow;
pub mod durability;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod lint;
pub mod lockgraph;
pub mod locks;
pub mod replay;
pub mod schema;
pub mod schemalock;
pub mod sendsites;

pub use baseline::{Baseline, Suppression};
pub use graph::{CallGraph, Edge, ANY_NODE};
pub use lint::{lint_source, lint_tree, Finding, Rule};
pub use lockgraph::{LockEdge, LockGraph};
pub use locks::{lockcheck_corpus, lockcheck_tree, LockAnalysis};
pub use replay::{replaycheck_corpus, replaycheck_tree};
pub use schemalock::{EntryKind, LockEntry, SchemaLock, SchemaLockError};
pub use sendsites::Corpus;

/// Runs the aodb-verify dataflow passes (declaration drift, persistence
/// hazards, reply obligations) over one parsed corpus.
pub fn verify_corpus(corpus: &Corpus) -> Vec<Finding> {
    let replies = corpus.reply_structs();
    let mut findings = sendsites::drift_findings(corpus);
    for file in &corpus.files {
        findings.extend(durability::persistence_findings(file));
        findings.extend(dataflow::reply_findings(file, &replies));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    findings
}

/// Loads every `.rs` file under the given roots as one corpus and runs
/// the verify passes. Files are parsed together so actor type names
/// resolve across crates.
pub fn verify_tree(roots: &[std::path::PathBuf]) -> std::io::Result<Vec<Finding>> {
    Ok(verify_corpus(&Corpus::load(roots)?))
}

/// Runs the aodb-schemacheck passes over one parsed corpus: persisted
/// layout fingerprints against an optional `schema.lock` (drift,
/// unversioned formats, stale lock entries) plus the ack-before-commit
/// dataflow over every handler.
pub fn schemacheck_corpus(corpus: &Corpus, lock: Option<&SchemaLock>) -> Vec<Finding> {
    let mut findings = schema::schema_findings(corpus, lock);
    for file in &corpus.files {
        findings.extend(durability::ack_findings(file));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    findings
}

/// Loads every `.rs` file under the given roots and runs the
/// schemacheck passes against an optional lockfile.
pub fn schemacheck_tree(
    roots: &[std::path::PathBuf],
    lock: Option<&SchemaLock>,
) -> std::io::Result<Vec<Finding>> {
    Ok(schemacheck_corpus(&Corpus::load(roots)?, lock))
}

/// The whole-workspace call graph: every actor type registered by the
/// SHM platform, the cattle-tracking platform, and the shared AODB
/// infrastructure, with their declared edges.
pub fn workspace_graph() -> CallGraph {
    CallGraph::from_topology(
        aodb_shm::call_topology()
            .into_iter()
            .chain(aodb_cattle::call_topology())
            .chain(aodb_core::call_topology()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_graph_covers_all_platform_actors() {
        let g = workspace_graph();
        for name in [
            "shm.sensor",
            "shm.ingest-gateway",
            "shm.channel",
            "shm.virtual-channel",
            "shm.aggregator",
            "shm.organization",
            "shm.alert-log",
            "shm.tenant-guard",
            "cattle.cow",
            "cattle.farmer",
            "cattle.slaughterhouse",
            "cattle.meat-cut",
            "cattle.distributor",
            "cattle.delivery",
            "cattle.retailer",
            "cattle.meat-product",
            "cattle.cut-holder",
            "aodb.index-shard",
            "aodb.key-registry",
            "aodb.reminder-table",
            "aodb.txn-coordinator",
            "aodb.workflow-engine",
        ] {
            assert!(g.nodes().iter().any(|n| n == name), "missing node {name}");
        }
    }

    #[test]
    fn workspace_graph_has_no_call_cycles() {
        let cycles = workspace_graph().call_cycles();
        assert!(
            cycles.is_empty(),
            "declared topology has sync-call cycles: {cycles:?}"
        );
    }
}
