//! Turn-discipline lint: a source-level scan for patterns that break the
//! runtime's turn contract.
//!
//! Turn-based execution only stays deadlock-free if handlers follow three
//! disciplines, none of which the type system can express:
//!
//! 1. **No guard across a blocking point** — holding a `parking_lot`
//!    guard (`.lock()` / `.read()` / `.write()`) across a blocking
//!    request (`.call(...)`, `.wait()`, `.wait_for(...)`) keeps the lock
//!    pinned while the thread sleeps on another actor's turn.
//! 2. **No blocking inside a `Collector` fan-in** — the completion
//!    closure runs on whichever worker delivers the final reply; blocking
//!    there stalls a silo worker that other activations need.
//! 3. **`parking_lot`, not `std::sync`** — workspace convention: the
//!    `std` primitives are poisonable and slower under contention.
//!
//! The scan is a line-oriented heuristic, not a type-checked analysis:
//! it strips comments, tracks brace depth for guard liveness, and errs on
//! the side of reporting. A finding can be suppressed by putting
//! `aodb-lint: allow(<rule>)` on the offending line or the line above.

use std::fmt;
use std::path::{Path, PathBuf};

/// Lint rule identifiers (used in reports and `allow(...)` markers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// A `parking_lot` guard is live across a blocking request.
    GuardAcrossWait,
    /// A blocking request inside a `Collector` fan-in closure.
    BlockingInCollector,
    /// A `std::sync` lock where `parking_lot` is the convention.
    StdSyncPrimitive,
    /// A cross-actor send/call site with no covering `declared_calls()`
    /// entry (debug builds would panic at dispatch).
    DeclarationDriftMissing,
    /// A `declared_calls()` entry no send site exercises anymore.
    DeclarationDriftStale,
    /// A `&mut self` handler path that mutates untracked state and exits
    /// without persisting it.
    PersistenceHazard,
    /// A sync-handler path that neither consumes its `ReplyTo` sink nor
    /// propagates an error.
    ReplyLeak,
    /// Two lock classes acquired in inconsistent order somewhere in the
    /// runtime (an SCC in the held-while-acquiring graph).
    LockOrderCycle,
    /// A lock guard live across store/file I/O, a park/condvar/promise
    /// wait, a channel op, or a dispatch into user actor code.
    LockAcrossBlocking,
    /// A nondeterministic value (RNG, thread identity, env/FS read,
    /// unordered-collection iteration) flows into a send payload, a
    /// reply, or a persisted write inside an actor turn.
    NondetInTurn,
    /// A `Persisted<T>` state type carries a `HashMap`/`HashSet` field:
    /// serde serialization order leaks into the stored blob, so replayed
    /// histories produce different state bytes.
    UnorderedPersistedState,
    /// `Instant::now()` / `SystemTime::now()` inside an actor turn;
    /// actor code must read time through `ActorContext::now()`.
    AmbientClock,
    /// A persisted layout (a `Persisted<T>` state type or an on-disk
    /// binary format) whose fingerprint no longer matches the committed
    /// `schema.lock` entry — the change must be acknowledged by
    /// regenerating the lockfile.
    SchemaDrift,
    /// A binary on-disk format whose magic carries no version dispatch
    /// path: a future layout change could only fail as CRC corruption
    /// instead of a typed unsupported-version error.
    SchemaUnversioned,
    /// A handler resolves a `ReplyTo` sink and *then* performs a
    /// commit-point store write on the same path — the caller can
    /// observe the ack while the turn's durable effects are still
    /// volatile (breaks the ack-⇒-durable contract).
    AckBeforeCommit,
}

impl Rule {
    /// Every rule, for `--help`-style listings.
    pub const ALL: &'static [Rule] = &[
        Rule::GuardAcrossWait,
        Rule::BlockingInCollector,
        Rule::StdSyncPrimitive,
        Rule::DeclarationDriftMissing,
        Rule::DeclarationDriftStale,
        Rule::PersistenceHazard,
        Rule::ReplyLeak,
        Rule::LockOrderCycle,
        Rule::LockAcrossBlocking,
        Rule::NondetInTurn,
        Rule::UnorderedPersistedState,
        Rule::AmbientClock,
        Rule::SchemaDrift,
        Rule::SchemaUnversioned,
        Rule::AckBeforeCommit,
    ];

    /// The marker name recognized in `aodb-lint: allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::GuardAcrossWait => "guard-across-wait",
            Rule::BlockingInCollector => "blocking-in-collector",
            Rule::StdSyncPrimitive => "std-sync-primitive",
            Rule::DeclarationDriftMissing => "declaration-drift-missing",
            Rule::DeclarationDriftStale => "declaration-drift-stale",
            Rule::PersistenceHazard => "persistence-hazard",
            Rule::ReplyLeak => "reply-leak",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::LockAcrossBlocking => "lock-across-blocking",
            Rule::NondetInTurn => "nondet-in-turn",
            Rule::UnorderedPersistedState => "unordered-persisted-state",
            Rule::AmbientClock => "ambient-clock",
            Rule::SchemaDrift => "schema-drift",
            Rule::SchemaUnversioned => "schema-unversioned",
            Rule::AckBeforeCommit => "ack-before-commit",
        }
    }

    /// Inverse of [`Rule::name`], for baseline files. Accepts the
    /// historical alias `std-sync-where-parking-lot` for
    /// [`Rule::StdSyncPrimitive`].
    pub fn from_name(name: &str) -> Option<Rule> {
        if name == "std-sync-where-parking-lot" {
            return Some(Rule::StdSyncPrimitive);
        }
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which discipline was violated.
    pub rule: Rule,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human explanation of the specific violation.
    pub detail: String,
    /// Enclosing item (function) name — the stable baseline key, immune
    /// to unrelated edits shifting line numbers.
    pub item: Option<String>,
    /// Lock class (`Owner.field`) for lockcheck rules.
    pub class: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.rule,
            self.detail,
            self.excerpt
        )
    }
}

/// Lints one source text. `file` is used only for reporting.
pub fn lint_source(file: &Path, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Live parking_lot guards: (binding name, brace depth at binding,
    // binding line).
    let mut guards: Vec<(String, i32, u32)> = Vec::new();
    // Open Collector::new(...) regions: paren depth *before* the call;
    // the region ends when depth returns to it.
    let mut collector_regions: Vec<i32> = Vec::new();
    let mut brace_depth: i32 = 0;
    let mut paren_depth: i32 = 0;
    let mut in_string = false;
    let mut prev_allows: Vec<&str> = Vec::new();
    // Enclosing-fn stack: (name, brace depth at the `fn` line), so each
    // finding can carry its enclosing item as a stable baseline key.
    let mut fn_stack: Vec<(String, i32)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let code = strip_code(raw, &mut in_string);
        let code = code.trim_end();

        if let Some(name) = fn_decl_name(code) {
            fn_stack.push((name, brace_depth));
        }
        let item = fn_stack.last().map(|(n, _)| n.clone());
        let allows = {
            let mut a = parse_allows(raw);
            a.extend(prev_allows.iter().copied());
            a
        };

        if code.contains("Collector::new(") || code.contains("Collector::<") {
            collector_regions.push(paren_depth);
        }

        if let Some(name) = guard_binding(code) {
            guards.push((name, brace_depth, lineno));
        }

        if let Some(point) = blocking_point(code) {
            if let Some((guard, _, gline)) =
                guards.iter().find(|(_, d, _)| *d <= brace_depth).cloned()
            {
                if !allows.contains(&Rule::GuardAcrossWait.name()) {
                    findings.push(Finding {
                        rule: Rule::GuardAcrossWait,
                        file: file.to_path_buf(),
                        line: lineno,
                        excerpt: code.trim().to_string(),
                        detail: format!(
                            "`{point}` while guard `{guard}` (bound on line {gline}) is live; \
                             drop the guard before blocking"
                        ),
                        item: item.clone(),
                        class: None,
                    });
                }
            }
            if !collector_regions.is_empty() && !allows.contains(&Rule::BlockingInCollector.name())
            {
                findings.push(Finding {
                    rule: Rule::BlockingInCollector,
                    file: file.to_path_buf(),
                    line: lineno,
                    excerpt: code.trim().to_string(),
                    detail: format!(
                        "`{point}` inside a `Collector` fan-in; completion closures run on \
                         worker threads and must stay non-blocking (post a continuation \
                         message instead)"
                    ),
                    item: item.clone(),
                    class: None,
                });
            }
        }

        if let Some(prim) = std_sync_primitive(code) {
            if !allows.contains(&Rule::StdSyncPrimitive.name()) {
                findings.push(Finding {
                    rule: Rule::StdSyncPrimitive,
                    file: file.to_path_buf(),
                    line: lineno,
                    excerpt: code.trim().to_string(),
                    detail: format!(
                        "`{prim}` used where `parking_lot` is the workspace convention"
                    ),
                    item: item.clone(),
                    class: None,
                });
            }
        }

        // Depth bookkeeping (after the checks so a guard bound and used on
        // one line is still seen at its own depth).
        for ch in code.chars() {
            match ch {
                '{' => brace_depth += 1,
                '}' => {
                    brace_depth -= 1;
                    guards.retain(|(_, d, _)| *d <= brace_depth);
                    fn_stack.retain(|(_, d)| *d < brace_depth);
                }
                '(' => paren_depth += 1,
                ')' => {
                    paren_depth -= 1;
                    // A region ends when depth returns to its pre-call level.
                    collector_regions.retain(|d| *d < paren_depth);
                }
                _ => {}
            }
        }
        // `drop(guard)` ends liveness early.
        if let Some(rest) = code.split("drop(").nth(1) {
            if let Some(dropped) = rest.split(')').next() {
                let dropped = dropped.trim();
                guards.retain(|(g, _, _)| g != dropped);
            }
        }

        prev_allows = parse_allows(raw);
    }
    findings
}

/// Lints every `.rs` file under `dir`, recursively. `vendor/` and
/// `target/` subtrees are skipped.
pub fn lint_tree(dir: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    files.sort();
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&file, &text));
    }
    Ok(findings)
}

/// Collects `.rs` files under `dir`, skipping `vendor/`, `target/`,
/// dot-dirs, and `fixtures/` trees (fixture files are deliberately dirty
/// inputs for the analysis' own tests, not workspace code).
pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Removes string-literal contents and `//` line comments, carrying
/// string state across lines (a line ending inside a multi-line literal
/// leaves the next line starting in-string). Escaped quotes are handled;
/// raw strings are treated like ordinary ones, which is close enough for
/// a heuristic lint.
fn strip_code(line: &str, in_string: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if *in_string {
            match c {
                '\\' => {
                    chars.next(); // skip the escaped character
                }
                '"' => *in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => *in_string = true,
            '\'' => {
                // Char literal (possibly escaped): consume through the
                // closing quote so `'"'` doesn't toggle string state.
                // Lifetime ticks (`'a`) have no closing quote within a
                // couple of characters and fall through harmlessly.
                let mut consumed = String::new();
                let mut closed = false;
                for _ in 0..3 {
                    match chars.peek() {
                        Some('\\') => {
                            consumed.push(chars.next().unwrap());
                            if let Some(e) = chars.next() {
                                consumed.push(e);
                            }
                        }
                        Some('\'') => {
                            chars.next();
                            closed = true;
                            break;
                        }
                        Some(_) => consumed.push(chars.next().unwrap()),
                        None => break,
                    }
                }
                if !closed {
                    // Not a char literal (lifetime); keep what we read.
                    out.push('\'');
                    out.push_str(&consumed);
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Extracts the function name from a `fn name(..)` declaration line.
fn fn_decl_name(code: &str) -> Option<String> {
    let mut rest = code;
    loop {
        let at = rest.find("fn ")?;
        // Require a word boundary before `fn` so `often ` doesn't match.
        let boundary = at == 0
            || rest[..at]
                .chars()
                .next_back()
                .is_some_and(|c| !(c.is_alphanumeric() || c == '_'));
        if boundary {
            rest = &rest[at + 3..];
            break;
        }
        rest = &rest[at + 3..];
    }
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// `aodb-lint: allow(a, b)` markers on a raw (pre-comment-strip) line.
pub(crate) fn parse_allows(raw: &str) -> Vec<&str> {
    let Some(i) = raw.find("aodb-lint: allow(") else {
        return Vec::new();
    };
    let rest = &raw[i + "aodb-lint: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end].split(',').map(str::trim).collect()
}

/// Detects `let g = ....lock()` / `.read()` / `.write()` bindings of
/// parking_lot-style guards.
fn guard_binding(code: &str) -> Option<String> {
    let let_pos = code.find("let ")?;
    let rest = &code[let_pos + 4..];
    let eq = rest.find('=')?;
    let (lhs, rhs) = rest.split_at(eq);
    for acquire in [".lock()", ".read()", ".write()"] {
        if rhs.contains(acquire) {
            let name = lhs
                .trim()
                .trim_start_matches("mut ")
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string();
            if !name.is_empty() && name != "_" {
                return Some(name);
            }
        }
    }
    None
}

/// Detects a blocking request point; returns the matched pattern.
fn blocking_point(code: &str) -> Option<&'static str> {
    [".call(", ".wait()", ".wait_for("]
        .into_iter()
        .find(|pat| code.contains(pat))
}

/// Detects `std::sync` lock primitives (atomics, `Arc`, and channels are
/// fine — only the poisonable locks are off-convention).
fn std_sync_primitive(code: &str) -> Option<&'static str> {
    [
        "std::sync::Mutex",
        "std::sync::RwLock",
        "std::sync::Condvar",
        "std::sync::Barrier",
    ]
    .into_iter()
    .find(|prim| code.contains(prim))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(text: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), text)
    }

    #[test]
    fn guard_across_call_flagged() {
        let findings = lint_str(
            "fn handler() {\n\
             let guard = self.table.lock();\n\
             let x = other.call(Msg)?;\n\
             }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::GuardAcrossWait);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_call_is_fine() {
        let findings = lint_str(
            "fn handler() {\n\
             {\n\
             let guard = self.table.lock();\n\
             guard.push(1);\n\
             }\n\
             let x = other.call(Msg)?;\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn explicit_drop_ends_liveness() {
        let findings = lint_str(
            "fn handler() {\n\
             let guard = self.table.lock();\n\
             drop(guard);\n\
             let x = other.call(Msg)?;\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn blocking_inside_collector_flagged() {
        let findings = lint_str(
            "fn handler() {\n\
             let c = Collector::new(n, move |replies| {\n\
             let v = other.call(Summarize)?;\n\
             });\n\
             }\n",
        );
        assert!(findings.iter().any(|f| f.rule == Rule::BlockingInCollector));
    }

    #[test]
    fn tell_inside_collector_is_fine() {
        let findings = lint_str(
            "fn handler() {\n\
             let c = Collector::new(n, move |replies| {\n\
             let _ = me.tell(Done { replies });\n\
             });\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn blocking_after_collector_region_is_fine() {
        let findings = lint_str(
            "fn client() {\n\
             let c = Collector::new(n, move |replies| { deliver(replies); });\n\
             promise.wait()\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn std_sync_flagged_and_allow_suppresses() {
        let flagged = lint_str("use std::sync::Mutex;\n");
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, Rule::StdSyncPrimitive);

        let allowed = lint_str(
            "// aodb-lint: allow(std-sync-primitive)\n\
             use std::sync::Mutex;\n",
        );
        assert!(allowed.is_empty(), "{allowed:?}");
    }

    #[test]
    fn comment_mentions_are_ignored() {
        let findings = lint_str(
            "// explaining that actors must never .call( while holding\n\
             // a lock() guard, or use std::sync::Mutex\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
