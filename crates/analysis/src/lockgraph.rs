//! The lock-order graph: held-while-acquiring edges over lock classes,
//! SCC cycle detection, and a deterministic DOT dump.
//!
//! Nodes are lock classes (`Owner.field`, see [`crate::locks`]); an edge
//! A→B means some function acquires B while holding a guard of A. Any
//! strongly connected component with more than one node — or a
//! self-loop — is a potential ABBA deadlock: two threads entering the
//! component from different sides can each hold the lock the other
//! wants. This mirrors the actor call graph in [`crate::graph`], one
//! layer down the stack.

use std::path::PathBuf;

use crate::lint::{Finding, Rule};

/// One held-while-acquiring edge, with provenance for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// Class held at the acquisition point.
    pub from: String,
    /// Class being acquired.
    pub to: String,
    /// File containing the acquisition.
    pub file: PathBuf,
    /// Line of the acquisition.
    pub line: u32,
    /// Function (or `caller -> callee` for propagated edges) that
    /// witnessed the pair.
    pub via: String,
}

/// A directed graph over lock classes.
#[derive(Clone, Debug, Default)]
pub struct LockGraph {
    nodes: Vec<String>,
    edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Builds a graph from the full class inventory plus the witnessed
    /// edges. Classes with no edges still appear as isolated DOT nodes,
    /// so the dump doubles as the lock-class table.
    pub fn new(mut nodes: Vec<String>, mut edges: Vec<LockEdge>) -> Self {
        nodes.sort();
        nodes.dedup();
        edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);
        LockGraph { nodes, edges }
    }

    /// Lock classes, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Held-while-acquiring edges, sorted by (from, to).
    pub fn edges(&self) -> &[LockEdge] {
        &self.edges
    }

    /// All lock-order cycles: SCCs of more than one class, plus
    /// self-loops. Each cycle lists its classes in DFS order.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let index: std::collections::HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            let (Some(&f), Some(&t)) = (index.get(e.from.as_str()), index.get(e.to.as_str()))
            else {
                continue;
            };
            if !adj[f].contains(&t) {
                adj[f].push(t);
            }
        }
        let mut cycles = Vec::new();
        for scc in tarjan(self.nodes.len(), &adj) {
            let cyclic = scc.len() > 1 || (scc.len() == 1 && adj[scc[0]].contains(&scc[0]));
            if cyclic {
                cycles.push(scc.iter().map(|&i| self.nodes[i].clone()).collect());
            }
        }
        cycles
    }

    /// One `lock-order-cycle` finding per cycle, anchored at the first
    /// witnessed edge inside the cycle.
    pub fn cycle_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for cycle in self.cycles() {
            let witness = self
                .edges
                .iter()
                .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
            let Some(w) = witness else { continue };
            let mut ring = cycle.clone();
            ring.push(cycle[0].clone());
            out.push(Finding {
                rule: Rule::LockOrderCycle,
                file: w.file.clone(),
                line: w.line,
                excerpt: format!("edge {} -> {} via `{}`", w.from, w.to, w.via),
                detail: format!(
                    "lock-order cycle: {} — threads acquiring these classes in \
                     different orders can deadlock",
                    ring.join(" -> ")
                ),
                item: Some(w.via.clone()),
                class: Some(w.from.clone()),
            });
        }
        out
    }

    /// Renders the graph in Graphviz DOT, deterministically (nodes and
    /// edges sorted) so the output is golden-file testable. Edges are
    /// labeled with the witnessing function.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lock_order {\n");
        out.push_str("    rankdir=LR;\n");
        out.push_str("    node [shape=box, fontname=\"monospace\"];\n");
        for name in &self.nodes {
            out.push_str(&format!("    \"{name}\";\n"));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "    \"{}\" -> \"{}\" [label=\"{}\"];\n",
                e.from, e.to, e.via
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Iterative Tarjan SCC (same shape as the actor call graph's; kept
/// local so the two graphs stay independently evolvable).
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if state[start].visited {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                state[v].visited = true;
                state[v].index = counter;
                state[v].lowlink = counter;
                counter += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&w) = adj[v].get(*cursor) {
                *cursor += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str) -> LockEdge {
        LockEdge {
            from: from.to_string(),
            to: to.to_string(),
            file: PathBuf::from("x.rs"),
            line: 1,
            via: "f".to_string(),
        }
    }

    #[test]
    fn acyclic_order_has_no_cycles() {
        let g = LockGraph::new(
            vec!["A.a".into(), "B.b".into(), "C.c".into()],
            vec![edge("A.a", "B.b"), edge("B.b", "C.c")],
        );
        assert!(g.cycles().is_empty());
        assert!(g.cycle_findings().is_empty());
    }

    #[test]
    fn abba_is_a_cycle() {
        let g = LockGraph::new(
            vec!["A.a".into(), "B.b".into()],
            vec![edge("A.a", "B.b"), edge("B.b", "A.a")],
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let findings = g.cycle_findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::LockOrderCycle);
        assert!(findings[0].detail.contains("A.a"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = LockGraph::new(vec!["A.a".into()], vec![edge("A.a", "A.a")]);
        assert_eq!(g.cycles(), vec![vec!["A.a".to_string()]]);
    }

    #[test]
    fn dot_lists_isolated_nodes_and_sorted_edges() {
        let g = LockGraph::new(
            vec!["Z.z".into(), "A.a".into(), "B.b".into()],
            vec![edge("B.b", "A.a")],
        );
        let dot = g.to_dot();
        let a = dot.find("\"A.a\";").unwrap();
        let z = dot.find("\"Z.z\";").unwrap();
        assert!(a < z, "nodes must be sorted:\n{dot}");
        assert!(dot.contains("\"B.b\" -> \"A.a\" [label=\"f\"];"));
    }
}
