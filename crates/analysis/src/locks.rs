//! aodb-lockcheck — lock-class extraction and guard-liveness dataflow.
//!
//! The application-level passes (drift, persistence, reply) trust the
//! runtime substrate to be correct; this pass checks the substrate
//! itself, in the spirit of kernel lockdep:
//!
//! * **Lock classes** — every struct field or `static` whose type
//!   mentions `Mutex`/`RwLock`/`Condvar` (parking_lot or `std::sync`
//!   alike) becomes a class named `OwningType.field`; a function
//!   parameter of lock type becomes `Owner::fn(param)`.
//! * **Guard liveness** — each function's control-flow tree
//!   ([`crate::dataflow::Flow`]) is walked with a state of live guards:
//!   `let`-bound guards live to scope exit or `drop(g)`, temporaries
//!   (`self.crashed.lock().insert(..)`) die at the end of their
//!   statement, branch/loop/block scopes prune guards bound inside.
//! * **Held-while-acquiring edges** — acquiring class B with class A
//!   live adds edge A→B; one level of intra-corpus call propagation
//!   (`self.helper(..)` and free/path calls, resolved by unique name)
//!   adds the callee's direct acquisitions. The edge set feeds
//!   [`crate::lockgraph::LockGraph`] for cycle detection and DOT dumps.
//! * **`lock-across-blocking`** — a guard live across store/file I/O,
//!   `park`/`sleep`, a condvar or promise wait, a channel `send`/`recv`,
//!   a group-commit WAL seam (`submit`/`submit_with` hand off through
//!   the committer's queue mutex; `append`/`reset` block until the
//!   group fsync), or a dispatch into user actor code (`env.run(..)`,
//!   lifecycle `activate`/`deactivate`, reply `deliver`) pins the lock
//!   while the thread does unbounded work — every other thread touching
//!   that class stalls behind it.
//!
//! Soundness limits (documented in DESIGN.md §11): receivers are
//! resolved by owner field, local binding, accessor method, or
//! corpus-unique field name — an unresolvable receiver is skipped
//! (may miss, never crashes); call propagation is one level deep and
//! only through `self.helper(..)`/free calls, so a lock taken behind a
//! field-method call (`act.mailbox.x(..)`) is not attributed to the
//! caller; `match` scrutinee temporaries are modeled as dying at the
//! head (in Rust they live through the arms).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::PathBuf;

use crate::dataflow::{FileModel, Flow, FnItem, Step};
use crate::lexer::{Tok, TokKind};
use crate::lint::{collect_rs_files, Finding, Rule};
use crate::lockgraph::{LockEdge, LockGraph};
use crate::sendsites::Corpus;

/// Type identifiers that make a field a lock site.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Zero-argument acquisition methods on lock types.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Method calls (`.name(..)`) that block or dispatch into user code.
const METHOD_BLOCKERS: &[(&str, &str)] = &[
    ("wait", "condvar/promise wait"),
    ("wait_for", "bounded promise wait"),
    ("wait_timeout", "condvar wait"),
    ("wait_while", "condvar wait"),
    ("recv", "channel receive"),
    ("recv_timeout", "channel receive"),
    ("send", "channel send"),
    ("call", "synchronous actor call"),
    ("call_timeout", "synchronous actor call"),
    ("join", "thread join"),
    ("write_all", "file I/O"),
    ("sync_data", "file sync"),
    ("sync_all", "file sync"),
    ("flush", "file flush"),
    ("read_exact", "file I/O"),
    ("read_to_end", "file I/O"),
    ("read_to_string", "file I/O"),
    ("put", "store I/O"),
    ("delete", "store I/O"),
    ("scan_prefix", "store I/O"),
    ("sync", "store sync"),
    ("run", "dispatch into actor code"),
    ("activate", "actor lifecycle dispatch"),
    ("deactivate", "actor lifecycle dispatch"),
    ("deliver", "reply dispatch"),
    // Group-commit WAL seams (DESIGN.md §15). `submit`/`submit_with`
    // take the committer's queue mutex (a cross-thread handoff: holding
    // another lock across them creates a lock-order edge against the
    // committer), and `append`/`reset` additionally block the caller
    // until the group's fsync resolves the ack.
    ("submit", "wal queue handoff"),
    ("submit_with", "wal queue handoff"),
    ("append", "wal group-commit append (blocks for fsync)"),
    ("reset", "wal reset barrier"),
];

/// Free/path calls (`sleep(..)`, `std::thread::park()`) that block.
const FREE_BLOCKERS: &[(&str, &str)] = &[
    ("sleep", "thread sleep"),
    ("park", "thread park"),
    ("park_timeout", "thread park"),
];

/// `File::create` / `fs::rename`-style path calls that do file I/O.
const FS_BLOCKERS: &[&str] = &["create", "rename", "remove_file", "copy"];
const FS_OWNERS: &[&str] = &["File", "fs", "OpenOptions"];

// ------------------------------------------------------------- classes

/// The corpus-wide lock-class registry.
struct Classes {
    /// Class id → display name (`Owner.field`).
    names: Vec<String>,
    /// (owner type, field) → class id.
    by_owner_field: HashMap<(String, String), u16>,
    /// Field name → ids (for receivers whose owner is unknown).
    by_field: HashMap<String, Vec<u16>>,
}

impl Classes {
    fn intern(&mut self, owner: &str, field: &str) -> u16 {
        if let Some(&id) = self
            .by_owner_field
            .get(&(owner.to_string(), field.to_string()))
        {
            return id;
        }
        let id = self.names.len() as u16;
        self.names.push(format!("{owner}.{field}"));
        self.by_owner_field
            .insert((owner.to_string(), field.to_string()), id);
        self.by_field.entry(field.to_string()).or_default().push(id);
        id
    }

    /// The unique class with this field name, if unambiguous.
    fn unique_field(&self, field: &str) -> Option<u16> {
        match self.by_field.get(field).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }
}

/// True when the token range `[start, end)` mentions a lock type.
fn mentions_lock_type(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && LOCK_TYPES.contains(&t.text.as_str()))
}

/// Scans one file for struct fields and statics of lock type,
/// interning a class for each.
fn collect_classes(model: &FileModel, classes: &mut Classes) {
    let toks = &model.toks;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("struct") {
            i = collect_struct_fields(toks, i, classes);
            continue;
        }
        if t.is_ident("static") {
            // `static NAME: <type with lock> = ..;`
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct(':') {
                let name = toks[j].text.clone();
                let mut k = j + 2;
                while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if mentions_lock_type(toks, j + 2, k) {
                    classes.intern("static", &name);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

/// Parses `struct Name { .. }` at the `struct` keyword, interning a
/// class for each lock-typed named field. Returns the next index.
fn collect_struct_fields(toks: &[Tok], kw: usize, classes: &mut Classes) -> usize {
    let mut i = kw + 1;
    let Some(name) =
        (i < toks.len() && toks[i].kind == TokKind::Ident).then(|| toks[i].text.clone())
    else {
        return i;
    };
    i += 1;
    // Skip to the body `{`; unit (`;`) and tuple (`(`) structs carry no
    // named lock fields we can address as `owner.field`.
    let mut angle = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && (t.is_punct('{') || t.is_punct(';') || t.is_punct('(')) {
            break;
        }
        i += 1;
    }
    if i >= toks.len() || !toks[i].is_punct('{') {
        return i + 1;
    }
    // Split the body on top-level commas; each `field: Type` segment
    // whose type mentions a lock type becomes a class.
    let open = i;
    let mut depth = 0i32;
    let mut close = toks.len() - 1;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                close = i;
                break;
            }
        }
        i += 1;
    }
    let mut seg_start = open + 1;
    let mut nest = 0i32;
    for j in open + 1..=close {
        let t = &toks[j];
        let top_comma = nest == 0 && t.is_punct(',');
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            nest -= 1;
        }
        if top_comma || j == close {
            if let Some(colon) = (seg_start..j).find(|&k| toks[k].is_punct(':')) {
                let is_path = colon < j && colon > 0 && toks[colon + 1].is_punct(':');
                if !is_path && mentions_lock_type(toks, colon + 1, j) {
                    if let Some(field) = (seg_start..colon)
                        .rev()
                        .map(|k| &toks[k])
                        .find(|t| t.kind == TokKind::Ident)
                    {
                        classes.intern(&name, &field.text.clone());
                    }
                }
            }
            seg_start = j + 1;
        }
    }
    close + 1
}

/// Lock-typed parameters of one function (`consume(&self, bucket:
/// &Mutex<TokenBucket>, ..)`), as (param name, class id) pairs.
fn param_classes(model: &FileModel, f: &FnItem, classes: &mut Classes) -> Vec<(String, u16)> {
    let toks = &model.toks;
    // The signature sits between the `fn` keyword and the body; walk
    // back from the body to the opening paren of the parameter list.
    let mut open = None;
    let mut depth = 0i32;
    let mut i = f.body_range.0.saturating_sub(2);
    while i > 0 {
        let t = &toks[i];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth < 0 {
                // Unbalanced close: signature had no parens before here.
                break;
            }
            if depth == 0 {
                open = Some(i);
            }
        } else if t.is_ident("fn") {
            break;
        }
        i -= 1;
    }
    let Some(open) = open else {
        return Vec::new();
    };
    let close = skip_group(toks, open, toks.len(), '(', ')');
    let owner = f
        .owner
        .as_ref()
        .map(|o| o.type_ident.as_str())
        .unwrap_or("fn");
    let mut out = Vec::new();
    let mut seg_start = open + 1;
    let mut nest = 0i32;
    for j in open + 1..close.min(toks.len()) {
        let t = &toks[j];
        let top_comma = nest == 0 && t.is_punct(',');
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            nest -= 1;
        }
        if top_comma || j + 1 == close.min(toks.len()) {
            let seg_end = if top_comma { j } else { j + 1 };
            if let Some(colon) = (seg_start..seg_end).find(|&k| toks[k].is_punct(':')) {
                if mentions_lock_type(toks, colon + 1, seg_end) {
                    if let Some(name) = (seg_start..colon)
                        .map(|k| &toks[k])
                        .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                    {
                        let class = format!("{owner}::{}({})", f.name, name.text);
                        let id = classes.names.len() as u16;
                        // Param classes are positional, not field-addressed;
                        // register the display name only.
                        classes.names.push(class);
                        out.push((name.text.clone(), id));
                    }
                }
            }
            seg_start = j + 1;
        }
    }
    out
}

/// Index just past the closer matching the opener at `open`.
pub(crate) fn skip_group(toks: &[Tok], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].is_punct(o) {
            depth += 1;
        } else if toks[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

// ----------------------------------------------------------- fn walker

/// One live guard.
#[derive(Clone, PartialEq)]
struct HeldGuard {
    class: u16,
    /// Binding name for `let`-bound guards; `None` = statement temporary.
    name: Option<String>,
    line: u32,
    /// Scope depth at acquisition (scope exit prunes deeper guards).
    depth: u16,
}

/// Dataflow state: live guards plus local `var → class` bindings
/// (`let shard = &self.shards[..];` later acquired via `shard.read()`).
#[derive(Clone, PartialEq, Default)]
struct LState {
    held: Vec<HeldGuard>,
    bindings: Vec<(String, u16)>,
}

/// A call site recorded for one-level propagation.
struct CallSite {
    callee: String,
    held: Vec<(u16, u32)>, // (class, guard acquisition line)
    line: u32,
}

/// Per-function facts produced by the walk.
struct FnFacts {
    /// Classes this function acquires anywhere (for propagation).
    acquires: BTreeSet<u16>,
    /// First direct blocking point, if any (for propagation).
    blocks: Option<(String, u32)>,
    /// Held-while-acquiring edges with provenance.
    edges: Vec<(u16, u16, u32)>,
    /// (guard class, guard line, blocking label, blocking line).
    blocked_holds: Vec<(u16, u32, String, u32)>,
    /// Calls made while holding at least one guard.
    calls: Vec<CallSite>,
}

struct FnCx<'a> {
    model: &'a FileModel,
    owner: Option<&'a str>,
    params: &'a [(String, u16)],
    accessors: &'a HashMap<String, u16>,
    classes: &'a Classes,
    facts: FnFacts,
}

const MAX_STATES: usize = 32;

impl FnCx<'_> {
    fn resolve_receiver(&self, s: &LState, j: usize) -> Option<u16> {
        let toks = &self.model.toks;
        // `j` is the acquisition method ident; receiver ends at j-2
        // (past the `.`).
        if j < 2 {
            return None;
        }
        let r = j - 2;
        if toks[r].is_punct(')') {
            // `self.shard(id).read()` — find the call's method ident and
            // resolve it as an accessor.
            let mut depth = 0i32;
            let mut k = r;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                return self.accessors.get(&toks[k - 1].text).copied();
            }
            return None;
        }
        if toks[r].kind != TokKind::Ident {
            return None;
        }
        let field = toks[r].text.as_str();
        let qualified = r >= 2 && toks[r - 1].is_punct('.');
        let base_self = qualified && toks[r - 2].is_ident("self");
        // Owner-qualified field wins (`self.inner` in two structs named
        // `inner` resolves by the enclosing impl).
        if base_self {
            if let Some(owner) = self.owner {
                if let Some(&id) = self
                    .classes
                    .by_owner_field
                    .get(&(owner.to_string(), field.to_string()))
                {
                    return Some(id);
                }
            }
        }
        if !qualified {
            // Plain identifier: a local binding or a lock-typed param.
            if let Some(&(_, id)) = s.bindings.iter().rev().find(|(n, _)| n == field) {
                return Some(id);
            }
            if let Some(&(_, id)) = self.params.iter().find(|(n, _)| n == field) {
                return Some(id);
            }
            if let Some(id) = self.accessors.get(field) {
                return Some(*id);
            }
        }
        // Fall back to a corpus-unique field name (`act.actor.lock()`).
        self.classes.unique_field(field)
    }

    /// A lock-field or accessor mention inside a statement, for
    /// `let shard = self.shard(id);`-style binding inference.
    fn resolve_mention(&self, s: &LState, j: usize) -> Option<u16> {
        let toks = &self.model.toks;
        if toks[j].kind != TokKind::Ident {
            return None;
        }
        let name = toks[j].text.as_str();
        let preceded_by_self = j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].is_ident("self");
        if preceded_by_self {
            if let Some(owner) = self.owner {
                if let Some(&id) = self
                    .classes
                    .by_owner_field
                    .get(&(owner.to_string(), name.to_string()))
                {
                    return Some(id);
                }
            }
            if let Some(id) = self.accessors.get(name) {
                return Some(*id);
            }
            return self.classes.unique_field(name);
        }
        if let Some(&(_, id)) = s.bindings.iter().rev().find(|(n, _)| n == name) {
            return Some(id);
        }
        None
    }
}

fn walk_seq(cx: &mut FnCx<'_>, flow: &Flow, mut states: Vec<LState>, depth: u16) -> Vec<LState> {
    for step in &flow.0 {
        match step {
            Step::Run(idxs) => {
                for s in &mut states {
                    run_tokens(cx, s, idxs, depth);
                }
            }
            Step::Scope(body) => {
                states = walk_seq(cx, body, states, depth + 1);
                for s in &mut states {
                    close_scope(s, depth);
                }
            }
            Step::Branch { arms, exhaustive } => {
                let mut out: Vec<LState> = if *exhaustive {
                    Vec::new()
                } else {
                    states.clone()
                };
                for arm in arms {
                    for mut s in walk_seq(cx, arm, states.clone(), depth + 1) {
                        close_scope(&mut s, depth);
                        if !out.contains(&s) {
                            out.push(s);
                        }
                    }
                }
                states = out;
            }
            Step::Loop(body) => {
                let extra: Vec<LState> = walk_seq(cx, body, states.clone(), depth + 1);
                for mut s in extra {
                    close_scope(&mut s, depth);
                    if !states.contains(&s) {
                        states.push(s);
                    }
                }
            }
            Step::Return { toks, .. } => {
                for mut s in states.drain(..) {
                    run_tokens(cx, &mut s, toks, depth);
                }
            }
            Step::Try { .. } => {}
        }
        states.dedup_by(|a, b| a == b);
        states.truncate(MAX_STATES);
        if states.is_empty() {
            break;
        }
    }
    states
}

fn close_scope(s: &mut LState, depth: u16) {
    s.held.retain(|g| g.depth <= depth);
    // Scope exit also ends any statement in flight.
    s.held.retain(|g| g.name.is_some());
}

/// Applies one straight-line token run to a state, recording
/// acquisitions, releases, blocking points, and call sites.
fn run_tokens(cx: &mut FnCx<'_>, s: &mut LState, idxs: &[usize], depth: u16) {
    let toks = &cx.model.toks;
    let mut pending_let: Option<String> = None;
    let mut pending_bind: Option<u16> = None;
    let mut pdepth = 0i32;

    // `for x in <expr-with-lock>` heads bind the loop variable.
    if idxs.len() >= 2 && toks[idxs[0]].kind == TokKind::Ident && toks[idxs[1]].is_ident("in") {
        if let Some(id) = idxs[2..].iter().find_map(|&j| cx.resolve_mention(s, j)) {
            s.bindings.push((toks[idxs[0]].text.clone(), id));
        }
    }

    let mut k = 0usize;
    while k < idxs.len() {
        let j = idxs[k];
        let t = &toks[j];

        if t.is_punct('(') || t.is_punct('[') {
            pdepth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            pdepth -= 1;
        } else if t.is_punct(';') && pdepth <= 0 {
            // Statement end: temporaries die, pending binding commits.
            s.held.retain(|g| g.name.is_some());
            if let (Some(n), Some(c)) = (pending_let.take(), pending_bind.take()) {
                s.bindings.push((n, c));
            }
            pending_let = None;
            pending_bind = None;
            k += 1;
            continue;
        }

        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }

        // `let [mut] name =` opens a binding statement.
        if t.text == "let" {
            let mut n = k + 1;
            if n < idxs.len() && toks[idxs[n]].is_ident("mut") {
                n += 1;
            }
            if n + 1 < idxs.len()
                && toks[idxs[n]].kind == TokKind::Ident
                && toks[idxs[n + 1]].is_punct('=')
            {
                pending_let = Some(toks[idxs[n]].text.clone());
                pending_bind = None;
                k = n + 2;
                continue;
            }
            k += 1;
            continue;
        }

        // `drop(g)` releases a named guard (or forgets a binding).
        if t.text == "drop"
            && j + 3 < toks.len()
            && toks[j + 1].is_punct('(')
            && toks[j + 2].kind == TokKind::Ident
            && toks[j + 3].is_punct(')')
        {
            let name = toks[j + 2].text.as_str();
            s.held.retain(|g| g.name.as_deref() != Some(name));
            s.bindings.retain(|(n, _)| n != name);
            k += 1;
            continue;
        }

        let prev_dot = j >= 1 && toks[j - 1].is_punct('.');
        let next_paren = j + 1 < toks.len() && toks[j + 1].is_punct('(');

        // Acquisition: `.lock()` / `.read()` / `.write()` (zero-arg —
        // `file.write(buf)` / `stream.read(&mut b)` are I/O, not locks).
        if prev_dot
            && next_paren
            && j + 2 < toks.len()
            && toks[j + 2].is_punct(')')
            && ACQUIRE_METHODS.contains(&t.text.as_str())
        {
            if let Some(class) = cx.resolve_receiver(s, j) {
                cx.facts.acquires.insert(class);
                let mut seen = BTreeSet::new();
                for g in &s.held {
                    if seen.insert(g.class) {
                        cx.facts.edges.push((g.class, class, t.line));
                    }
                }
                s.held.push(HeldGuard {
                    class,
                    name: pending_let.take(),
                    line: t.line,
                    depth,
                });
                k += 1;
                continue;
            }
        }

        // Binding inference: while a `let` is pending, the first
        // resolvable lock mention becomes the binding's class (unless an
        // acquisition consumed the `let` above).
        if pending_let.is_some() && pending_bind.is_none() {
            if let Some(id) = cx.resolve_mention(s, j) {
                pending_bind = Some(id);
            }
        }

        // Blocking points.
        let mut blocked: Option<(String, &'static str)> = None;
        if next_paren {
            if prev_dot {
                // `join` doubles as `Path::join`; only the zero-arg
                // thread/handle form blocks.
                let zero_arg = j + 2 < toks.len() && toks[j + 2].is_punct(')');
                if let Some((_, label)) = METHOD_BLOCKERS
                    .iter()
                    .filter(|(m, _)| *m != "join" || zero_arg)
                    .find(|(m, _)| *m == t.text.as_str())
                {
                    blocked = Some((format!(".{}(..)", t.text), label));
                }
            } else {
                let path_sep = j >= 1 && toks[j - 1].is_punct(':');
                if let Some((_, label)) = FREE_BLOCKERS.iter().find(|(m, _)| *m == t.text.as_str())
                {
                    blocked = Some((format!("{}(..)", t.text), label));
                }
                if blocked.is_none()
                    && path_sep
                    && j >= 3
                    && toks[j - 2].is_punct(':')
                    && FS_BLOCKERS.contains(&t.text.as_str())
                    && FS_OWNERS.contains(&toks[j - 3].text.as_str())
                {
                    blocked = Some((format!("{}::{}(..)", toks[j - 3].text, t.text), "file I/O"));
                }
            }
        }
        if let Some((what, label)) = blocked {
            if cx.facts.blocks.is_none() {
                cx.facts.blocks = Some((format!("{what} — {label}"), t.line));
            }
            let mut seen = BTreeSet::new();
            for g in &s.held {
                if seen.insert(g.class) {
                    cx.facts.blocked_holds.push((
                        g.class,
                        g.line,
                        format!("{what} ({label})"),
                        t.line,
                    ));
                }
            }
            k += 1;
            continue;
        }

        // Call sites for one-level propagation: `self.helper(..)` and
        // free/path calls, recorded only while a guard is live.
        if next_paren && !s.held.is_empty() {
            let self_method = prev_dot && j >= 2 && toks[j - 2].is_ident("self");
            let free_call = !prev_dot;
            if (self_method || free_call) && !is_keywordish(&t.text) {
                let mut held = Vec::new();
                let mut seen = BTreeSet::new();
                for g in &s.held {
                    if seen.insert(g.class) {
                        held.push((g.class, g.line));
                    }
                }
                cx.facts.calls.push(CallSite {
                    callee: t.text.clone(),
                    held,
                    line: t.line,
                });
            }
        }
        k += 1;
    }

    // A run ending mid-statement (an `if`/`match` head) evaluates its
    // temporaries before the branch in the common case; drop them.
    s.held.retain(|g| g.name.is_some());
    if let (Some(n), Some(c)) = (pending_let, pending_bind) {
        s.bindings.push((n, c));
    }
}

/// Idents that look like calls but are control flow or constructors.
fn is_keywordish(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "assert"
            | "debug_assert"
            | "panic"
            | "vec"
            | "format"
            | "new"
    ) || name.chars().next().is_some_and(char::is_uppercase)
}

// ------------------------------------------------------------ analysis

/// The result of a lockcheck pass: findings plus the lock-order graph.
pub struct LockAnalysis {
    /// `lock-across-blocking` and `lock-order-cycle` findings.
    pub findings: Vec<Finding>,
    /// The held-while-acquiring graph (DOT-dumpable, cycle-checked).
    pub graph: LockGraph,
}

/// Runs lockcheck over a parsed corpus.
pub fn lockcheck_corpus(corpus: &Corpus) -> LockAnalysis {
    let mut classes = Classes {
        names: Vec::new(),
        by_owner_field: HashMap::new(),
        by_field: HashMap::new(),
    };
    for file in &corpus.files {
        collect_classes(file, &mut classes);
    }

    // Accessor methods: a fn whose body mentions exactly one of its
    // owner's lock fields can stand in for that field as a receiver
    // (`self.shard(id).read()` → `Directory.shards`).
    let mut accessors_by_file: Vec<HashMap<String, u16>> = Vec::new();
    for file in &corpus.files {
        let mut here = HashMap::new();
        for f in &file.fns {
            let Some(owner) = &f.owner else { continue };
            let mut found: BTreeSet<u16> = BTreeSet::new();
            for j in f.body_range.0..f.body_range.1 {
                let t = &file.toks[j];
                if t.kind == TokKind::Ident && j >= 2 && file.toks[j - 1].is_punct('.') {
                    if let Some(&id) = classes
                        .by_owner_field
                        .get(&(owner.type_ident.clone(), t.text.clone()))
                    {
                        found.insert(id);
                    }
                }
            }
            if found.len() == 1 {
                here.insert(f.name.clone(), *found.iter().next().unwrap());
            }
        }
        accessors_by_file.push(here);
    }

    // Pass 1: walk every function.
    let mut all_facts: Vec<Vec<FnFacts>> = Vec::new();
    let mut fn_index: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        let mut per_fn = Vec::new();
        for (gi, f) in file.fns.iter().enumerate() {
            let params = param_classes(file, f, &mut classes);
            let mut cx = FnCx {
                model: file,
                owner: f.owner.as_ref().map(|o| o.type_ident.as_str()),
                params: &params,
                accessors: &accessors_by_file[fi],
                classes: &classes,
                facts: FnFacts {
                    acquires: BTreeSet::new(),
                    blocks: None,
                    edges: Vec::new(),
                    blocked_holds: Vec::new(),
                    calls: Vec::new(),
                },
            };
            walk_seq(&mut cx, &f.body, vec![LState::default()], 0);
            per_fn.push(cx.facts);
            fn_index.entry(f.name.clone()).or_default().push((fi, gi));
        }
        all_facts.push(per_fn);
    }

    // Pass 2: one-level call propagation + finding assembly.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(u16, u16), LockEdge> = BTreeMap::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let facts = &all_facts[fi][gi];
            let mut reported: BTreeSet<(u16, u32)> = BTreeSet::new();
            for (class, gline, what, bline) in &facts.blocked_holds {
                if !reported.insert((*class, *bline)) {
                    continue;
                }
                if file.allowed(*bline, Rule::LockAcrossBlocking)
                    || file.allowed(*gline, Rule::LockAcrossBlocking)
                {
                    continue;
                }
                let class_name = classes.names[*class as usize].clone();
                findings.push(Finding {
                    rule: Rule::LockAcrossBlocking,
                    file: file.path.clone(),
                    line: *bline,
                    excerpt: file.excerpt(*bline),
                    detail: format!(
                        "`{}` holds `{class_name}` (acquired line {gline}) across {what} — \
                         every thread contending on that lock stalls behind this operation",
                        f.name
                    ),
                    item: Some(f.name.clone()),
                    class: Some(class_name),
                });
            }
            for (from, to, line) in &facts.edges {
                edges.entry((*from, *to)).or_insert_with(|| LockEdge {
                    from: classes.names[*from as usize].clone(),
                    to: classes.names[*to as usize].clone(),
                    file: file.path.clone(),
                    line: *line,
                    via: f.name.clone(),
                });
            }
            // Propagated effects of calls made under a guard.
            for call in &facts.calls {
                let Some(cands) = fn_index.get(&call.callee) else {
                    continue;
                };
                let same_file: Vec<_> = cands.iter().filter(|(cf, _)| *cf == fi).collect();
                let chosen = match (same_file.len(), cands.len()) {
                    (1, _) => Some(*same_file[0]),
                    (0, 1) => Some(cands[0]),
                    _ => None,
                };
                let Some((cf, cg)) = chosen else { continue };
                if (cf, cg) == (fi, gi) {
                    continue; // self-recursion adds nothing
                }
                let callee = &all_facts[cf][cg];
                for &(held, gline) in &call.held {
                    for &acq in &callee.acquires {
                        edges.entry((held, acq)).or_insert_with(|| LockEdge {
                            from: classes.names[held as usize].clone(),
                            to: classes.names[acq as usize].clone(),
                            file: file.path.clone(),
                            line: call.line,
                            via: format!("{} -> {}", f.name, call.callee),
                        });
                    }
                    if let Some((what, bline)) = &callee.blocks {
                        if !reported.insert((held, call.line)) {
                            continue;
                        }
                        if file.allowed(call.line, Rule::LockAcrossBlocking)
                            || file.allowed(gline, Rule::LockAcrossBlocking)
                        {
                            continue;
                        }
                        let class_name = classes.names[held as usize].clone();
                        findings.push(Finding {
                            rule: Rule::LockAcrossBlocking,
                            file: file.path.clone(),
                            line: call.line,
                            excerpt: file.excerpt(call.line),
                            detail: format!(
                                "`{}` holds `{class_name}` (acquired line {gline}) across a \
                                 call to `{}`, which blocks ({what} at line {bline})",
                                f.name, call.callee
                            ),
                            item: Some(f.name.clone()),
                            class: Some(class_name),
                        });
                    }
                }
            }
        }
    }

    let graph = LockGraph::new(classes.names.clone(), edges.into_values().collect());
    findings.extend(graph.cycle_findings());
    findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    LockAnalysis { findings, graph }
}

/// Loads every `.rs` file under the given roots and runs lockcheck.
pub fn lockcheck_tree(roots: &[PathBuf]) -> io::Result<LockAnalysis> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut sources = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)?;
        sources.push((f, text));
    }
    Ok(lockcheck_corpus(&Corpus::from_sources(sources)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> LockAnalysis {
        lockcheck_corpus(&Corpus::from_sources(vec![(
            PathBuf::from("test.rs"),
            src.to_string(),
        )]))
    }

    #[test]
    fn classes_from_fields_and_params() {
        let a = analyze(
            "struct A { m: Mutex<u32>, plain: u32 }\n\
             struct B { r: parking_lot::RwLock<Vec<u8>> }\n\
             impl A { fn take(&self, extra: &Mutex<u8>) { extra.lock(); } }\n",
        );
        assert!(
            a.graph.nodes().iter().any(|n| n == "A.m"),
            "{:?}",
            a.graph.nodes()
        );
        assert!(a.graph.nodes().iter().any(|n| n == "B.r"));
        assert!(a.graph.nodes().iter().any(|n| n == "A::take(extra)"));
        assert!(!a.graph.nodes().iter().any(|n| n.contains("plain")));
    }

    #[test]
    fn held_while_acquiring_builds_edge() {
        let a = analyze(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn both(&self) {\n\
             let g = self.a.lock();\n\
             let h = self.b.lock();\n\
             drop(h);\n\
             drop(g);\n\
             }\n\
             }\n",
        );
        assert!(a
            .graph
            .edges()
            .iter()
            .any(|e| e.from == "S.a" && e.to == "S.b"));
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let a = analyze(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }\n",
        );
        assert!(
            a.findings.iter().any(|f| f.rule == Rule::LockOrderCycle),
            "{:#?}",
            a.findings
        );
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let a = analyze(
            "struct S { a: Mutex<Vec<u32>> }\n\
             impl S {\n\
             fn quick(&self) {\n\
             self.a.lock().push(1);\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn guard_across_sleep_is_flagged() {
        let a = analyze(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
             fn slow(&self) {\n\
             let g = self.a.lock();\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.findings[0].rule, Rule::LockAcrossBlocking);
        assert_eq!(a.findings[0].class.as_deref(), Some("S.a"));
        assert_eq!(a.findings[0].item.as_deref(), Some("slow"));
    }

    #[test]
    fn scope_exit_releases_guard() {
        let a = analyze(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
             fn scoped(&self) {\n\
             { let g = self.a.lock(); }\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let a = analyze(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
             fn dropped(&self) {\n\
             let g = self.a.lock();\n\
             drop(g);\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn one_level_propagation_through_self_call() {
        let a = analyze(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
             fn outer(&self) {\n\
             let g = self.a.lock();\n\
             self.inner_step();\n\
             }\n\
             fn inner_step(&self) {\n\
             let h = self.b.lock();\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        // Edge a -> b via the call, blocking finding in inner_step
        // itself, and a propagated finding at the call site.
        assert!(a
            .graph
            .edges()
            .iter()
            .any(|e| e.from == "S.a" && e.to == "S.b"));
        assert_eq!(
            a.findings
                .iter()
                .filter(|f| f.rule == Rule::LockAcrossBlocking)
                .count(),
            2,
            "{:#?}",
            a.findings
        );
    }

    #[test]
    fn binding_through_accessor_method() {
        let a = analyze(
            "struct D { shards: Vec<RwLock<u32>> }\n\
             impl D {\n\
             fn shard(&self) -> &RwLock<u32> { &self.shards[0] }\n\
             fn get(&self) {\n\
             let s = self.shard();\n\
             let g = s.read();\n\
             file.write_all(&buf);\n\
             }\n\
             fn direct(&self) { self.shard().read(); }\n\
             }\n",
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.findings[0].class.as_deref(), Some("D.shards"));
    }

    #[test]
    fn condvar_wait_under_guard_is_flagged() {
        let a = analyze(
            "struct S { m: Mutex<u32>, cv: Condvar }\n\
             impl S {\n\
             fn block(&self) {\n\
             let mut g = self.m.lock();\n\
             self.cv.wait(&mut g);\n\
             }\n\
             }\n",
        );
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == Rule::LockAcrossBlocking && f.detail.contains("wait")),
            "{:#?}",
            a.findings
        );
    }

    #[test]
    fn wal_seams_under_guard_are_flagged() {
        // Known-dirty fixture for the WAL blocking taxonomy: an index
        // lock held across the blocking append (waits for the group
        // fsync) and across the non-blocking-but-handoff submit (takes
        // the committer's queue mutex) must both fire.
        let a = analyze(
            "struct Idx { index: Mutex<u32> }\n\
             impl Idx {\n\
             fn durable_insert(&self) {\n\
             let g = self.index.lock();\n\
             self.wal.append(payload);\n\
             }\n\
             fn queued_insert(&self) {\n\
             let g = self.index.lock();\n\
             self.wal.submit(payload);\n\
             }\n\
             }\n",
        );
        let walish: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockAcrossBlocking && f.detail.contains("wal"))
            .collect();
        assert_eq!(walish.len(), 2, "{:#?}", a.findings);
        assert!(walish.iter().any(|f| f.detail.contains("append")));
        assert!(walish.iter().any(|f| f.detail.contains("handoff")));
    }

    #[test]
    fn allow_marker_suppresses() {
        let a = analyze(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
             fn slow(&self) {\n\
             let g = self.a.lock();\n\
             // aodb-lint: allow(lock-across-blocking)\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn branch_arms_merge_guard_states() {
        let a = analyze(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
             fn maybe(&self, c: bool) {\n\
             let g = self.a.lock();\n\
             if c {\n\
             drop(g);\n\
             }\n\
             std::thread::sleep(d);\n\
             }\n\
             }\n",
        );
        // On the not-dropped path the guard is still live at the sleep.
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
    }

    #[test]
    fn graph_dot_is_deterministic() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S { fn ab(&self) { let g = self.a.lock(); self.b.lock().clone(); } }\n";
        let d1 = analyze(src).graph.to_dot();
        let d2 = analyze(src).graph.to_dot();
        assert_eq!(d1, d2);
        assert!(d1.contains("\"S.a\" -> \"S.b\""), "{d1}");
    }
}
