//! aodb-replaycheck — static determinism analysis for actor turns.
//!
//! The chaos fleet (and any future transactional commit ordering) can
//! only replay a history if every turn is *deterministic*: same state +
//! same envelope ⇒ same sends, same replies, same persisted bytes. This
//! pass checks that property at the source level, over the same parsed
//! corpus the verify passes use:
//!
//! * **`nondet-in-turn`** — a value from a nondeterminism source (see
//!   [`crate::effects`] for the taxonomy: unordered-collection
//!   iteration, RNG, thread identity, env/FS reads) flows into a send
//!   payload, a reply, or a persisted write inside a turn function
//!   (`Handler::handle`, `Actor::on_activate`/`on_deactivate`) or a
//!   helper one call away from one.
//! * **`unordered-persisted-state`** — a type used as `Persisted<T>`
//!   state carries a `HashMap`/`HashSet` field, so serde serializes it
//!   in arbitrary order and identical logical state produces different
//!   blobs (breaks byte-level replay comparison even when reads are all
//!   keyed).
//! * **`ambient-clock`** — `Instant::now()`/`SystemTime::now()` inside a
//!   turn; actor code must read time through `ActorContext::now()`, the
//!   runtime's replay-stable clock.
//!
//! Soundness envelope (same as lockcheck, DESIGN.md §12): one level of
//! `self.`/free-call propagation, statement-granular taint (a statement
//! that both uses a dirty value and contains a sink is a finding — no
//! argument-position precision), receivers resolved by owner field
//! first and corpus-unique field name second. The walk may miss
//! (match-scrutinee rebinding, two-hop helpers); it does not crash, and
//! what it flags is reviewable at the line it names.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

use crate::dataflow::{FileModel, FnItem};
use crate::effects::{
    collect_unordered_classes, effect_facts, is_keywordish, EffectCx, EffectFacts, UnorderedClasses,
};
use crate::lexer::TokKind;
use crate::lint::{Finding, Rule};
use crate::sendsites::Corpus;

/// Runs the replaycheck pass over a parsed corpus.
pub fn replaycheck_corpus(corpus: &Corpus) -> Vec<Finding> {
    // Corpus-wide unordered-collection classes (`Owner.field`).
    let mut classes = UnorderedClasses::default();
    for (fi, file) in corpus.files.iter().enumerate() {
        collect_unordered_classes(file, fi, &mut classes);
    }

    // Every type name used as a `Persisted<T>` state argument.
    let persisted = persisted_type_args(corpus);

    // Per-function effect facts and locations, for helper resolution.
    let mut facts_by_name: HashMap<String, Vec<(usize, EffectFacts)>> = HashMap::new();
    let mut fns_by_name: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            facts_by_name
                .entry(f.name.clone())
                .or_default()
                .push((fi, effect_facts(file, f)));
            fns_by_name
                .entry(f.name.clone())
                .or_default()
                .push((fi, gi));
        }
    }

    let mut findings = Vec::new();

    // Rule: unordered-persisted-state.
    for (id, def) in classes.defs.iter().enumerate() {
        if !persisted.contains(&def.owner) {
            continue;
        }
        let model = &corpus.files[def.file];
        if model.allowed(def.line, Rule::UnorderedPersistedState) {
            continue;
        }
        let class = classes.names[id].clone();
        findings.push(Finding {
            rule: Rule::UnorderedPersistedState,
            file: model.path.clone(),
            line: def.line,
            excerpt: model.excerpt(def.line),
            detail: format!(
                "`{owner}` is `Persisted<{owner}>` state but field `{field}` is an \
                 unordered collection — serde serializes it in arbitrary order, so \
                 identical logical state produces different blobs; use `BTreeMap`/\
                 `BTreeSet` for canonical bytes",
                owner = def.owner,
                field = def.field,
            ),
            item: Some(class.clone()),
            class: Some(class),
        });
    }

    // Rules: nondet-in-turn + ambient-clock, over turn functions and
    // helpers one call away from them.
    let mut work: Vec<(usize, usize, bool)> = Vec::new(); // (file, fn, is_handler)
    let mut visited: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if is_turn_fn(f) {
                work.push((fi, gi, is_sync_handler(f)));
                visited.push((fi, gi));
            }
        }
    }
    // One level of propagation: helpers called from turn functions join
    // the walk (as non-handlers — their return value is not a reply).
    let mut helpers: Vec<(usize, usize)> = Vec::new();
    for &(fi, gi, _) in &work {
        let file = &corpus.files[fi];
        for callee in callee_names(file, &file.fns[gi]) {
            if let Some(target) = resolve_fn(&fns_by_name, fi, &callee) {
                if !visited.contains(&target) {
                    visited.push(target);
                    helpers.push(target);
                }
            }
        }
    }
    work.extend(helpers.into_iter().map(|(fi, gi)| (fi, gi, false)));

    for (fi, gi, is_handler) in work {
        let model = &corpus.files[fi];
        let f = &model.fns[gi];
        let owner = f.owner.as_ref().map(|o| o.type_ident.as_str());
        let resolver = |name: &str| -> Option<EffectFacts> {
            let candidates = facts_by_name.get(name)?;
            let same_file: Vec<&(usize, EffectFacts)> =
                candidates.iter().filter(|(cf, _)| *cf == fi).collect();
            match (same_file.len(), candidates.len()) {
                (1, _) => Some(same_file[0].1),
                (0, 1) => Some(candidates[0].1),
                _ => None,
            }
        };
        let mut cx = EffectCx::new(model, owner, &classes, &resolver, is_handler);
        cx.walk_fn(f);
        for ef in &cx.findings {
            if model.allowed(ef.line, Rule::NondetInTurn) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::NondetInTurn,
                file: model.path.clone(),
                line: ef.line,
                excerpt: model.excerpt(ef.line),
                detail: format!(
                    "`{}`: {} flows into a {} — the same state and message can \
                     produce different observable effects on replay",
                    f.name, ef.source, ef.sink,
                ),
                item: Some(f.name.clone()),
                class: ef.class.clone(),
            });
        }
        for ck in &cx.clocks {
            if model.allowed(ck.line, Rule::AmbientClock) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::AmbientClock,
                file: model.path.clone(),
                line: ck.line,
                excerpt: model.excerpt(ck.line),
                detail: format!(
                    "`{}` reads the ambient wall clock via `{}()` — actor code must \
                     use `ActorContext::now()` so replayed turns observe the same time",
                    f.name, ck.what,
                ),
                item: Some(f.name.clone()),
                class: None,
            });
        }
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    findings
}

/// Loads every `.rs` file under the given roots as one corpus and runs
/// the replaycheck pass.
pub fn replaycheck_tree(roots: &[PathBuf]) -> io::Result<Vec<Finding>> {
    Ok(replaycheck_corpus(&Corpus::load(roots)?))
}

/// True for functions the runtime invokes as (part of) a turn.
fn is_turn_fn(f: &FnItem) -> bool {
    let Some(owner) = &f.owner else { return false };
    match owner.trait_ident.as_deref() {
        Some("Handler") => f.name == "handle",
        Some("Actor") => f.name == "on_activate" || f.name == "on_deactivate",
        _ => false,
    }
}

/// True when the turn function's return value is delivered as a reply
/// (so its tail expression is a sink).
fn is_sync_handler(f: &FnItem) -> bool {
    f.name == "handle"
        && f.owner
            .as_ref()
            .is_some_and(|o| o.trait_ident.as_deref() == Some("Handler"))
}

/// Names called as `self.name(..)` or free `name(..)` from a function
/// body (candidates for one-level propagation).
fn callee_names(model: &FileModel, f: &FnItem) -> Vec<String> {
    let toks = &model.toks;
    let mut out = Vec::new();
    for j in f.body_range.0..f.body_range.1 {
        let t = &toks[j];
        if t.kind != TokKind::Ident || is_keywordish(&t.text) || t.text == f.name {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let prev_dot = j >= 1 && toks[j - 1].is_punct('.');
        let prev_path = j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':');
        let self_method = prev_dot && j >= 2 && toks[j - 2].is_ident("self");
        if (self_method || (!prev_dot && !prev_path)) && !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Same-file-unique first, then corpus-unique — the lockcheck envelope.
fn resolve_fn(
    index: &HashMap<String, Vec<(usize, usize)>>,
    file: usize,
    name: &str,
) -> Option<(usize, usize)> {
    let candidates = index.get(name)?;
    let same_file: Vec<&(usize, usize)> = candidates.iter().filter(|(cf, _)| *cf == file).collect();
    match (same_file.len(), candidates.len()) {
        (1, _) => Some(*same_file[0]),
        (0, 1) => Some(candidates[0]),
        _ => None,
    }
}

// `persisted_type_args` — the corpus-wide walk collecting `Persisted<T>`
// type arguments — moved to [`crate::schema`], which shares it with the
// fingerprinting pass.
use crate::schema::persisted_type_args;

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(src: &str) -> Corpus {
        Corpus::from_sources(vec![(PathBuf::from("fixture.rs"), src.to_string())])
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.name()).collect()
    }

    #[test]
    fn hashmap_iteration_into_send_is_flagged() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             for ch in self.buffers.keys() {\n\
             ctx.actor_ref::<Chan>(ch.clone()).tell(Ping);\n\
             }\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["nondet-in-turn"], "{f:?}");
        assert_eq!(f[0].class.as_deref(), Some("Gw.buffers"));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let c = corpus(
            "struct Gw { buffers: BTreeMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             for ch in self.buffers.keys() {\n\
             ctx.actor_ref::<Chan>(ch.clone()).tell(Ping);\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(replaycheck_corpus(&c).is_empty());
    }

    #[test]
    fn collected_keys_through_binding_taint_a_later_send() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             let channels = self.buffers.keys().cloned().collect::<Vec<_>>();\n\
             for channel in channels {\n\
             ctx.actor_ref::<Chan>(channel).tell(Ping);\n\
             }\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["nondet-in-turn"], "{f:?}");
    }

    #[test]
    fn keyed_access_is_clean() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Get> for Gw {\n\
             fn handle(&mut self, msg: Get, _ctx: &mut ActorContext<'_>) -> u32 {\n\
             let n = self.buffers.get(&msg.ch).map(|v| v.len()).unwrap_or(0);\n\
             n as u32\n\
             }\n\
             }\n",
        );
        assert!(replaycheck_corpus(&c).is_empty());
    }

    #[test]
    fn iteration_into_reply_value_is_flagged() {
        let c = corpus(
            "struct Reg { live: HashMap<String, u32> }\n\
             impl Handler<List> for Reg {\n\
             fn handle(&mut self, msg: List, _ctx: &mut ActorContext<'_>) -> Vec<String> {\n\
             self.live.keys().cloned().collect()\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["nondet-in-turn"], "{f:?}");
        assert!(f[0].detail.contains("reply"), "{f:?}");
    }

    #[test]
    fn unordered_field_in_persisted_state_is_flagged() {
        let c = corpus(
            "struct EngineState { completed: HashMap<String, u32> }\n\
             struct Engine { progress: Persisted<EngineState> }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["unordered-persisted-state"], "{f:?}");
        assert_eq!(f[0].item.as_deref(), Some("EngineState.completed"));
    }

    #[test]
    fn unordered_field_in_unpersisted_struct_is_clean() {
        let c = corpus("struct Cache { hot: HashMap<String, u32> }\n");
        assert!(replaycheck_corpus(&c).is_empty());
    }

    #[test]
    fn ambient_clock_in_turn_is_flagged_and_ctx_now_is_clean() {
        let dirty = corpus(
            "impl Handler<Tick> for A {\n\
             fn handle(&mut self, msg: Tick, ctx: &mut ActorContext<'_>) {\n\
             let t = Instant::now();\n\
             self.last = t;\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&dirty);
        assert_eq!(rules(&f), ["ambient-clock"], "{f:?}");

        let clean = corpus(
            "impl Handler<Tick> for A {\n\
             fn handle(&mut self, msg: Tick, ctx: &mut ActorContext<'_>) {\n\
             let t = ctx.now();\n\
             self.last = t;\n\
             }\n\
             }\n",
        );
        assert!(replaycheck_corpus(&clean).is_empty());
    }

    #[test]
    fn clock_outside_turns_is_not_flagged() {
        let c = corpus(
            "fn bench_harness() {\n\
             let t = Instant::now();\n\
             run(t);\n\
             }\n",
        );
        assert!(replaycheck_corpus(&c).is_empty());
    }

    #[test]
    fn helper_one_level_away_is_walked() {
        let c = corpus(
            "impl Handler<Tick> for A {\n\
             fn handle(&mut self, msg: Tick, ctx: &mut ActorContext<'_>) {\n\
             self.stamp(ctx);\n\
             }\n\
             }\n\
             impl A {\n\
             fn stamp(&mut self, ctx: &mut ActorContext<'_>) {\n\
             let t = SystemTime::now();\n\
             self.last = t;\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["ambient-clock"], "{f:?}");
        assert_eq!(f[0].item.as_deref(), Some("stamp"));
    }

    #[test]
    fn rng_into_persisted_write_is_flagged() {
        let c = corpus(
            "impl Handler<Roll> for A {\n\
             fn handle(&mut self, msg: Roll, _ctx: &mut ActorContext<'_>) {\n\
             let n = thread_rng().gen::<u32>();\n\
             self.state.mutate(|s| s.seed = n);\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["nondet-in-turn"], "{f:?}");
        assert!(f[0].detail.contains("persisted write"), "{f:?}");
    }

    #[test]
    fn taint_into_helper_that_sends_is_flagged() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             for channel in self.buffers.keys() {\n\
             self.forward(channel, ctx);\n\
             }\n\
             }\n\
             }\n\
             impl Gw {\n\
             fn forward(&mut self, channel: &str, ctx: &mut ActorContext<'_>) {\n\
             ctx.actor_ref::<Chan>(channel.to_string()).tell(Ping);\n\
             }\n\
             }\n",
        );
        let f = replaycheck_corpus(&c);
        assert_eq!(rules(&f), ["nondet-in-turn"], "{f:?}");
        assert!(f[0].detail.contains("helper"), "{f:?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             for ch in self.buffers.keys() {\n\
             // deliberate: aodb-lint: allow(nondet-in-turn)\n\
             ctx.actor_ref::<Chan>(ch.clone()).tell(Ping);\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(replaycheck_corpus(&c).is_empty());
    }

    #[test]
    fn clean_rebind_clears_taint() {
        let c = corpus(
            "struct Gw { buffers: HashMap<String, Vec<u32>> }\n\
             impl Handler<Flush> for Gw {\n\
             fn handle(&mut self, msg: Flush, ctx: &mut ActorContext<'_>) {\n\
             let ch = self.buffers.keys().next().cloned();\n\
             let ch = msg.channel.clone();\n\
             ctx.actor_ref::<Chan>(ch).tell(Ping);\n\
             }\n\
             }\n",
        );
        assert!(replaycheck_corpus(&c).is_empty());
    }
}
