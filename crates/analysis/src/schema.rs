//! aodb-schemacheck — persisted-layout fingerprinting.
//!
//! Recovery only works if persisted bytes decode after any code change.
//! Two kinds of layout carry that obligation in this workspace:
//!
//! * **`Persisted<T>` state types** — serde-encoded actor state blobs.
//!   Their layout is the ordered field list: names, types, and container
//!   canonicality. Reordering fields, changing a type, or swapping an
//!   ordered container for an unordered one changes the stored bytes.
//! * **Binary on-disk formats** — hand-rolled byte layouts identified by
//!   a magic constant (`TSB1` sealed blocks, `TST1` tail records). Their
//!   layout is declared next to the encoder as an `aodb-schema:
//!   layout(..)` marker line, which this pass fingerprints together
//!   with the magic bytes.
//!
//! Every layout gets a stable FNV-1a fingerprint checked against the
//! committed `schema.lock` ([`crate::schemalock`]). Rule `schema-drift`
//! fires when a layout changes (or appears/disappears) without a
//! lockfile regeneration; rule `schema-unversioned` fires for a binary
//! format whose magic has no version-dispatch path — without one, a
//! future layout bump can only fail as CRC corruption instead of a
//! typed unsupported-version error.
//!
//! Soundness limits (same envelope as the other passes, DESIGN.md §14):
//! no macro expansion and no type resolution, so a `Persisted<T>` whose
//! `T` has no struct/enum definition in the corpus (generic parameters,
//! cross-crate externals) is skipped, and a binary format is only as
//! covered as its layout marker is honest. The marker sits directly
//! above the encoder it describes, which keeps the lie short-lived in
//! review.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::lexer::TokKind;
use crate::lint::{Finding, Rule};
use crate::schemalock::{fnv1a, EntryKind, LockEntry, SchemaLock};
use crate::sendsites::Corpus;

/// One extracted layout with its fingerprint and source location.
#[derive(Clone, Debug)]
pub struct SchemaEntry {
    /// Layout kind.
    pub kind: EntryKind,
    /// Layout name (type name, or the magic string for formats).
    pub name: String,
    /// FNV-1a fingerprint over the description lines.
    pub fingerprint: u64,
    /// Defining file.
    pub file: PathBuf,
    /// 1-based line of the definition.
    pub line: u32,
    /// Human-readable fingerprint input (one line per field / facet).
    pub desc: Vec<String>,
    /// For formats: whether the file has a version-dispatch path.
    pub versioned: bool,
}

/// Collects the last path segment of every `Persisted<T>` type argument
/// in the corpus (both field types and `Persisted::<T>` turbofish).
pub(crate) fn persisted_type_args(corpus: &Corpus) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for file in &corpus.files {
        let toks = &file.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if !toks[i].is_ident("Persisted") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j + 1 < toks.len() && toks[j].is_punct(':') && toks[j + 1].is_punct(':') {
                j += 2;
            }
            if j >= toks.len() || !toks[j].is_punct('<') {
                i += 1;
                continue;
            }
            // Last ident of the first generic argument.
            let mut angle = 0i32;
            let mut found: Option<String> = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                } else if angle == 1 && t.is_punct(',') {
                    break;
                } else if angle == 1 && t.kind == TokKind::Ident {
                    found = Some(t.text.clone());
                }
                j += 1;
            }
            if let Some(name) = found {
                if !out.contains(&name) {
                    out.push(name);
                }
            }
            i = j.max(i + 1);
        }
    }
    out
}

/// The field-layout description of one type definition.
struct TypeDef {
    file: usize,
    line: u32,
    desc: Vec<String>,
}

/// Scans one file for `struct`/`enum` definitions of the given names,
/// appending layout descriptions. Tracks all bracket kinds plus angle
/// depth so commas inside `Vec<(u64, u64)>` don't split fields.
fn collect_type_defs(
    corpus: &Corpus,
    file_idx: usize,
    wanted: &[String],
    out: &mut HashMap<String, Vec<TypeDef>>,
) {
    let toks = &corpus.files[file_idx].toks;
    let mut i = 0usize;
    while i + 1 < toks.len() {
        let is_struct = toks[i].is_ident("struct");
        let is_enum = toks[i].is_ident("enum");
        if (!is_struct && !is_enum) || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        if !wanted.contains(&name) {
            i += 1;
            continue;
        }
        let line = toks[i + 1].line;
        // Skip generics / where clause to the body opener.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(';') {
            i = j;
            continue; // unit struct: no layout to fingerprint
        }
        let tuple = toks[j].is_punct('(');
        let close = if tuple { ')' } else { '}' };
        let open_ch = if tuple { '(' } else { '{' };
        // Split the body into top-level comma-separated segments.
        let mut segments: Vec<Vec<usize>> = vec![Vec::new()];
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut k = j + 1;
        while k < toks.len() {
            let t = &toks[k];
            if depth == 0 && angle == 0 && t.is_punct(close) {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('<') {
                angle += 1;
            } else if depth == 0 && t.is_punct('>') {
                angle -= 1;
            } else if depth == 0 && angle == 0 && t.is_punct(',') {
                segments.push(Vec::new());
                k += 1;
                continue;
            }
            segments.last_mut().expect("nonempty").push(k);
            k += 1;
        }
        let _ = open_ch;
        let mut desc = Vec::new();
        for (n, seg) in segments.iter().enumerate() {
            if let Some(d) = describe_segment(corpus, file_idx, seg, is_enum, tuple, n) {
                desc.push(d);
            }
        }
        out.entry(name).or_default().push(TypeDef {
            file: file_idx,
            line,
            desc,
        });
        i = k + 1;
    }
}

/// Renders one field (or enum-variant) segment as a fingerprint line:
/// `name: type tokens` with an `[unordered]` tag when the type uses a
/// non-canonical container. Attributes and visibility are stripped —
/// they don't change the stored bytes (serde attributes that *do*, like
/// a rename, live in the field name/type the lint can't see; the
/// lockfile catches the common structural drift, not every serde
/// subtlety).
fn describe_segment(
    corpus: &Corpus,
    file_idx: usize,
    seg: &[usize],
    is_enum: bool,
    tuple: bool,
    ordinal: usize,
) -> Option<String> {
    let toks = &corpus.files[file_idx].toks;
    // Strip `#[...]` attributes and visibility qualifiers.
    let mut idxs: Vec<usize> = Vec::new();
    let mut p = 0usize;
    while p < seg.len() {
        let t = &toks[seg[p]];
        if t.is_punct('#') {
            // Skip to the matching `]`.
            let mut depth = 0i32;
            p += 1;
            while p < seg.len() {
                let u = &toks[seg[p]];
                if u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        p += 1;
                        break;
                    }
                }
                p += 1;
            }
            continue;
        }
        if t.is_ident("pub") {
            p += 1;
            if p < seg.len() && toks[seg[p]].is_punct('(') {
                let mut depth = 0i32;
                while p < seg.len() {
                    let u = &toks[seg[p]];
                    if u.is_punct('(') {
                        depth += 1;
                    } else if u.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            p += 1;
                            break;
                        }
                    }
                    p += 1;
                }
            }
            continue;
        }
        idxs.push(seg[p]);
        p += 1;
    }
    if idxs.is_empty() {
        return None;
    }
    let text = |range: &[usize]| {
        range
            .iter()
            .map(|&j| toks[j].text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let unordered = idxs
        .iter()
        .any(|&j| toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet"));
    let tag = if unordered { " [unordered]" } else { "" };
    if is_enum {
        // Whole variant, tokens joined: `Name`, `Name ( u32 )`, ...
        return Some(format!("{}{}", text(&idxs), tag));
    }
    if tuple {
        return Some(format!("{ordinal}: {}{}", text(&idxs), tag));
    }
    // `name : type...`
    let colon = idxs
        .iter()
        .position(|&j| toks[j].is_punct(':'))
        .unwrap_or(idxs.len());
    let name = text(&idxs[..colon]);
    let ty = text(idxs.get(colon + 1..).unwrap_or(&[]));
    Some(format!("{name}: {ty}{tag}"))
}

/// Extracts binary-format entries: every `const *MAGIC* = b"XXXX"` plus
/// its `aodb-schema: layout(XXXX) = ...` marker lines and whether the
/// file dispatches on unsupported versions.
fn collect_format_entries(corpus: &Corpus, out: &mut Vec<SchemaEntry>) {
    for file in &corpus.files {
        let toks = &file.toks;
        let has_dispatch = toks.iter().any(|t| t.is_ident("UnsupportedVersion"));
        // Layout markers from the raw lines (they live in comments).
        let mut layouts: Vec<(String, String)> = Vec::new();
        for raw in &file.lines {
            let Some(at) = raw.find("aodb-schema: layout(") else {
                continue;
            };
            let rest = &raw[at + "aodb-schema: layout(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let name = rest[..close].trim().to_string();
            let Some(eq) = rest[close..].find('=') else {
                continue;
            };
            let spec = rest[close + eq + 1..].trim().to_string();
            layouts.push((name, spec));
        }
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !(toks[i].is_ident("const")
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 1].text.contains("MAGIC"))
            {
                i += 1;
                continue;
            }
            let const_name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // The initializer's byte-string literal, before the
            // statement-ending `;` (the `;` inside `&[u8; 4]` is at
            // bracket depth 1 and doesn't end the const).
            let mut magic: Option<String> = None;
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if depth == 0 && t.is_punct(';') {
                    break;
                }
                if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
                    depth -= 1;
                }
                if t.kind == TokKind::Str {
                    magic = Some(t.text.clone());
                }
                j += 1;
            }
            i = j;
            let Some(magic) = magic else { continue };
            if magic.len() != 4 {
                continue; // the workspace convention: 4-byte magics
            }
            let mut desc = vec![format!("magic: {magic}"), format!("const: {const_name}")];
            for (name, spec) in &layouts {
                if *name == magic {
                    desc.push(format!("layout: {spec}"));
                }
            }
            let fingerprint = fnv1a(desc.join("\n").as_bytes());
            let versioned = has_dispatch && magic.ends_with(|c: char| c.is_ascii_digit());
            out.push(SchemaEntry {
                kind: EntryKind::Format,
                name: magic,
                fingerprint,
                file: file.path.clone(),
                line,
                desc,
                versioned,
            });
        }
    }
}

/// Extracts every layout in the corpus: one entry per `Persisted<T>`
/// state type with a resolvable definition, one per binary-format magic.
/// When two files define distinct layouts under the same type name, the
/// entries are disambiguated as `filestem::Name`.
pub fn extract_entries(corpus: &Corpus) -> Vec<SchemaEntry> {
    // Single-letter names are generic parameters by workspace
    // convention (`Persisted<S>` in the runtime's own definition, doc
    // examples) — a same-named concrete struct elsewhere in the corpus
    // is a coincidence, not a persisted layout.
    let persisted: Vec<String> = persisted_type_args(corpus)
        .into_iter()
        .filter(|n| n.chars().count() > 1)
        .collect();
    let mut defs: HashMap<String, Vec<TypeDef>> = HashMap::new();
    for fi in 0..corpus.files.len() {
        collect_type_defs(corpus, fi, &persisted, &mut defs);
    }
    let mut out = Vec::new();
    let mut names: Vec<&String> = defs.keys().collect();
    names.sort();
    for name in names {
        let typedefs = &defs[name];
        // Identical re-definitions (cfg variants) collapse; genuinely
        // different layouts under one name get file-qualified entries.
        let mut distinct: Vec<&TypeDef> = Vec::new();
        for d in typedefs {
            if !distinct.iter().any(|e| e.desc == d.desc) {
                distinct.push(d);
            }
        }
        for d in &distinct {
            let file = &corpus.files[d.file];
            let entry_name = if distinct.len() > 1 {
                let stem = file
                    .path
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_default();
                format!("{stem}::{name}")
            } else {
                name.clone()
            };
            out.push(SchemaEntry {
                kind: EntryKind::Persisted,
                name: entry_name,
                fingerprint: fnv1a(d.desc.join("\n").as_bytes()),
                file: file.path.clone(),
                line: d.line,
                desc: d.desc.clone(),
                versioned: true, // serde blobs version through the state type
            });
        }
    }
    collect_format_entries(corpus, &mut out);
    out.sort_by(|a, b| (a.kind, &a.name).cmp(&(b.kind, &b.name)));
    out
}

/// Renders the extracted layouts as a fresh [`SchemaLock`].
pub fn compute_lock(corpus: &Corpus) -> SchemaLock {
    SchemaLock {
        entries: extract_entries(corpus)
            .into_iter()
            .map(|e| LockEntry {
                kind: e.kind,
                name: e.name,
                fingerprint: e.fingerprint,
                file: e
                    .file
                    .file_name()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_default(),
                defined_at: 0,
            })
            .collect(),
        path: PathBuf::new(),
    }
}

/// Runs the schemacheck rules over a corpus. With a lock, every layout
/// is diffed against it (`schema-drift` on mismatch, missing entry, or
/// stale entry); without one only `schema-unversioned` runs — the
/// lockfile is the opt-in for drift checking.
pub fn schema_findings(corpus: &Corpus, lock: Option<&SchemaLock>) -> Vec<Finding> {
    let entries = extract_entries(corpus);
    let mut findings = Vec::new();

    for e in &entries {
        let model = corpus
            .files
            .iter()
            .find(|f| f.path == e.file)
            .expect("entry file is in corpus");
        if e.kind == EntryKind::Format
            && !e.versioned
            && !model.allowed(e.line, Rule::SchemaUnversioned)
        {
            findings.push(Finding {
                rule: Rule::SchemaUnversioned,
                file: e.file.clone(),
                line: e.line,
                excerpt: model.excerpt(e.line),
                detail: format!(
                    "binary format `{}` has no version dispatch: the magic must end \
                     in a version digit and the decoder must reject unknown versions \
                     with a typed `UnsupportedVersion` error — otherwise a layout \
                     bump can only surface as CRC corruption",
                    e.name
                ),
                item: Some(e.name.clone()),
                class: None,
            });
        }
        let Some(lock) = lock else { continue };
        match lock.get(e.kind, &e.name) {
            None => {
                if !model.allowed(e.line, Rule::SchemaDrift) {
                    findings.push(Finding {
                        rule: Rule::SchemaDrift,
                        file: e.file.clone(),
                        line: e.line,
                        excerpt: model.excerpt(e.line),
                        detail: format!(
                            "{} layout `{}` has no entry in {} — a new persisted layout \
                             must be acknowledged: regenerate with --write-schema-lock",
                            e.kind.keyword(),
                            e.name,
                            lock.path.display(),
                        ),
                        item: Some(e.name.clone()),
                        class: None,
                    });
                }
            }
            Some(locked) if locked.fingerprint != e.fingerprint => {
                if !model.allowed(e.line, Rule::SchemaDrift) {
                    findings.push(Finding {
                        rule: Rule::SchemaDrift,
                        file: e.file.clone(),
                        line: e.line,
                        excerpt: model.excerpt(e.line),
                        detail: format!(
                            "{} layout `{}` changed without a lockfile update \
                             (code {:016x}, locked {:016x}); current layout:\n    {}\n\
                             review the migration story, then regenerate with \
                             --write-schema-lock",
                            e.kind.keyword(),
                            e.name,
                            e.fingerprint,
                            locked.fingerprint,
                            e.desc.join("\n    "),
                        ),
                        item: Some(e.name.clone()),
                        class: None,
                    });
                }
            }
            Some(_) => {}
        }
    }

    // Stale lock entries: a layout that vanished (renamed, deleted)
    // also needs an acknowledged regeneration.
    if let Some(lock) = lock {
        for locked in &lock.entries {
            if !entries
                .iter()
                .any(|e| e.kind == locked.kind && e.name == locked.name)
            {
                findings.push(Finding {
                    rule: Rule::SchemaDrift,
                    file: lock.path.clone(),
                    line: locked.defined_at,
                    excerpt: format!(
                        "{} {} {:016x}",
                        locked.kind.keyword(),
                        locked.name,
                        locked.fingerprint
                    ),
                    detail: format!(
                        "stale lockfile entry: {} layout `{}` no longer exists in the \
                         corpus — regenerate with --write-schema-lock",
                        locked.kind.keyword(),
                        locked.name,
                    ),
                    item: Some(locked.name.clone()),
                    class: None,
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus(src: &str) -> Corpus {
        Corpus::from_sources(vec![(PathBuf::from("fixture.rs"), src.to_string())])
    }

    const STATE: &str = "struct Gauge { state: Persisted<GaugeState> }\n\
         struct GaugeState {\n\
             pub total: u64,\n\
             #[serde(default)]\n\
             marks: Vec<(u64, u64)>,\n\
             last: Option<DataPoint>,\n\
         }\n";

    #[test]
    fn persisted_struct_layout_is_fingerprinted() {
        let entries = extract_entries(&corpus(STATE));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.kind, EntryKind::Persisted);
        assert_eq!(e.name, "GaugeState");
        assert_eq!(
            e.desc,
            [
                "total: u64",
                "marks: Vec < ( u64 , u64 ) >",
                "last: Option < DataPoint >"
            ]
        );
    }

    #[test]
    fn field_edits_move_the_fingerprint() {
        let base = extract_entries(&corpus(STATE))[0].fingerprint;
        // Type change.
        let retyped = STATE.replace("pub total: u64", "pub total: u32");
        assert_ne!(extract_entries(&corpus(&retyped))[0].fingerprint, base);
        // Field rename.
        let renamed = STATE.replace("last:", "latest:");
        assert_ne!(extract_entries(&corpus(&renamed))[0].fingerprint, base);
        // Field reorder.
        let reordered = "struct Gauge { state: Persisted<GaugeState> }\n\
             struct GaugeState {\n\
                 #[serde(default)]\n\
                 marks: Vec<(u64, u64)>,\n\
                 pub total: u64,\n\
                 last: Option<DataPoint>,\n\
             }\n";
        assert_ne!(extract_entries(&corpus(reordered))[0].fingerprint, base);
        // Attribute/visibility churn does NOT move it.
        let cosmetics = STATE
            .replace("pub total", "pub(crate) total")
            .replace("#[serde(default)]", "#[serde(default)] #[allow(dead_code)]");
        assert_eq!(extract_entries(&corpus(&cosmetics))[0].fingerprint, base);
    }

    #[test]
    fn unordered_containers_are_tagged() {
        let c = corpus(
            "struct A { s: Persisted<AState> }\n\
             struct AState { users: HashMap<String, u64>, names: BTreeMap<String, u64> }\n",
        );
        let e = &extract_entries(&c)[0];
        assert_eq!(
            e.desc,
            [
                "users: HashMap < String , u64 > [unordered]",
                "names: BTreeMap < String , u64 >"
            ]
        );
    }

    #[test]
    fn enum_layouts_fingerprint_variants() {
        let c = corpus(
            "struct A { s: Persisted<Mode> }\n\
             enum Mode { Off, Level(u8), Curve { gain: f64 } }\n",
        );
        let e = &extract_entries(&c)[0];
        assert_eq!(e.desc, ["Off", "Level ( u8 )", "Curve { gain : f64 }"]);
    }

    #[test]
    fn format_magic_and_layout_marker_are_fingerprinted() {
        let src = "// aodb-schema: layout(XYZ1) = magic[4] count:u32 crc32:u32\n\
             pub const XYZ_MAGIC: &[u8; 4] = b\"XYZ1\";\n\
             fn decode(b: &[u8]) -> Result<(), SeriesError> {\n\
                 if b[3] != b'1' { return Err(SeriesError::UnsupportedVersion); }\n\
                 Ok(())\n\
             }\n";
        let entries = extract_entries(&corpus(src));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.kind, EntryKind::Format);
        assert_eq!(e.name, "XYZ1");
        assert!(e.versioned);
        assert!(e.desc.iter().any(|d| d.starts_with("layout: magic[4]")));
        // Editing the layout marker moves the fingerprint.
        let bumped = src.replace("count:u32", "count:u64");
        assert_ne!(
            extract_entries(&corpus(&bumped))[0].fingerprint,
            e.fingerprint
        );
    }

    #[test]
    fn format_without_dispatch_is_unversioned() {
        let src = "pub const RAW_MAGIC: &[u8; 4] = b\"RAW0\";\n";
        let f = schema_findings(&corpus(src), None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SchemaUnversioned);
        assert_eq!(f[0].item.as_deref(), Some("RAW0"));
    }

    #[test]
    fn drift_against_lock_fires_on_mismatch_missing_and_stale() {
        let c = corpus(STATE);
        let fresh = compute_lock(&c);
        // Fresh lock: clean.
        assert!(schema_findings(&c, Some(&fresh)).is_empty());
        // Mutated layout vs the same lock: drift at the definition.
        let mutated = corpus(&STATE.replace("total: u64", "total: u32"));
        let f = schema_findings(&mutated, Some(&fresh));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SchemaDrift);
        assert!(f[0].detail.contains("changed without a lockfile update"));
        // Empty lock: the layout is missing an entry.
        let empty = SchemaLock::default();
        let f = schema_findings(&c, Some(&empty));
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("has no entry"));
        // Lock with an extra entry: stale.
        let mut extra = fresh.clone();
        extra.entries.push(LockEntry {
            kind: EntryKind::Persisted,
            name: "GoneState".into(),
            fingerprint: 1,
            file: String::new(),
            defined_at: 9,
        });
        let f = schema_findings(&c, Some(&extra));
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("stale lockfile entry"));
        assert_eq!(f[0].item.as_deref(), Some("GoneState"));
    }

    #[test]
    fn allow_marker_suppresses_unversioned() {
        let src = "// aodb-lint: allow(schema-unversioned)\n\
             pub const RAW_MAGIC: &[u8; 4] = b\"RAW0\";\n";
        assert!(schema_findings(&corpus(src), None).is_empty());
    }
}
