//! The `schema.lock` file: committed fingerprints of every persisted
//! layout.
//!
//! The schemacheck pass ([`crate::schema`]) derives a stable fingerprint
//! for every `Persisted<T>` state type and every binary on-disk format
//! in the corpus; this module holds the committed side of the contract.
//! A layout change is only legal together with a lockfile regeneration,
//! which makes the diff reviewable: the reviewer sees *which* persisted
//! layout moved and can ask for the migration story.
//!
//! The format is deliberately minimal — one entry per line, sorted, so
//! diffs are one line per changed layout and merge conflicts are honest:
//!
//! ```text
//! # aodb-schemacheck lockfile (one line per persisted layout)
//! format TSB1 8c2a... codec.rs
//! persisted ChannelState 51fe... physical.rs
//! ```
//!
//! Columns: kind (`persisted` | `format`), layout name, 16-hex-digit
//! FNV-1a fingerprint, and the defining file's name (informational —
//! not part of the match key, so moving a type between files does not
//! count as drift). Parsed by hand: no new dependencies, same policy as
//! [`crate::baseline`].

use std::fmt;
use std::path::{Path, PathBuf};

/// What kind of layout an entry fingerprints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntryKind {
    /// A binary on-disk format (magic constant + layout declaration).
    Format,
    /// A `Persisted<T>` state type's field layout.
    Persisted,
}

impl EntryKind {
    /// The keyword used in the lockfile.
    pub fn keyword(self) -> &'static str {
        match self {
            EntryKind::Format => "format",
            EntryKind::Persisted => "persisted",
        }
    }
}

/// One lockfile entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEntry {
    /// Layout kind.
    pub kind: EntryKind,
    /// Layout name (type name or magic string).
    pub name: String,
    /// FNV-1a 64-bit fingerprint of the layout description.
    pub fingerprint: u64,
    /// File name the layout was extracted from (informational).
    pub file: String,
    /// 1-based line in the lockfile (0 for freshly computed entries).
    pub defined_at: u32,
}

/// A parsed (or computed) schema lockfile.
#[derive(Clone, Debug, Default)]
pub struct SchemaLock {
    /// Entries, sorted by (kind, name).
    pub entries: Vec<LockEntry>,
    /// Where the lock was loaded from (for reporting).
    pub path: PathBuf,
}

/// A malformed lockfile.
#[derive(Debug)]
pub struct SchemaLockError {
    /// 1-based line of the offending construct (0 for I/O failures).
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SchemaLockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema.lock line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaLockError {}

impl SchemaLock {
    /// Parses lockfile text. Malformed lines are hard errors: a lock
    /// entry that silently fails to parse would let drift through.
    pub fn parse(text: &str) -> Result<SchemaLock, SchemaLockError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let (kind, name, hash) = match (cols.next(), cols.next(), cols.next()) {
                (Some(k), Some(n), Some(h)) => (k, n, h),
                _ => {
                    return Err(SchemaLockError {
                        line: lineno,
                        message: format!(
                            "expected `<kind> <name> <fingerprint> [file]`, got `{line}`"
                        ),
                    })
                }
            };
            let kind = match kind {
                "format" => EntryKind::Format,
                "persisted" => EntryKind::Persisted,
                other => {
                    return Err(SchemaLockError {
                        line: lineno,
                        message: format!(
                            "unknown layout kind `{other}` (expected `persisted` or `format`)"
                        ),
                    })
                }
            };
            let fingerprint = u64::from_str_radix(hash, 16).map_err(|_| SchemaLockError {
                line: lineno,
                message: format!("fingerprint `{hash}` is not a hex number"),
            })?;
            entries.push(LockEntry {
                kind,
                name: name.to_string(),
                fingerprint,
                file: cols.next().unwrap_or_default().to_string(),
                defined_at: lineno,
            });
        }
        Ok(SchemaLock {
            entries,
            path: PathBuf::new(),
        })
    }

    /// Loads and parses a lockfile from disk.
    pub fn load(path: &Path) -> Result<SchemaLock, SchemaLockError> {
        let text = std::fs::read_to_string(path).map_err(|e| SchemaLockError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let mut lock = SchemaLock::parse(&text)?;
        lock.path = path.to_path_buf();
        Ok(lock)
    }

    /// Renders the lockfile text: header comment, then one sorted line
    /// per entry. `parse(render(..))` round-trips exactly.
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (a.kind, &a.name).cmp(&(b.kind, &b.name)));
        let mut out = String::new();
        out.push_str(
            "# aodb-schemacheck lockfile — one line per persisted layout:\n\
             #   <kind> <name> <fnv1a-64 fingerprint> <defining file>\n\
             # A fingerprint change means the on-disk layout changed; regenerate\n\
             # (and review the migration story) with:\n\
             #   cargo run -p aodb-analysis --bin aodb-lint -- --write-schema-lock schema.lock\n",
        );
        for e in &entries {
            out.push_str(&format!(
                "{} {} {:016x} {}\n",
                e.kind.keyword(),
                e.name,
                e.fingerprint,
                e.file
            ));
        }
        out
    }

    /// Looks up an entry by kind and name.
    pub fn get(&self, kind: EntryKind, name: &str) -> Option<&LockEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.name == name)
    }
}

/// FNV-1a over a byte string — the fingerprint hash. Stable by
/// construction (no randomized state, no dependency on platform word
/// order), which is the whole point of a committed lockfile.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let lock = SchemaLock {
            entries: vec![
                LockEntry {
                    kind: EntryKind::Persisted,
                    name: "ChannelState".into(),
                    fingerprint: 0x51fe_0022_aa01_9c77,
                    file: "physical.rs".into(),
                    defined_at: 0,
                },
                LockEntry {
                    kind: EntryKind::Format,
                    name: "TSB1".into(),
                    fingerprint: 0x8c2a_1111_2222_3333,
                    file: "codec.rs".into(),
                    defined_at: 0,
                },
            ],
            path: PathBuf::new(),
        };
        let text = lock.render();
        let parsed = SchemaLock::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        // Rendering sorts: formats first, then persisted types.
        assert_eq!(parsed.entries[0].name, "TSB1");
        assert_eq!(parsed.entries[0].kind, EntryKind::Format);
        assert_eq!(parsed.entries[0].fingerprint, 0x8c2a_1111_2222_3333);
        assert_eq!(parsed.entries[1].name, "ChannelState");
        assert_eq!(parsed.entries[1].file, "physical.rs");
        // Render of the parse is byte-identical (the golden round-trip).
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(SchemaLock::parse("persisted OnlyTwoCols\n").is_err());
        assert!(SchemaLock::parse("gadget X 0011223344556677\n").is_err());
        assert!(SchemaLock::parse("format TSB1 nothex\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let lock =
            SchemaLock::parse("# header\n\nformat TSB1 00ff00ff00ff00ff codec.rs\n").unwrap();
        assert_eq!(lock.entries.len(), 1);
        assert_eq!(lock.entries[0].defined_at, 3);
        assert!(lock.get(EntryKind::Format, "TSB1").is_some());
        assert!(lock.get(EntryKind::Persisted, "TSB1").is_none());
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        // Pinned value: the committed lockfile depends on this hash
        // never changing.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"field:u32"), fnv1a(b"field:u64"));
    }
}
