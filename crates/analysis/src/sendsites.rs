//! Send-site extraction and declaration-drift detection.
//!
//! The runtime can only check `Actor::declared_calls()` *when a message
//! is actually sent* (debug-build `TurnGuard` panics). This pass reads
//! the declarations and the send sites out of the source and diffs them
//! both ways, so drift fails `aodb-lint` in CI instead of panicking at
//! dispatch time:
//!
//! * **missing** — a handler (or a helper it threads its `ActorContext`
//!   into) sends to an actor type with no covering declaration;
//! * **stale** — a declared edge that no send site exercises anymore.
//!
//! What counts as a send site (matching the workspace idiom):
//!
//! * `ctx.actor_ref::<T>(key).tell/ask/ask_with(..)` — `Send` kind;
//!   `.call(..)`/`.call_timeout(..)` — `Call` kind; `.recipient()` mints
//!   a forwardable handle and counts as `Send`.
//! * `let r = ctx.actor_ref::<T>(key); ... r.tell(..)` — bindings are
//!   tracked function-locally.
//! * `ctx.recipient::<A, M>(key)` — `Send` to `A`.
//! * `x.tell(..)` where `x` is not a tracked binding — a *dynamic* send
//!   (a `Recipient` carried in a message); covered only by `send_any()`.
//!
//! Receivers other than a function's `ActorContext` parameters (client
//! handles, `self.handle`, test `Runtime` refs) are ignored: sends from
//! outside a turn need no declaration. Self-sends are likewise exempt
//! from the missing check (the runtime never guards them) but still
//! count when deciding whether a declared self-edge is stale. Helper
//! attribution follows calls that pass a context parameter along —
//! intra-corpus and name-based, which covers the `geo::update_location_
//! index` pattern without whole-program analysis.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;

use crate::dataflow::FileModel;
use crate::lexer::TokKind;
use crate::lint::{collect_rs_files, Finding, Rule};

/// Consuming methods on an actor ref / recipient, and their call kind.
/// Shared with the replaycheck effect walk, where the same calls are the
/// "send payload" sinks a tainted value must not reach.
pub(crate) const SITE_METHODS: &[(&str, bool)] = &[
    ("tell", false),
    ("ask", false),
    ("ask_with", false),
    ("call", true),
    ("call_timeout", true),
];

/// Wildcard target in declarations (`CallDecl::send_any()`).
const ANY: &str = "*";

/// A set of parsed source files analyzed together (type names resolve
/// across files, so fixtures and the workspace both load as one corpus).
pub struct Corpus {
    /// Parsed files.
    pub files: Vec<FileModel>,
}

/// Where a send site points.
#[derive(Clone, Debug, PartialEq)]
enum Target {
    /// A named Rust type (`IndexShard`).
    Type(String),
    /// `Self`, or the owner's own type — exempt from declaration.
    SelfType,
    /// A receiver we cannot resolve (message-carried `Recipient`).
    Dynamic,
}

/// One extracted send/call site.
#[derive(Clone, Debug)]
struct Site {
    target: Target,
    is_call: bool,
    file: usize,
    line: u32,
    in_fn: String,
}

impl Corpus {
    /// Parses an explicit set of `(path, source)` pairs.
    pub fn from_sources(sources: Vec<(PathBuf, String)>) -> Corpus {
        Corpus {
            files: sources
                .iter()
                .map(|(p, s)| FileModel::parse(p, s))
                .collect(),
        }
    }

    /// Loads every `.rs` file under the given roots (skipping `vendor/`,
    /// `target/`, dot-dirs, and `fixtures/` trees).
    pub fn load(roots: &[PathBuf]) -> io::Result<Corpus> {
        let mut files = Vec::new();
        for root in roots {
            collect_rs_files(root, &mut files)?;
        }
        files.sort();
        files.dedup();
        let mut sources = Vec::new();
        for f in files {
            let text = std::fs::read_to_string(&f)?;
            sources.push((f, text));
        }
        Ok(Corpus::from_sources(sources))
    }

    /// Merged message-struct → `ReplyTo` field names map.
    pub fn reply_structs(&self) -> HashMap<String, Vec<String>> {
        let mut map = HashMap::new();
        for file in &self.files {
            for (name, fields) in &file.reply_structs {
                map.entry(name.clone()).or_insert_with(|| fields.clone());
            }
        }
        map
    }
}

/// Resolves Rust type identifiers to actor type names, preferring
/// same-file definitions (test files reuse idents like `Echo`).
struct ActorNames {
    local: Vec<HashMap<String, String>>,
    global: HashMap<String, Option<String>>,
}

impl ActorNames {
    fn build(corpus: &Corpus) -> ActorNames {
        let mut local = Vec::with_capacity(corpus.files.len());
        let mut global: HashMap<String, Option<String>> = HashMap::new();
        for file in &corpus.files {
            let mut here = HashMap::new();
            for actor in &file.actors {
                let Some(name) = &actor.type_name else {
                    continue;
                };
                here.insert(actor.type_ident.clone(), name.clone());
                global
                    .entry(actor.type_ident.clone())
                    .and_modify(|existing| {
                        if existing.as_deref() != Some(name.as_str()) {
                            *existing = None; // ambiguous across files
                        }
                    })
                    .or_insert_with(|| Some(name.clone()));
            }
            local.push(here);
        }
        ActorNames { local, global }
    }

    fn resolve(&self, file: usize, ident: &str) -> Option<String> {
        if let Some(name) = self.local[file].get(ident) {
            return Some(name.clone());
        }
        self.global.get(ident).cloned().flatten()
    }
}

/// Declaration-drift findings over a whole corpus.
pub fn drift_findings(corpus: &Corpus) -> Vec<Finding> {
    let names = ActorNames::build(corpus);

    // Per-function extraction, plus a name index of context-threading
    // functions for helper attribution.
    let mut extracted: Vec<Vec<(Vec<Site>, Vec<String>)>> = Vec::new();
    let mut ctx_fns: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        let mut per_fn = Vec::new();
        for (gi, f) in file.fns.iter().enumerate() {
            per_fn.push(extract_fn_sites(file, fi, f));
            if !f.ctx_params.is_empty() {
                ctx_fns.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        extracted.push(per_fn);
    }

    let mut findings = Vec::new();
    for (fi, file) in corpus.files.iter().enumerate() {
        for actor in &file.actors {
            let Some(actor_name) = &actor.type_name else {
                continue;
            };
            // Gather this actor's sites: methods of its impls in this
            // file, then helpers reached via context-passing calls.
            let mut sites: Vec<Site> = Vec::new();
            let mut queue: Vec<(usize, usize)> = Vec::new();
            let mut visited: Vec<(usize, usize)> = Vec::new();
            for (gi, f) in file.fns.iter().enumerate() {
                if f.owner
                    .as_ref()
                    .is_some_and(|o| o.type_ident == actor.type_ident)
                {
                    queue.push((fi, gi));
                }
            }
            while let Some((qf, qg)) = queue.pop() {
                if visited.contains(&(qf, qg)) {
                    continue;
                }
                visited.push((qf, qg));
                let (fn_sites, callees) = &extracted[qf][qg];
                sites.extend(fn_sites.iter().cloned());
                for callee in callees {
                    let Some(candidates) = ctx_fns.get(callee) else {
                        continue;
                    };
                    // Same-file candidates win; otherwise the name must
                    // be corpus-unique to attribute.
                    let same_file: Vec<_> = candidates.iter().filter(|(cf, _)| *cf == qf).collect();
                    let chosen = match (same_file.len(), candidates.len()) {
                        (1, _) => Some(*same_file[0]),
                        (0, 1) => Some(candidates[0]),
                        _ => None,
                    };
                    if let Some(c) = chosen {
                        queue.push(c);
                    }
                }
            }

            // Resolve targets against the actor-name maps.
            struct Resolved {
                name: Option<String>, // None = dynamic
                is_self: bool,
                is_call: bool,
                file: usize,
                line: u32,
                in_fn: String,
            }
            let resolved: Vec<Resolved> = sites
                .iter()
                .filter_map(|s| match &s.target {
                    Target::Dynamic => Some(Resolved {
                        name: None,
                        is_self: false,
                        is_call: s.is_call,
                        file: s.file,
                        line: s.line,
                        in_fn: s.in_fn.clone(),
                    }),
                    Target::SelfType => Some(Resolved {
                        name: Some(actor_name.clone()),
                        is_self: true,
                        is_call: s.is_call,
                        file: s.file,
                        line: s.line,
                        in_fn: s.in_fn.clone(),
                    }),
                    Target::Type(ident) => {
                        let name = names.resolve(s.file, ident)?;
                        let is_self = name == *actor_name;
                        Some(Resolved {
                            name: Some(name),
                            is_self,
                            is_call: s.is_call,
                            file: s.file,
                            line: s.line,
                            in_fn: s.in_fn.clone(),
                        })
                    }
                })
                .collect();

            // Missing declarations: every non-self site needs cover.
            for site in &resolved {
                if site.is_self {
                    continue;
                }
                let covered = match &site.name {
                    Some(n) => actor
                        .decls
                        .iter()
                        .any(|d| (d.to == *n || d.to == ANY) && (!site.is_call || d.is_call)),
                    None => actor
                        .decls
                        .iter()
                        .any(|d| d.to == ANY && (!site.is_call || d.is_call)),
                };
                if covered {
                    continue;
                }
                let site_model = &corpus.files[site.file];
                if site_model.allowed(site.line, Rule::DeclarationDriftMissing) {
                    continue;
                }
                let kind = if site.is_call { "call" } else { "send" };
                let shown = site.name.as_deref().unwrap_or("(dynamic recipient)");
                findings.push(Finding {
                    rule: Rule::DeclarationDriftMissing,
                    file: site_model.path.clone(),
                    line: site.line,
                    excerpt: site_model.excerpt(site.line),
                    detail: format!(
                        "`{actor_name}` {kind}s `{shown}` (in fn `{}`) but declared_calls() \
                         has no covering entry — debug builds will panic at dispatch",
                        site.in_fn
                    ),
                    item: Some(site.in_fn.clone()),
                    class: None,
                });
            }

            // Stale declarations: every declared edge needs a site.
            for decl in &actor.decls {
                let matched = if decl.to == ANY {
                    resolved.iter().any(|s| s.name.is_none())
                } else {
                    resolved
                        .iter()
                        .any(|s| s.name.as_deref() == Some(decl.to.as_str()))
                };
                if matched {
                    continue;
                }
                if file.allowed(decl.line, Rule::DeclarationDriftStale) {
                    continue;
                }
                let shown = if decl.to == ANY {
                    "send_any() (no dynamic send site remains)".to_string()
                } else {
                    format!("`{}`", decl.to)
                };
                findings.push(Finding {
                    rule: Rule::DeclarationDriftStale,
                    file: file.path.clone(),
                    line: decl.line,
                    excerpt: file.excerpt(decl.line),
                    detail: format!(
                        "`{actor_name}` declares {shown} but no send site in its methods or \
                         context-threaded helpers reaches it — remove the stale entry",
                    ),
                    item: Some("declared_calls".to_string()),
                    class: None,
                });
            }
        }
    }
    findings
}

/// Extracts the send sites and context-passing callees of one function.
fn extract_fn_sites(
    model: &FileModel,
    file_idx: usize,
    f: &crate::dataflow::FnItem,
) -> (Vec<Site>, Vec<String>) {
    let toks = &model.toks;
    let (start, end) = f.body_range;
    let mut sites = Vec::new();
    let mut callees = Vec::new();
    let mut bindings: HashMap<String, Target> = HashMap::new();
    let mut pending_let: Option<String> = None;

    let ident_at = |i: usize| -> Option<&str> {
        (i < end && toks[i].kind == TokKind::Ident).then(|| toks[i].text.as_str())
    };
    let punct_at = |i: usize, c: char| -> bool { i < end && toks[i].is_punct(c) };

    let mut i = start;
    while i < end {
        let t = &toks[i];
        // Statement bookkeeping for `let name = ...` bindings.
        if t.is_punct(';') {
            pending_let = None;
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if ident_at(j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_at(j) {
                if punct_at(j + 1, '=') {
                    pending_let = Some(name.to_string());
                }
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }

        // `recv.actor_ref::<T>(key)` / `recv.try_actor_ref::<T>(key)`.
        if (t.text == "actor_ref" || t.text == "try_actor_ref")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
        {
            let recv = toks[i - 2].text.as_str();
            let line = t.line;
            if let Some((type_ident, after)) = parse_turbofish_call(toks, i + 1, end) {
                if f.ctx_params.iter().any(|p| p == recv) {
                    let target = if type_ident == "Self" {
                        Target::SelfType
                    } else {
                        Target::Type(type_ident)
                    };
                    // Optional `?` between the ref and its use.
                    let mut j = after;
                    if punct_at(j, '?') {
                        j += 1;
                    }
                    if punct_at(j, '.') {
                        let m = ident_at(j + 1).unwrap_or("");
                        if let Some((_, is_call)) = SITE_METHODS.iter().find(|(n, _)| *n == m) {
                            sites.push(Site {
                                target,
                                is_call: *is_call,
                                file: file_idx,
                                line: toks[j + 1].line,
                                in_fn: f.name.clone(),
                            });
                            i = j + 2;
                            continue;
                        }
                        if m == "recipient" {
                            sites.push(Site {
                                target,
                                is_call: false,
                                file: file_idx,
                                line,
                                in_fn: f.name.clone(),
                            });
                            i = j + 2;
                            continue;
                        }
                    }
                    if let Some(name) = pending_let.take() {
                        bindings.insert(name, target);
                    }
                    i = after;
                    continue;
                }
                // Non-context receiver (client handle): skip the whole
                // expression so its method is not misread as dynamic.
                let mut j = after;
                if punct_at(j, '?') {
                    j += 1;
                }
                if punct_at(j, '.') && ident_at(j + 1).is_some() {
                    j += 2;
                }
                i = j;
                continue;
            }
        }

        // `ctx.recipient::<A, M>(key)`.
        if t.text == "recipient"
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && f.ctx_params.iter().any(|p| p == toks[i - 2].text.as_str())
        {
            if let Some((type_ident, after)) = parse_turbofish_call(toks, i + 1, end) {
                sites.push(Site {
                    target: if type_ident == "Self" {
                        Target::SelfType
                    } else {
                        Target::Type(type_ident)
                    },
                    is_call: false,
                    file: file_idx,
                    line: t.line,
                    in_fn: f.name.clone(),
                });
                i = after;
                continue;
            }
        }

        // `binding.tell(..)` / unknown-receiver (dynamic) sends.
        if let Some((_, is_call)) = SITE_METHODS.iter().find(|(n, _)| *n == t.text) {
            if i >= 2
                && toks[i - 1].is_punct('.')
                && toks[i - 2].kind == TokKind::Ident
                && punct_at(i + 1, '(')
            {
                let recv = toks[i - 2].text.as_str();
                let target = match bindings.get(recv) {
                    Some(t) => Some(t.clone()),
                    None if recv == "self" || f.ctx_params.iter().any(|p| p == recv) => None,
                    None => Some(Target::Dynamic),
                };
                if let Some(target) = target {
                    sites.push(Site {
                        target,
                        is_call: *is_call,
                        file: file_idx,
                        line: t.line,
                        in_fn: f.name.clone(),
                    });
                }
                i += 1;
                continue;
            }
        }

        // Context-threading callee: `helper(.., ctx, ..)` — bare, via
        // `self.helper(..)`, or `path::helper(..)`. Only a call whose
        // arguments mention a context parameter can reach send sites,
        // which is what keeps ordinary method calls out of the index.
        if punct_at(i + 1, '(') && t.text != f.name {
            let close = skip_parens(toks, i + 1, end);
            let passes_ctx =
                (i + 2..close).any(|j| f.ctx_params.iter().any(|p| toks[j].is_ident(p)));
            if passes_ctx && !callees.contains(&t.text) {
                callees.push(t.text.clone());
            }
        }
        i += 1;
    }
    (sites, callees)
}

/// Parses `::<Type...>(args)` starting at the token after the method
/// ident; returns (last type ident, index after the closing paren).
fn parse_turbofish_call(
    toks: &[crate::lexer::Tok],
    i: usize,
    end: usize,
) -> Option<(String, usize)> {
    let mut j = i;
    if !(j + 1 < end && toks[j].is_punct(':') && toks[j + 1].is_punct(':')) {
        return None;
    }
    j += 2;
    if !(j < end && toks[j].is_punct('<')) {
        return None;
    }
    let mut angle = 0i32;
    let mut type_ident = None;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
            if angle == 0 {
                j += 1;
                break;
            }
        } else if angle == 1 && t.is_punct(',') {
            // `recipient::<A, M>` — only the first argument is the
            // actor type; skip to the closing `>`.
            while j < end {
                if toks[j].is_punct('<') {
                    angle += 1;
                } else if toks[j].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            break;
        } else if t.kind == TokKind::Ident {
            type_ident = Some(t.text.clone());
        }
        j += 1;
    }
    let type_ident = type_ident?;
    if !(j < end && toks[j].is_punct('(')) {
        return None;
    }
    Some((type_ident, skip_parens(toks, j, end)))
}

/// Index just past the `)` matching the `(` at `open`.
fn skip_parens(toks: &[crate::lexer::Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(src: &str) -> Corpus {
        Corpus::from_sources(vec![(PathBuf::from("fixture.rs"), src.to_string())])
    }

    const ACTOR_PAIR_PRELUDE: &str = "\
        impl Actor for Target {\n\
        const TYPE_NAME: &'static str = \"t.target\";\n\
        }\n";

    #[test]
    fn chained_send_with_declaration_is_clean() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {{\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"t.target\")];\n\
             CALLS\n\
             }}\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             let _ = ctx.actor_ref::<Target>(\"k\").tell(Ping);\n\
             }}\n\
             }}\n"
        ));
        assert!(drift_findings(&c).is_empty());
    }

    #[test]
    fn undeclared_send_is_missing() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             let _ = ctx.actor_ref::<Target>(\"k\").tell(Ping);\n\
             }}\n\
             }}\n"
        ));
        let f = drift_findings(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::DeclarationDriftMissing);
        assert!(f[0].detail.contains("t.target"));
    }

    #[test]
    fn stale_declaration_is_flagged() {
        let c = corpus(
            "impl Actor for Source {\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"t.gone\")];\n\
             CALLS\n\
             }\n\
             }\n",
        );
        let f = drift_findings(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::DeclarationDriftStale);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn call_site_needs_call_kind_declaration() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {{\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"t.target\")];\n\
             CALLS\n\
             }}\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             let _ = ctx.actor_ref::<Target>(\"k\").call(Ping);\n\
             }}\n\
             }}\n"
        ));
        let f = drift_findings(&c);
        // The blocking call is not covered by the send declaration, and
        // the send declaration is still matched (site targets t.target).
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::DeclarationDriftMissing);
        assert!(f[0].detail.contains("call"));
    }

    #[test]
    fn let_bound_ref_and_self_send() {
        let c = corpus(
            "impl Actor for Source {\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             }\n\
             impl Handler<Ping> for Source {\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {\n\
             let me = ctx.actor_ref::<Source>(ctx.key().clone());\n\
             let _ = me.tell(Ping);\n\
             }\n\
             }\n",
        );
        // Self-send: no declaration required.
        assert!(drift_findings(&c).is_empty());
    }

    #[test]
    fn declared_self_edge_matched_by_self_send() {
        let c = corpus(
            "impl Actor for Source {\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"t.source\")];\n\
             CALLS\n\
             }\n\
             }\n\
             impl Handler<Ping> for Source {\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {\n\
             let _ = ctx.actor_ref::<Source>(\"other\").tell(Ping);\n\
             }\n\
             }\n",
        );
        assert!(drift_findings(&c).is_empty());
    }

    #[test]
    fn dynamic_send_needs_send_any() {
        let dirty = corpus(
            "impl Actor for Source {\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             }\n\
             impl Handler<Go> for Source {\n\
             fn handle(&mut self, msg: Go, ctx: &mut ActorContext<'_>) {\n\
             let _ = msg.target.tell(Ping);\n\
             }\n\
             }\n",
        );
        let f = drift_findings(&dirty);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].detail.contains("dynamic"));

        let clean = corpus(
            "impl Actor for Source {\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {\n\
             const CALLS: &[CallDecl] = &[CallDecl::send_any()];\n\
             CALLS\n\
             }\n\
             }\n\
             impl Handler<Go> for Source {\n\
             fn handle(&mut self, msg: Go, ctx: &mut ActorContext<'_>) {\n\
             let _ = msg.target.tell(Ping);\n\
             }\n\
             }\n",
        );
        assert!(drift_findings(&clean).is_empty());
    }

    #[test]
    fn helper_threading_ctx_is_attributed() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             crate::helpers::forward_it(ctx, 1);\n\
             }}\n\
             }}\n\
             pub(crate) fn forward_it(ctx: &mut ActorContext<'_>, n: u32) {{\n\
             let _ = ctx.actor_ref::<Target>(\"k\").tell(Ping);\n\
             }}\n"
        ));
        let f = drift_findings(&c);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::DeclarationDriftMissing);
        assert!(f[0].detail.contains("forward_it"));
    }

    #[test]
    fn client_side_handle_sends_are_exempt() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             struct Client {{ handle: RuntimeHandle }}\n\
             impl Client {{\n\
             fn kick(&self) {{\n\
             let _ = self.handle.actor_ref::<Target>(\"k\").tell(Ping);\n\
             let r = rt.actor_ref::<Target>(\"k\");\n\
             r.tell(Ping);\n\
             }}\n\
             }}\n"
        ));
        assert!(drift_findings(&c).is_empty());
    }

    #[test]
    fn recipient_minting_counts_as_send() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             fn declared_calls() -> &'static [CallDecl] {{\n\
             const CALLS: &[CallDecl] = &[CallDecl::send(\"t.target\")];\n\
             CALLS\n\
             }}\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             let r = ctx.recipient::<Target, Ping>(\"k\");\n\
             self.out.push(r);\n\
             }}\n\
             }}\n"
        ));
        assert!(drift_findings(&c).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_missing() {
        let c = corpus(&format!(
            "{ACTOR_PAIR_PRELUDE}\
             impl Actor for Source {{\n\
             const TYPE_NAME: &'static str = \"t.source\";\n\
             }}\n\
             impl Handler<Ping> for Source {{\n\
             fn handle(&mut self, msg: Ping, ctx: &mut ActorContext<'_>) {{\n\
             // deliberate: aodb-lint: allow(declaration-drift-missing)\n\
             let _ = ctx.actor_ref::<Target>(\"k\").tell(Ping);\n\
             }}\n\
             }}\n"
        ));
        assert!(drift_findings(&c).is_empty());
    }
}
