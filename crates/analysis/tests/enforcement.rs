//! Debug-build enforcement of declared call edges: a turn that dispatches
//! to an actor type missing from the sender's `declared_calls()` panics,
//! which the runtime contains as a handler panic (metrics increment, the
//! caller's promise resolves as Lost).

#![cfg(debug_assertions)]

use std::time::Duration;

use aodb_runtime::{Actor, ActorContext, CallDecl, Handler, Message, PromiseError, Runtime};

struct Relay;
struct Declared;
struct Undeclared;

impl Actor for Relay {
    const TYPE_NAME: &'static str = "lint-test.relay";

    fn declared_calls() -> &'static [CallDecl] {
        // `lint-test.undeclared` is deliberately missing.
        const CALLS: &[CallDecl] = &[CallDecl::send("lint-test.declared")];
        CALLS
    }
}
impl Actor for Declared {
    const TYPE_NAME: &'static str = "lint-test.declared";
}
impl Actor for Undeclared {
    const TYPE_NAME: &'static str = "lint-test.undeclared";
}

struct Ping;
impl Message for Ping {
    type Reply = ();
}

/// Relay forwards to the declared or the undeclared target.
struct Forward {
    to_declared: bool,
}
impl Message for Forward {
    type Reply = bool;
}

impl Handler<Ping> for Declared {
    fn handle(&mut self, _msg: Ping, _ctx: &mut ActorContext<'_>) {}
}
impl Handler<Ping> for Undeclared {
    fn handle(&mut self, _msg: Ping, _ctx: &mut ActorContext<'_>) {}
}

impl Handler<Forward> for Relay {
    fn handle(&mut self, msg: Forward, ctx: &mut ActorContext<'_>) -> bool {
        if msg.to_declared {
            ctx.actor_ref::<Declared>("d").tell(Ping).is_ok()
        } else {
            // Undeclared edge: this dispatch panics in debug builds.
            ctx.actor_ref::<Undeclared>("u").tell(Ping).is_ok()
        }
    }
}

fn runtime() -> Runtime {
    let rt = Runtime::single(2);
    rt.register(|_| Relay);
    rt.register(|_| Declared);
    rt.register(|_| Undeclared);
    rt
}

#[test]
fn declared_edge_is_allowed() {
    let rt = runtime();
    let ok = rt
        .actor_ref::<Relay>("r")
        .ask(Forward { to_declared: true })
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .expect("declared edge must not panic");
    assert!(ok);
    rt.shutdown();
}

#[test]
fn undeclared_edge_panics_the_turn() {
    let rt = runtime();
    let before = rt.metrics().handler_panics;
    let result = rt
        .actor_ref::<Relay>("r")
        .ask(Forward { to_declared: false })
        .unwrap()
        .wait_for(Duration::from_secs(5));
    // The turn panicked mid-handler, so the reply sink was dropped.
    assert_eq!(result, Err(PromiseError::Lost));
    assert_eq!(rt.metrics().handler_panics, before + 1);
    rt.shutdown();
}

#[test]
fn client_side_sends_are_exempt() {
    // No turn is running on the client thread, so undeclared targets are
    // reachable from outside the actor system.
    let rt = runtime();
    rt.actor_ref::<Undeclared>("u").tell(Ping).unwrap();
    assert_eq!(rt.metrics().handler_panics, 0);
    rt.shutdown();
}
