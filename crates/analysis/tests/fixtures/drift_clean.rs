//! Clean counterpart: every send site is declared, every declaration has
//! a site (including a let-bound ref, a self-send, and a dynamic send
//! covered by `send_any()`).

impl Actor for Sink {
    const TYPE_NAME: &'static str = "fix.sink";
}

impl Actor for Producer {
    const TYPE_NAME: &'static str = "fix.producer";
    fn declared_calls() -> &'static [CallDecl] {
        const CALLS: &[CallDecl] = &[
            CallDecl::send("fix.sink"),
            CallDecl::call("fix.sink"),
            CallDecl::send_any(),
        ];
        CALLS
    }
}

impl Handler<Emit> for Producer {
    fn handle(&mut self, msg: Emit, ctx: &mut ActorContext<'_>) {
        let sink = ctx.actor_ref::<Sink>("s");
        let _ = sink.tell(Emit { n: msg.n });
        let _ = ctx.actor_ref::<Sink>("s").call(Emit { n: msg.n });
        // Self-send: exempt from declaration.
        let _ = ctx.actor_ref::<Producer>("peer").tell(Emit { n: msg.n });
        // Dynamic recipient carried in the message: covered by send_any.
        let _ = msg.listener.tell(Emit { n: msg.n });
    }
}
