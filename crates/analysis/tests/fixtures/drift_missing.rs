//! Seeded drift bug: `Producer` sends to `Sink` but the edge was
//! "removed" from `declared_calls()` — aodb-lint must flag the site.

impl Actor for Sink {
    const TYPE_NAME: &'static str = "fix.sink";
}

impl Actor for Producer {
    const TYPE_NAME: &'static str = "fix.producer";
    fn declared_calls() -> &'static [CallDecl] {
        // The send("fix.sink") entry was dropped here.
        const CALLS: &[CallDecl] = &[];
        CALLS
    }
}

impl Handler<Emit> for Producer {
    fn handle(&mut self, msg: Emit, ctx: &mut ActorContext<'_>) {
        let _ = ctx.actor_ref::<Sink>("s").tell(Emit { n: msg.n });
    }
}
