//! Seeded stale declaration: `Producer` declares a call edge to an
//! actor it no longer contacts — aodb-lint must flag the declaration.

impl Actor for Sink {
    const TYPE_NAME: &'static str = "fix.sink";
}

impl Actor for Producer {
    const TYPE_NAME: &'static str = "fix.producer";
    fn declared_calls() -> &'static [CallDecl] {
        const CALLS: &[CallDecl] = &[
            CallDecl::send("fix.sink"),
            CallDecl::call("fix.retired"), // the handler using this is gone
        ];
        CALLS
    }
}

impl Handler<Emit> for Producer {
    fn handle(&mut self, msg: Emit, ctx: &mut ActorContext<'_>) {
        let _ = ctx.actor_ref::<Sink>("s").tell(Emit { n: msg.n });
    }
}
