//! Clean ack-durability fixture: the commit-point write happens before
//! the reply resolves on every path — including the columnar seam,
//! where `append_batch` (points + sidecar in one atomic tail record) is
//! the commit point rather than a KV `mutate`.

impl Actor for Gauge {
    const TYPE_NAME: &'static str = "fix.gauge";
}

impl Handler<Record> for Gauge {
    fn handle(&mut self, msg: Record, _ctx: &mut ActorContext<'_>) {
        let s = self.state.get_mut_untracked();
        s.total += msg.points.len() as u64;
        let meta = encode_state(&GaugeSideCar::capture(s)).unwrap_or_default();
        let _ = self.series.append_batch(&self.key, &msg.points, &meta);
        msg.reply.deliver(s.total);
    }
}

impl Handler<Reset> for Gauge {
    fn handle(&mut self, msg: Reset, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.total = 0);
        msg.reply.deliver(true);
    }
}
