//! Seeded ack-durability bug: the handler resolves its reply *before*
//! the commit-point write. A crash between the two leaves the caller
//! holding an ack for state the store never saw — `ack-before-commit`
//! must fire at the mutate.

impl Actor for Tally {
    const TYPE_NAME: &'static str = "fix.tally";
}

impl Handler<Vote> for Tally {
    fn handle(&mut self, msg: Vote, _ctx: &mut ActorContext<'_>) {
        msg.reply.deliver(self.state.get().count + 1);
        self.state.mutate(|s| s.count += 1);
    }
}
