//! Known-dirty lockcheck fixture: a guard held across a thread sleep —
//! every other thread touching the class stalls for the full latency.
//! Must produce exactly one `lock-across-blocking` finding.

use std::time::Duration;

use parking_lot::Mutex;

pub struct Cache {
    slots: Mutex<Vec<u64>>,
}

impl Cache {
    /// The guard bound on the first line is still live at the sleep.
    pub fn refresh(&self) -> usize {
        let slots = self.slots.lock();
        std::thread::sleep(Duration::from_millis(5));
        slots.len()
    }
}
