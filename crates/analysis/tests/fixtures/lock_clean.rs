//! Known-clean lockcheck fixture: locks used with correct discipline —
//! guards scoped tight, dropped before blocking work, nested
//! acquisitions always in one order. Must produce zero lockcheck
//! findings.

use std::time::Duration;

use parking_lot::{Mutex, RwLock};

pub struct Ledger {
    entries: Mutex<Vec<u64>>,
    totals: RwLock<u64>,
}

impl Ledger {
    /// Temporary guard: dies at the end of the statement, well before
    /// the sleep.
    pub fn record_then_settle(&self, v: u64) {
        self.entries.lock().push(v);
        std::thread::sleep(Duration::from_millis(1));
    }

    /// Let-bound guard released by scope exit before the blocking work.
    pub fn drain_then_settle(&self) -> usize {
        let n = {
            let entries = self.entries.lock();
            entries.len()
        };
        std::thread::sleep(Duration::from_millis(1));
        n
    }

    /// Explicit `drop` ends liveness before the sleep.
    pub fn total_then_settle(&self) -> u64 {
        let totals = self.totals.read();
        let t = *totals;
        drop(totals);
        std::thread::sleep(Duration::from_millis(1));
        t
    }

    /// Nested acquisition, but always entries-then-totals: a consistent
    /// order contributes an edge without forming a cycle.
    pub fn settle(&self) {
        let entries = self.entries.lock();
        let mut totals = self.totals.write();
        *totals += entries.iter().sum::<u64>();
    }
}
