//! Known-dirty lockcheck fixture: two lock classes acquired in opposite
//! orders by two functions — the classic ABBA deadlock. Must produce
//! exactly one `lock-order-cycle` finding.

use parking_lot::Mutex;

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    /// Acquires left, then right.
    pub fn left_first(&self) -> u64 {
        let l = self.left.lock();
        let r = self.right.lock();
        *l + *r
    }

    /// Acquires right, then left — opposite order, closing the cycle.
    pub fn right_first(&self) -> u64 {
        let r = self.right.lock();
        let l = self.left.lock();
        *r - *l
    }
}
