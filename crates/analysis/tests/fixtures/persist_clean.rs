//! Clean counterpart: every exit that follows the untracked mutation
//! persists first (one path via `save()`, the other via `mutate()`).

impl Actor for Counter {
    const TYPE_NAME: &'static str = "fix.counter";
}

impl Handler<Bump> for Counter {
    fn handle(&mut self, msg: Bump, _ctx: &mut ActorContext<'_>) -> u64 {
        self.state.get_mut_untracked().total += msg.by;
        if msg.dry_run {
            self.state.save();
            return self.state.get().total;
        }
        self.state.mutate(|s| s.high_water = s.high_water.max(s.total));
        self.state.get().total
    }
}
