//! Seeded persistence hazard: an untracked state mutation escapes the
//! turn on the early-return path without ever being persisted.

impl Actor for Counter {
    const TYPE_NAME: &'static str = "fix.counter";
}

impl Handler<Bump> for Counter {
    fn handle(&mut self, msg: Bump, _ctx: &mut ActorContext<'_>) -> u64 {
        self.state.get_mut_untracked().total += msg.by;
        if msg.dry_run {
            // Early exit: the bump above is never marked dirty.
            return self.state.get().total;
        }
        self.state.save();
        self.state.get().total
    }
}
