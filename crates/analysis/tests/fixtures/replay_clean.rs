//! Clean counterpart for the replaycheck pass: ordered iteration feeds
//! sends, unordered maps are only ever accessed by key, persisted state
//! uses ordered collections, and time comes from the context clock.

impl Actor for RSink {
    const TYPE_NAME: &'static str = "fix.rsink";
}

pub struct ROrdered {
    buffers: BTreeMap<String, Vec<u32>>,
    hot: HashMap<String, u32>,
    state: Persisted<ROrderedState>,
}

pub struct ROrderedState {
    completed: BTreeMap<String, u32>,
    last_seen_ms: u64,
}

impl Actor for ROrdered {
    const TYPE_NAME: &'static str = "fix.rordered";
    fn declared_calls() -> &'static [CallDecl] {
        const CALLS: &[CallDecl] = &[CallDecl::send("fix.rsink")];
        CALLS
    }
}

impl Handler<RFlush> for ROrdered {
    fn handle(&mut self, msg: RFlush, ctx: &mut ActorContext<'_>) {
        // BTreeMap iteration order is canonical: sends happen in key
        // order on every replay.
        let channels: Vec<String> = self.buffers.keys().cloned().collect();
        for channel in channels {
            let _ = ctx.actor_ref::<RSink>(channel).tell(RFlush { n: msg.n });
        }
    }
}

impl Handler<RTouch> for ROrdered {
    fn handle(&mut self, msg: RTouch, ctx: &mut ActorContext<'_>) -> u32 {
        // Keyed access into an unordered map never exposes its order.
        let hits = self.hot.get(&msg.key).copied().unwrap_or(0);
        // The context clock is the sanctioned, replay-stable time source.
        let now = ctx.now();
        self.state.mutate(|s| {
            s.completed.insert(msg.key.clone(), hits + 1);
            s.last_seen_ms = now;
        });
        hits
    }
}
