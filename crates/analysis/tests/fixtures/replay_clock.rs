//! Seeded ambient-clock bugs: wall-clock reads inside a turn, both
//! directly in a handler and in a helper one call away.

impl Actor for RTimer {
    const TYPE_NAME: &'static str = "fix.rtimer";
}

impl Handler<RTick> for RTimer {
    fn handle(&mut self, msg: RTick, ctx: &mut ActorContext<'_>) {
        // BUG: ambient wall clock inside a turn; replay sees a different
        // time. Use ctx.now() instead.
        let started = Instant::now();
        self.last = started;
        self.stamp(msg.n);
    }
}

impl RTimer {
    fn stamp(&mut self, n: u64) {
        // BUG: one call away from the handler, same problem.
        let wall = SystemTime::now();
        self.log.push((n, wall));
    }
}
