//! Seeded nondet-in-turn bugs: HashMap iteration order flowing into
//! send payloads, and RNG flowing into a persisted write.

impl Actor for RChan {
    const TYPE_NAME: &'static str = "fix.rchan";
}

pub struct RFlusher {
    buffers: HashMap<String, Vec<u32>>,
    state: Persisted<RFlusherState>,
}

impl Actor for RFlusher {
    const TYPE_NAME: &'static str = "fix.rflusher";
    fn declared_calls() -> &'static [CallDecl] {
        const CALLS: &[CallDecl] = &[CallDecl::send("fix.rchan")];
        CALLS
    }
}

impl Handler<RFlushAll> for RFlusher {
    fn handle(&mut self, msg: RFlushAll, ctx: &mut ActorContext<'_>) {
        // BUG: HashMap::keys() order is arbitrary, so the flush sends
        // happen in a different order on every replay.
        let channels: Vec<String> = self.buffers.keys().cloned().collect();
        for channel in channels {
            let _ = ctx.actor_ref::<RChan>(channel).tell(RFlushAll { n: msg.n });
        }
    }
}

impl Handler<RReseed> for RFlusher {
    fn handle(&mut self, msg: RReseed, _ctx: &mut ActorContext<'_>) {
        // BUG: a random value written into persisted state diverges
        // between a run and its replay.
        let seed = thread_rng().gen::<u64>();
        self.state.mutate(|s| s.seed = seed);
    }
}
