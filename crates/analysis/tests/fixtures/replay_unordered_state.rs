//! Seeded unordered-persisted-state bug: a `Persisted<T>` state type
//! carrying a HashMap field, so serde serializes identical logical
//! state to different blobs.

pub struct RCacheState {
    seen: HashMap<String, u64>,
    total: u64,
}

pub struct RCacheHolder {
    state: Persisted<RCacheState>,
}
