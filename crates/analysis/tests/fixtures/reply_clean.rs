//! Clean counterpart: every path either delivers the sink, stashes it
//! for a deferred reply, or propagates an error with `?`.

pub struct Fetch {
    pub key: String,
    pub reply: ReplyTo<Option<String>>,
}

impl Actor for Store {
    const TYPE_NAME: &'static str = "fix.store";
}

impl Handler<Fetch> for Store {
    fn handle(&mut self, msg: Fetch, _ctx: &mut ActorContext<'_>) -> Result<(), StoreError> {
        self.authorize(&msg.key)?;
        match self.table.get(&msg.key) {
            Some(value) => {
                msg.reply.deliver(Some(value.clone()));
            }
            None => {
                // Deferred reply: resolved when the backfill completes.
                self.pending.push(msg.reply);
            }
        }
        Ok(())
    }
}
