//! Seeded reply leak: one match arm drops the message (and its `ReplyTo`
//! sink) on the floor — the caller's promise never resolves.

pub struct Fetch {
    pub key: String,
    pub reply: ReplyTo<Option<String>>,
}

impl Actor for Store {
    const TYPE_NAME: &'static str = "fix.store";
}

impl Handler<Fetch> for Store {
    fn handle(&mut self, msg: Fetch, _ctx: &mut ActorContext<'_>) {
        match self.table.get(&msg.key) {
            Some(value) => {
                msg.reply.deliver(Some(value.clone()));
            }
            None => {
                // Forgot to deliver: the sink is dropped unresolved.
                self.misses += 1;
            }
        }
    }
}
