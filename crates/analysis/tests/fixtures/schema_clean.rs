//! Known-clean schemacheck fixture: a persisted state type whose layout
//! matches the committed golden lockfile
//! (`tests/golden/schema.lock.golden`), fingerprint and all.

pub struct Meter {
    state: Persisted<MeterState>,
}

pub struct MeterState {
    pub total: u64,
    pub high_water: u64,
    marks: Vec<(u64, u64)>,
}
