//! Known-dirty schemacheck fixture: the golden lockfile pins DriftState
//! at its *previous* layout (`count: u32`), so this definition is a
//! layout change without a lockfile regeneration — `schema-drift` must
//! fire when the golden lock is supplied.

pub struct Drifter {
    state: Persisted<DriftState>,
}

pub struct DriftState {
    pub count: u64,
    pub label: String,
}
