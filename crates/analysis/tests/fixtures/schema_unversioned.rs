//! Known-dirty schemacheck fixture: a binary on-disk format whose magic
//! carries no version digit dispatch — the file never mentions an
//! `UnsupportedVersion` path, so a future layout bump could only ever
//! surface as CRC corruption. `schema-unversioned` must fire.

// aodb-schema: layout(RAW0) = magic[4] len:u32 payload crc32:u32
pub const RAW_MAGIC: &[u8; 4] = b"RAW0";

pub fn decode(buf: &[u8]) -> Result<Vec<u8>, String> {
    if &buf[0..4] != RAW_MAGIC {
        return Err("bad magic".to_string());
    }
    Ok(buf[4..].to_vec())
}
