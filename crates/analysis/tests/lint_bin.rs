//! End-to-end tests of the `aodb-lint` binary: the real workspace must be
//! clean, and a fixture with a deliberate synchronous-call cycle must be
//! rejected with the cycle path named.

use std::path::Path;
use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aodb-lint"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn workspace_is_clean() {
    // Clean under the checked-in baseline (which carries the one
    // deliberate drift in tests/enforcement.rs); without a baseline that
    // finding fires, which `verify.rs` covers separately.
    let baseline = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../analysis-baseline.toml")
        .display()
        .to_string();
    let out = lint()
        .args(["--baseline", &baseline])
        .output()
        .expect("spawn aodb-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "aodb-lint failed on the workspace:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("no synchronous-call cycles"), "{stdout}");
    assert!(stdout.contains("aodb-lint: clean"), "{stdout}");
}

#[test]
fn sync_cycle_fixture_is_rejected_with_path() {
    let out = lint()
        .args([
            "--graph",
            &fixture("sync_cycle.edges"),
            "--no-lint",
            "--no-verify",
            "--no-lockcheck",
            "--no-replaycheck",
        ])
        .output()
        .expect("spawn aodb-lint");
    assert!(
        !out.status.success(),
        "aodb-lint accepted a topology with a synchronous-call cycle"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("synchronous call cycle"), "{stderr}");
    // The full cycle path is named, with every member present.
    for actor in ["shm.organization", "shm.channel", "shm.aggregator"] {
        assert!(
            stderr.contains(actor),
            "cycle member {actor} missing:\n{stderr}"
        );
    }
    // The bystander edge is not part of any report.
    assert!(!stderr.contains("ingest-gateway"), "{stderr}");
}

#[test]
fn acyclic_fixture_passes() {
    let out = lint()
        .args([
            "--graph",
            &fixture("acyclic.edges"),
            "--no-lint",
            "--no-verify",
            "--no-lockcheck",
            "--no-replaycheck",
        ])
        .output()
        .expect("spawn aodb-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("aodb-lint: clean"), "{stdout}");
}

#[test]
fn dot_output_matches_golden_file() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/call_graph.dot");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden DOT");
    let generated = aodb_analysis::workspace_graph().to_dot();
    assert_eq!(
        generated, golden,
        "workspace call graph drifted from tests/golden/call_graph.dot — \
         if the topology change is intentional, regenerate with \
         `cargo run -p aodb-analysis --bin aodb-lint -- --dot \
         crates/analysis/tests/golden/call_graph.dot --no-lint` and update \
         the DESIGN.md embedding"
    );
}
