//! End-to-end tests for the aodb-lockcheck passes: the known-dirty
//! fixtures must fire exactly their seeded rules, the known-clean
//! fixture must stay silent, the lock-order DOT dump must match its
//! golden file, and the `aodb-lint` binary must surface both rules.

use std::path::PathBuf;
use std::process::Command;

use aodb_analysis::{lockcheck_corpus, Corpus, Rule};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_corpus(names: &[&str]) -> Corpus {
    let dir = fixtures_dir();
    Corpus::from_sources(
        names
            .iter()
            .map(|n| {
                let path = dir.join(n);
                let text = std::fs::read_to_string(&path).expect("fixture readable");
                (path, text)
            })
            .collect(),
    )
}

#[test]
fn known_dirty_fixtures_fire_their_seeded_rules() {
    let analysis = lockcheck_corpus(&fixture_corpus(&[
        "lock_clean.rs",
        "lock_cycle.rs",
        "lock_blocking.rs",
    ]));
    let by_rule = |rule: Rule, file: &str| {
        analysis
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.file.to_string_lossy().ends_with(file))
            .count()
    };
    assert_eq!(
        by_rule(Rule::LockOrderCycle, "lock_cycle.rs"),
        1,
        "{:#?}",
        analysis.findings
    );
    assert_eq!(
        by_rule(Rule::LockAcrossBlocking, "lock_blocking.rs"),
        1,
        "{:#?}",
        analysis.findings
    );
    // The clean fixture contributes nothing; no cross-contamination.
    assert_eq!(analysis.findings.len(), 2, "{:#?}", analysis.findings);
}

#[test]
fn dirty_findings_carry_class_and_item_keys() {
    let analysis = lockcheck_corpus(&fixture_corpus(&["lock_blocking.rs"]));
    assert_eq!(analysis.findings.len(), 1, "{:#?}", analysis.findings);
    let f = &analysis.findings[0];
    assert_eq!(f.rule, Rule::LockAcrossBlocking);
    assert_eq!(f.class.as_deref(), Some("Cache.slots"));
    assert_eq!(f.item.as_deref(), Some("refresh"));
    assert!(f.detail.contains("thread sleep"), "{f:#?}");
}

#[test]
fn known_clean_fixture_is_silent_but_witnesses_its_edge() {
    let analysis = lockcheck_corpus(&fixture_corpus(&["lock_clean.rs"]));
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
    // The consistent entries-then-totals nesting is recorded as an edge
    // without ever becoming a cycle.
    assert_eq!(analysis.graph.edges().len(), 1);
    let e = &analysis.graph.edges()[0];
    assert_eq!(
        (e.from.as_str(), e.to.as_str()),
        ("Ledger.entries", "Ledger.totals")
    );
    assert!(analysis.graph.cycles().is_empty());
}

#[test]
fn lock_graph_dot_matches_golden_file() {
    let analysis = lockcheck_corpus(&fixture_corpus(&[
        "lock_clean.rs",
        "lock_cycle.rs",
        "lock_blocking.rs",
    ]));
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lock_graph.dot");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden DOT");
    assert_eq!(
        analysis.graph.to_dot(),
        golden,
        "lock-order graph drifted from tests/golden/lock_graph.dot — if the \
         fixture change is intentional, paste the generated DOT above into \
         the golden file"
    );
}

fn run_lint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aodb-lint"))
        .args(args)
        .output()
        .expect("aodb-lint runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn lint_binary_reports_both_lock_rules_on_fixtures() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint(&["--src", dir.to_str().unwrap(), "--no-lint", "--no-verify"]);
    assert!(!ok, "seeded lock fixtures must fail the lint:\n{text}");
    assert!(text.contains("lock-order-cycle"), "{text}");
    assert!(text.contains("lock-across-blocking"), "{text}");
}

#[test]
fn lint_binary_dumps_the_workspace_lock_graph() {
    // Over the real tree (with its baseline) the run is clean and the
    // DOT dump carries the one canonical nesting: the store's writer
    // lock over its index lock.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let baseline = root.join("analysis-baseline.toml");
    // All passes run: skipping verify would strand the baseline's drift
    // entry as stale and fail the run.
    let (ok, text) = run_lint(&["--baseline", baseline.to_str().unwrap(), "--lock-dot", "-"]);
    assert!(
        ok,
        "workspace lockcheck must be clean under its baseline:\n{text}"
    );
    assert!(text.contains("digraph lock_order"), "{text}");
    // The writer mutex reaches `append_and_apply` as a parameter (the
    // store's backend enum owns it), so the class is function-scoped.
    assert!(
        text.contains("\"LogStore::append_and_apply(writer)\" -> \"LogStore.index\""),
        "canonical writer-over-index edge missing:\n{text}"
    );
}
