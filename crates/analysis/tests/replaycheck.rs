//! End-to-end tests for the aodb-replaycheck pass: the known-dirty
//! fixtures must fire exactly their seeded rules with the right
//! class/item keys, the known-clean fixture must stay silent, the JSON
//! findings dump must match its golden file, and the `aodb-lint` binary
//! must gate on (and be releasable from) the new rules.

use std::path::PathBuf;
use std::process::Command;

use aodb_analysis::{replaycheck_corpus, Corpus, Rule};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_corpus(names: &[&str]) -> Corpus {
    let dir = fixtures_dir();
    Corpus::from_sources(
        names
            .iter()
            .map(|n| {
                let path = dir.join(n);
                let text = std::fs::read_to_string(&path).expect("fixture readable");
                (path, text)
            })
            .collect(),
    )
}

const REPLAY_FIXTURES: &[&str] = &[
    "replay_clean.rs",
    "replay_nondet.rs",
    "replay_unordered_state.rs",
    "replay_clock.rs",
];

#[test]
fn known_dirty_fixtures_fire_their_seeded_rules() {
    let findings = replaycheck_corpus(&fixture_corpus(REPLAY_FIXTURES));
    let by_rule = |rule: Rule, file: &str| {
        findings
            .iter()
            .filter(|f| f.rule == rule && f.file.to_string_lossy().ends_with(file))
            .count()
    };
    assert_eq!(
        by_rule(Rule::NondetInTurn, "replay_nondet.rs"),
        2,
        "{findings:#?}"
    );
    assert_eq!(
        by_rule(Rule::AmbientClock, "replay_clock.rs"),
        2,
        "{findings:#?}"
    );
    assert_eq!(
        by_rule(Rule::UnorderedPersistedState, "replay_unordered_state.rs"),
        1,
        "{findings:#?}"
    );
    // The clean fixture contributes nothing; no cross-contamination.
    assert_eq!(findings.len(), 5, "{findings:#?}");
}

#[test]
fn nondet_findings_carry_class_and_item_keys() {
    let findings = replaycheck_corpus(&fixture_corpus(&["replay_nondet.rs"]));
    assert_eq!(findings.len(), 2, "{findings:#?}");
    // Iteration-order leak: the class names the unordered collection.
    let iter = &findings[0];
    assert_eq!(iter.rule, Rule::NondetInTurn);
    assert_eq!(iter.item.as_deref(), Some("handle"));
    assert_eq!(iter.class.as_deref(), Some("RFlusher.buffers"));
    assert!(iter.detail.contains("send payload"), "{iter:#?}");
    // RNG into persisted state: no collection class, fn item only.
    let rng = &findings[1];
    assert_eq!(rng.rule, Rule::NondetInTurn);
    assert_eq!(rng.item.as_deref(), Some("handle"));
    assert!(rng.detail.contains("thread_rng"), "{rng:#?}");
    assert!(rng.detail.contains("persisted write"), "{rng:#?}");
}

#[test]
fn clock_findings_reach_one_helper_call_deep() {
    let findings = replaycheck_corpus(&fixture_corpus(&["replay_clock.rs"]));
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert_eq!(findings[0].item.as_deref(), Some("handle"));
    assert!(findings[0].detail.contains("Instant::now"), "{findings:#?}");
    assert_eq!(findings[1].item.as_deref(), Some("stamp"));
    assert!(
        findings[1].detail.contains("SystemTime::now"),
        "{findings:#?}"
    );
}

#[test]
fn unordered_state_finding_names_the_field() {
    let findings = replaycheck_corpus(&fixture_corpus(&["replay_unordered_state.rs"]));
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.rule, Rule::UnorderedPersistedState);
    assert_eq!(f.item.as_deref(), Some("RCacheState.seen"));
    assert!(f.detail.contains("BTreeMap"), "{f:#?}");
}

#[test]
fn known_clean_fixture_is_silent() {
    // Ordered iteration into sends, keyed HashMap access, ordered
    // persisted state, and `ctx.now()` must none of them fire.
    let findings = replaycheck_corpus(&fixture_corpus(&["replay_clean.rs"]));
    assert!(findings.is_empty(), "{findings:#?}");
}

fn run_lint_in(dir: &PathBuf, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aodb-lint"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("aodb-lint runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn json_findings_dump_matches_golden_file() {
    // Run from the crate root so finding paths are stable relative ones.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let (ok, text) = run_lint_in(
        &manifest,
        &[
            "--src",
            "tests/fixtures",
            "--no-lint",
            "--no-verify",
            "--no-lockcheck",
            "--no-schemacheck",
            "--json",
        ],
    );
    assert!(!ok, "seeded replay fixtures must fail the lint:\n{text}");
    let got: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
    let golden_path = manifest.join("tests/golden/replay_findings.jsonl");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden JSONL");
    let want: Vec<&str> = golden.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(
        got, want,
        "replaycheck JSON drifted from tests/golden/replay_findings.jsonl — \
         if the fixture change is intentional, paste the generated lines \
         above into the golden file"
    );
}

#[test]
fn lint_binary_reports_all_three_replay_rules_on_fixtures() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint_in(
        &dir,
        &["--src", ".", "--no-lint", "--no-verify", "--no-lockcheck"],
    );
    assert!(!ok, "seeded replay fixtures must fail the lint:\n{text}");
    assert!(text.contains("nondet-in-turn"), "{text}");
    assert!(text.contains("ambient-clock"), "{text}");
    assert!(text.contains("unordered-persisted-state"), "{text}");
}

#[test]
fn no_replaycheck_flag_releases_the_gate() {
    // Same dirty tree, replaycheck switched off alongside the other
    // passes: nothing left to fire, so the run is clean.
    let dir = fixtures_dir();
    let (ok, text) = run_lint_in(
        &dir,
        &[
            "--src",
            ".",
            "--no-lint",
            "--no-verify",
            "--no-lockcheck",
            "--no-replaycheck",
            "--no-schemacheck",
        ],
    );
    assert!(ok, "--no-replaycheck must release the gate:\n{text}");
    assert!(text.contains("aodb-lint: clean"), "{text}");
}

#[test]
fn emit_baseline_prints_paste_ready_skeletons() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint_in(
        &dir,
        &[
            "--src",
            ".",
            "--no-lint",
            "--no-verify",
            "--no-lockcheck",
            "--emit-baseline",
        ],
    );
    assert!(!ok, "dirty fixtures still fail even when emitting:\n{text}");
    assert!(text.contains("[[suppress]]"), "{text}");
    assert!(text.contains("reason = \"\""), "{text}");
    assert!(
        text.contains("item = \"RCacheState.seen\""),
        "skeleton must carry the finding's item key:\n{text}"
    );
    // One skeleton per (rule, file, item): the two ambient-clock
    // findings live in different fns, so both survive the dedup.
    assert_eq!(
        text.matches("rule = \"ambient-clock\"").count(),
        2,
        "{text}"
    );
}
