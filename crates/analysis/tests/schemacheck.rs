//! End-to-end tests for the aodb-schemacheck passes and their `aodb-lint`
//! wiring: drift against a committed lockfile, stale lock entries,
//! unversioned formats, the ack-before-commit dataflow, the golden
//! lockfile round-trip, and the `--write-schema-lock` workflow.

use std::path::PathBuf;
use std::process::Command;

use aodb_analysis::{durability, schema, schemacheck_corpus, Corpus, Rule, SchemaLock};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn golden_lock_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("schema.lock.golden")
}

fn fixture_corpus(names: &[&str]) -> Corpus {
    let dir = fixtures_dir();
    Corpus::from_sources(
        names
            .iter()
            .map(|n| {
                let path = dir.join(n);
                let text = std::fs::read_to_string(&path).expect("fixture readable");
                (path, text)
            })
            .collect(),
    )
}

#[test]
fn clean_fixtures_are_silent_without_a_lock() {
    let corpus = fixture_corpus(&["schema_clean.rs", "durability_clean.rs"]);
    let findings = schemacheck_corpus(&corpus, None);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn dirty_fixtures_fire_their_rules() {
    let corpus = fixture_corpus(&["schema_unversioned.rs", "durability_dirty.rs"]);
    let findings = schemacheck_corpus(&corpus, None);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule.name()).collect();
    assert_eq!(
        rules,
        ["ack-before-commit", "schema-unversioned"],
        "{findings:#?}"
    );
}

#[test]
fn drift_fires_against_the_golden_lock() {
    // The golden lock pins DriftState at its previous layout and still
    // lists GoneState, which no fixture defines any more.
    let lock = SchemaLock::load(&golden_lock_path()).expect("golden lock parses");
    // Every fixture the golden lock covers, so only the seeded drift
    // (DriftState) and the seeded stale entry (GoneState) fire.
    let corpus = fixture_corpus(&[
        "schema_clean.rs",
        "schema_drift.rs",
        "schema_unversioned.rs",
        "replay_clean.rs",
        "replay_unordered_state.rs",
    ]);
    let findings = schema::schema_findings(&corpus, Some(&lock));
    let drift: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SchemaDrift)
        .collect();
    assert_eq!(drift.len(), 2, "{findings:#?}");
    let changed = drift
        .iter()
        .find(|f| f.item.as_deref() == Some("DriftState"))
        .expect("DriftState drift");
    assert!(changed.detail.contains("changed without a lockfile update"));
    let stale = drift
        .iter()
        .find(|f| f.item.as_deref() == Some("GoneState"))
        .expect("GoneState stale entry");
    assert!(stale.detail.contains("stale lockfile entry"));
    // MeterState matches its pinned fingerprint: no finding for it.
    assert!(!drift
        .iter()
        .any(|f| f.item.as_deref() == Some("MeterState")));
}

#[test]
fn golden_lock_roundtrips_byte_identically() {
    let path = golden_lock_path();
    let text = std::fs::read_to_string(&path).expect("golden readable");
    let lock = SchemaLock::load(&path).expect("golden parses");
    assert_eq!(
        lock.render(),
        text,
        "golden lockfile must be in render form"
    );
}

#[test]
fn ack_findings_pin_the_commit_line() {
    let corpus = fixture_corpus(&["durability_dirty.rs"]);
    let findings = durability::ack_findings(&corpus.files[0]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::AckBeforeCommit);
    // The finding anchors at the mutate, and names the deliver line.
    assert!(findings[0].excerpt.contains("mutate"), "{findings:#?}");
    assert!(findings[0].detail.contains("delivers its reply on line"));
}

fn run_lint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aodb-lint"))
        .args(args)
        .output()
        .expect("aodb-lint runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn lint_binary_fails_on_stale_or_drifted_lock() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--schema-lock",
        golden_lock_path().to_str().unwrap(),
        "--no-lint",
        "--no-verify",
        "--no-lockcheck",
        "--no-replaycheck",
    ]);
    assert!(!ok, "drifted lock must fail the lint:\n{text}");
    assert!(text.contains("schema-drift"), "{text}");
    assert!(text.contains("DriftState"), "{text}");
    assert!(text.contains("stale lockfile entry"), "{text}");
    assert!(text.contains("GoneState"), "{text}");
}

#[test]
fn write_schema_lock_then_check_is_drift_free() {
    let dir = fixtures_dir();
    let tmp = std::env::temp_dir().join(format!("aodb-schemalock-{}.lock", std::process::id()));
    let (_, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--write-schema-lock",
        tmp.to_str().unwrap(),
        "--no-lint",
        "--no-verify",
        "--no-lockcheck",
        "--no-replaycheck",
    ]);
    // The freshly written lock is used for the same run's check: the
    // seeded unversioned/ack findings still fire, but nothing drifts.
    assert!(text.contains("wrote"), "{text}");
    assert!(!text.contains("schema-drift"), "{text}");
    let written = std::fs::read_to_string(&tmp).expect("lock written");
    let lock = SchemaLock::parse(&written).expect("written lock parses");
    assert!(lock
        .entries
        .iter()
        .any(|e| e.name == "MeterState" && e.file == "schema_clean.rs"));
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn missing_lock_file_is_a_hard_error() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--schema-lock",
        "/nonexistent/schema.lock",
        "--no-lint",
        "--no-verify",
        "--no-lockcheck",
        "--no-replaycheck",
    ]);
    assert!(!ok);
    assert!(text.contains("cannot read"), "{text}");
}

#[test]
fn no_schemacheck_gates_the_passes_off() {
    let dir = fixtures_dir();
    let (_, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--no-lint",
        "--no-verify",
        "--no-lockcheck",
        "--no-replaycheck",
        "--no-schemacheck",
    ]);
    assert!(!text.contains("aodb-schemacheck:"), "{text}");
    assert!(!text.contains("ack-before-commit"), "{text}");
    assert!(!text.contains("schema-unversioned"), "{text}");
}

#[test]
fn workspace_lock_is_up_to_date() {
    // The committed schema.lock must match the current corpus — the
    // same assertion CI makes. A failure here means a persisted layout
    // changed without `--write-schema-lock schema.lock`.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let committed = std::fs::read_to_string(root.join("schema.lock")).expect("schema.lock exists");
    let roots: Vec<PathBuf> = ["shm", "cattle", "core", "store"]
        .iter()
        .map(|k| root.join("crates").join(k).join("src"))
        .collect();
    let corpus = Corpus::load(&roots).expect("workspace corpus loads");
    assert_eq!(
        schema::compute_lock(&corpus).render(),
        committed,
        "schema.lock is stale — regenerate with --write-schema-lock schema.lock \
         and review the migration story"
    );
}
