//! End-to-end tests for the aodb-verify passes and the `aodb-lint`
//! binary: seeded-bug fixtures must be caught (nonzero exit), clean
//! fixtures must stay silent, and the baseline must both suppress and
//! go stale correctly.

use std::path::PathBuf;
use std::process::Command;

use aodb_analysis::{verify_corpus, verify_tree, Corpus, Rule};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_corpus(names: &[&str]) -> Corpus {
    let dir = fixtures_dir();
    Corpus::from_sources(
        names
            .iter()
            .map(|n| {
                let path = dir.join(n);
                let text = std::fs::read_to_string(&path).expect("fixture readable");
                (path, text)
            })
            .collect(),
    )
}

#[test]
fn seeded_bugs_are_each_detected() {
    let findings = verify_tree(&[fixtures_dir()]).expect("fixtures walkable");
    let by_rule = |rule: Rule, file: &str| {
        findings
            .iter()
            .filter(|f| f.rule == rule && f.file.to_string_lossy().ends_with(file))
            .count()
    };
    assert_eq!(
        by_rule(Rule::DeclarationDriftMissing, "drift_missing.rs"),
        1,
        "{findings:#?}"
    );
    assert_eq!(
        by_rule(Rule::DeclarationDriftStale, "drift_stale.rs"),
        1,
        "{findings:#?}"
    );
    assert_eq!(
        by_rule(Rule::PersistenceHazard, "persist_hazard.rs"),
        1,
        "{findings:#?}"
    );
    assert_eq!(
        by_rule(Rule::ReplyLeak, "reply_leak.rs"),
        1,
        "{findings:#?}"
    );
    // The stale fixture's declared send edge is exercised; only the
    // retired call edge fires. The missing fixture's empty declaration
    // list has nothing to go stale. No cross-contamination.
    assert_eq!(findings.len(), 4, "{findings:#?}");
}

#[test]
fn clean_fixtures_are_silent() {
    let corpus = fixture_corpus(&["drift_clean.rs", "persist_clean.rs", "reply_clean.rs"]);
    let findings = verify_corpus(&corpus);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn seeded_drift_details_name_the_actors() {
    let corpus = fixture_corpus(&["drift_missing.rs"]);
    let findings = verify_corpus(&corpus);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].detail.contains("fix.producer"));
    assert!(findings[0].detail.contains("fix.sink"));
}

fn run_lint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aodb-lint"))
        .args(args)
        .output()
        .expect("aodb-lint runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn lint_binary_fails_on_seeded_fixtures() {
    let dir = fixtures_dir();
    let (ok, text) = run_lint(&["--src", dir.to_str().unwrap()]);
    assert!(!ok, "seeded fixtures must fail the lint:\n{text}");
    for rule in [
        "declaration-drift-missing",
        "declaration-drift-stale",
        "persistence-hazard",
        "reply-leak",
        "lock-order-cycle",
        "lock-across-blocking",
        "nondet-in-turn",
        "unordered-persisted-state",
        "ambient-clock",
        "ack-before-commit",
        "schema-unversioned",
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
    }
}

#[test]
fn lint_binary_baseline_suppresses_and_goes_stale() {
    let dir = fixtures_dir();
    let tmp = std::env::temp_dir().join(format!("aodb-baseline-{}.toml", std::process::id()));

    // A baseline covering every seeded finding makes the run pass.
    std::fs::write(
        &tmp,
        "[[suppress]]\n\
         rule = \"declaration-drift-missing\"\n\
         reason = \"seeded fixture\"\n\
         file = \"drift_missing.rs\"\n\
         [[suppress]]\n\
         rule = \"declaration-drift-stale\"\n\
         reason = \"seeded fixture\"\n\
         file = \"drift_stale.rs\"\n\
         [[suppress]]\n\
         rule = \"persistence-hazard\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"reply-leak\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"lock-order-cycle\"\n\
         reason = \"seeded fixture\"\n\
         file = \"lock_cycle.rs\"\n\
         [[suppress]]\n\
         rule = \"lock-across-blocking\"\n\
         reason = \"seeded fixture\"\n\
         file = \"lock_blocking.rs\"\n\
         item = \"refresh\"\n\
         [[suppress]]\n\
         rule = \"nondet-in-turn\"\n\
         reason = \"seeded fixture\"\n\
         file = \"replay_nondet.rs\"\n\
         [[suppress]]\n\
         rule = \"unordered-persisted-state\"\n\
         reason = \"seeded fixture\"\n\
         file = \"replay_unordered_state.rs\"\n\
         [[suppress]]\n\
         rule = \"ambient-clock\"\n\
         reason = \"seeded fixture\"\n\
         file = \"replay_clock.rs\"\n\
         [[suppress]]\n\
         rule = \"ack-before-commit\"\n\
         reason = \"seeded fixture\"\n\
         file = \"durability_dirty.rs\"\n\
         [[suppress]]\n\
         rule = \"schema-unversioned\"\n\
         reason = \"seeded fixture\"\n\
         file = \"schema_unversioned.rs\"\n",
    )
    .unwrap();
    let (ok, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--baseline",
        tmp.to_str().unwrap(),
    ]);
    assert!(ok, "fully-baselined fixtures must pass:\n{text}");
    assert!(text.contains("11 suppressed"), "{text}");

    // An entry that matches nothing is stale and fails the run even
    // when every finding is suppressed.
    std::fs::write(
        &tmp,
        "[[suppress]]\n\
         rule = \"declaration-drift-missing\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"declaration-drift-stale\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"persistence-hazard\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"reply-leak\"\n\
         reason = \"seeded fixture\"\n\
         [[suppress]]\n\
         rule = \"guard-across-wait\"\n\
         reason = \"this never fires and must be reported stale\"\n",
    )
    .unwrap();
    let (ok, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--baseline",
        tmp.to_str().unwrap(),
    ]);
    assert!(!ok, "stale baseline entry must fail the lint:\n{text}");
    assert!(text.contains("stale baseline entry"), "{text}");

    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn workspace_passes_with_the_checked_in_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let baseline = root.join("analysis-baseline.toml");
    let (ok, text) = run_lint(&[
        "--src",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert!(ok, "workspace must be clean under its baseline:\n{text}");
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let dir = fixtures_dir();
    let tmp = std::env::temp_dir().join(format!("aodb-badbase-{}.toml", std::process::id()));
    std::fs::write(&tmp, "[[suppress]]\nrule = \"reply-leak\"\n").unwrap();
    let (ok, text) = run_lint(&[
        "--src",
        dir.to_str().unwrap(),
        "--baseline",
        tmp.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(text.contains("reason"), "{text}");
    let _ = std::fs::remove_file(&tmp);
}
