//! Criterion micro-benchmarks of the cattle platform: collar ingest,
//! farm-to-fork tracing (the model A graph walk), and model B reads and
//! transfers.

use std::sync::Arc;
use std::time::Duration;

use aodb_cattle::model_b::{CreateCutB, GetLocalCut, TransferCutB};
use aodb_cattle::types::{Breed, CollarReading, GeoPoint, MeatCutData};
use aodb_cattle::{register_all, CattleClient, CattleEnv, CutHolder};
use aodb_runtime::Runtime;
use aodb_store::MemStore;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn readings(n: u64) -> Vec<CollarReading> {
    (0..n)
        .map(|i| CollarReading {
            ts_ms: i * 1000,
            position: GeoPoint {
                lat: 55.0 + i as f64 * 1e-6,
                lon: 8.0,
            },
            speed: 0.2,
            temperature: 38.6,
        })
        .collect()
}

fn bench_cattle(c: &mut Criterion) {
    let rt = Runtime::single(2);
    register_all(&rt, CattleEnv::new(Arc::new(MemStore::new())));
    let client = CattleClient::new(rt.handle());
    client.create_farmer("b/farm", "F").unwrap();
    client.create_slaughterhouse("b/house", "H").unwrap();
    client.create_retailer("b/retail", "R").unwrap();
    client
        .register_cow("b/cow", "b/farm", Breed::Angus, 0)
        .unwrap();
    client
        .register_cow("b/traced", "b/farm", Breed::Angus, 0)
        .unwrap();

    let mut group = c.benchmark_group("cattle");

    group.throughput(Throughput::Elements(10));
    group.bench_function("collar_report_10_fixes", |b| {
        let batch = readings(10);
        b.iter(|| {
            client
                .collar_report("b/cow", batch.clone())
                .unwrap()
                .wait_for(Duration::from_secs(10))
                .unwrap()
        })
    });

    // Build a complete chain once, then measure the trace walk.
    let cuts = client
        .slaughter("b/house", "b/traced", 1)
        .unwrap()
        .wait_for(Duration::from_secs(10))
        .unwrap()
        .unwrap();
    let product = client
        .create_product("b/retail", cuts, "pack", 2)
        .unwrap()
        .wait_for(Duration::from_secs(10))
        .unwrap();
    rt.quiesce(Duration::from_secs(10));

    group.throughput(Throughput::Elements(1));
    group.bench_function("trace_product_4_cuts", |b| {
        b.iter(|| client.trace_product(&product).unwrap())
    });

    // Model B: local read and transfer.
    let house = rt.actor_ref::<CutHolder>("b2/house");
    let dist = rt.actor_ref::<CutHolder>("b2/dist");
    house
        .call(CreateCutB {
            entity: "cut-hot".into(),
            data: MeatCutData {
                cow: "b/cow".into(),
                slaughterhouse: "b2/house".into(),
                cut_type: "ribeye".into(),
                weight_kg: 10.0,
            },
        })
        .unwrap();
    group.bench_function("model_b_local_read", |b| {
        b.iter(|| house.call(GetLocalCut("cut-hot".into())).unwrap())
    });

    let mut i = 0u64;
    group.bench_function("model_b_transfer_roundtrip", |b| {
        b.iter(|| {
            i += 1;
            let entity = format!("cut-{i}");
            house
                .call(CreateCutB {
                    entity: entity.clone(),
                    data: MeatCutData {
                        cow: "b/cow".into(),
                        slaughterhouse: "b2/house".into(),
                        cut_type: "ribeye".into(),
                        weight_kg: 10.0,
                    },
                })
                .unwrap();
            house
                .call(TransferCutB {
                    entity,
                    to: "b2/dist".into(),
                    ts_ms: i,
                })
                .unwrap()
        })
    });
    drop(dist);

    group.finish();
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = bench_cattle
}
criterion_main!(benches);
