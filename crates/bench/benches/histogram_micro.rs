//! Criterion micro-benchmarks of the metrics histogram — it sits on every
//! request completion path of the harness, so recording must stay in the
//! tens of nanoseconds.

use std::time::Duration;

use aodb_runtime::Histogram;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");

    let h = Histogram::new();
    let mut v = 1u64;
    group.throughput(Throughput::Elements(1));
    group.bench_function("record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v % 1_000_000);
        })
    });

    let filled = Histogram::new();
    for i in 0..1_000_000u64 {
        filled.record(i % 100_000);
    }
    group.bench_function("snapshot", |b| b.iter(|| filled.snapshot()));
    let snap = filled.snapshot();
    group.bench_function("percentiles", |b| b.iter(|| snap.percentiles()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(30);
    targets = bench_histogram
}
criterion_main!(benches);
