//! Criterion micro-benchmarks of the virtual-actor runtime: dispatch
//! throughput, request/response round trips, activation costs, and
//! scatter/gather fan-in.

use std::time::Duration;

use aodb_runtime::{gather, Actor, ActorContext, Handler, Message, Runtime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct Echo {
    value: u64,
}

impl Actor for Echo {
    const TYPE_NAME: &'static str = "bench.echo";
}

struct Bump(u64);
impl Message for Bump {
    type Reply = u64;
}
impl Handler<Bump> for Echo {
    fn handle(&mut self, msg: Bump, _ctx: &mut ActorContext<'_>) -> u64 {
        self.value = self.value.wrapping_add(msg.0);
        self.value
    }
}

struct Die;
impl Message for Die {
    type Reply = ();
}
impl Handler<Die> for Echo {
    fn handle(&mut self, _msg: Die, ctx: &mut ActorContext<'_>) {
        ctx.deactivate();
    }
}

fn runtime_fixture() -> Runtime {
    let rt = Runtime::single(2);
    rt.register(|_id| Echo { value: 0 });
    rt
}

fn bench_dispatch(c: &mut Criterion) {
    let rt = runtime_fixture();
    let actor = rt.actor_ref::<Echo>("hot");
    actor.call(Bump(1)).unwrap(); // warm activation

    let mut group = c.benchmark_group("runtime");

    group.throughput(Throughput::Elements(1));
    group.bench_function("call_roundtrip_warm", |b| {
        b.iter(|| actor.call(Bump(1)).unwrap())
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("tell_1000_one_actor", |b| {
        b.iter(|| {
            for _ in 0..999 {
                actor.tell(Bump(1)).unwrap();
            }
            // Fence on the 1000th message so the batch is fully processed.
            actor.call(Bump(1)).unwrap();
        })
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("tell_1000_spread_100_actors", |b| {
        let actors: Vec<_> = (0..100u64).map(|k| rt.actor_ref::<Echo>(k)).collect();
        for a in &actors {
            a.call(Bump(0)).unwrap();
        }
        b.iter(|| {
            for i in 0..900 {
                actors[i % 100].tell(Bump(1)).unwrap();
            }
            for a in &actors {
                a.call(Bump(1)).unwrap();
            }
        })
    });

    group.throughput(Throughput::Elements(64));
    group.bench_function("scatter_gather_64", |b| {
        let actors: Vec<_> = (1000..1064u64).map(|k| rt.actor_ref::<Echo>(k)).collect();
        for a in &actors {
            a.call(Bump(0)).unwrap();
        }
        b.iter(|| {
            let (collector, promise) = gather::<u64>(actors.len());
            for a in &actors {
                a.ask_with(Bump(1), collector.slot()).unwrap();
            }
            promise.wait_for(Duration::from_secs(10)).unwrap()
        })
    });

    group.finish();
    rt.shutdown();
}

fn bench_activation(c: &mut Criterion) {
    let rt = runtime_fixture();
    let mut group = c.benchmark_group("activation");
    let mut key = 1_000_000u64;

    group.bench_function("cold_activation_call", |b| {
        b.iter_batched(
            || {
                key += 1;
                rt.actor_ref::<Echo>(key)
            },
            |fresh| fresh.call(Bump(1)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("activate_then_deactivate", |b| {
        b.iter_batched(
            || {
                key += 1;
                rt.actor_ref::<Echo>(key)
            },
            |fresh| {
                fresh.call(Bump(1)).unwrap();
                fresh.call(Die).unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = bench_dispatch, bench_activation
}
criterion_main!(benches);
