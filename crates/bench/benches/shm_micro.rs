//! Criterion micro-benchmarks of the SHM platform's hot paths: channel
//! ingest (with and without derived streams and aggregation), raw range
//! queries, and the organization live-data fan-out.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::Runtime;
use aodb_shm::types::DataPoint;
use aodb_shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::MemStore;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn points(ts: u64) -> Vec<DataPoint> {
    (0..10)
        .map(|i| DataPoint {
            ts_ms: ts + i * 100,
            value: i as f64,
        })
        .collect()
}

fn build(spec: TopologySpec, sensors: usize) -> (Runtime, Topology, ShmClient) {
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::new(MemStore::new())));
    let topology = Topology::layout(sensors, spec);
    provision(&rt, &topology, |_| None).unwrap();
    let client = ShmClient::new(rt.handle());
    (rt, topology, client)
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("shm_ingest");
    group.throughput(Throughput::Elements(10)); // points per request

    {
        // Plain channel: no virtual subscriber, no aggregates.
        let spec = TopologySpec {
            virtual_every: 0,
            aggregates: false,
            ..Default::default()
        };
        let (rt, topology, client) = build(spec, 2);
        let channel = client.channel(topology.orgs[0].sensors[1].physical[0].as_str());
        let mut ts = 0u64;
        group.bench_function("plain_channel_10pts", |b| {
            b.iter(|| {
                ts += 1000;
                channel
                    .call(aodb_shm::messages::Ingest::new(points(ts)))
                    .unwrap()
            })
        });
        rt.shutdown();
    }
    {
        // Full paper path: virtual subscriber + hourly aggregation.
        let (rt, topology, client) = build(TopologySpec::default(), 2);
        let sensor = &topology.orgs[0].sensors[0];
        assert!(sensor.virtual_channel.is_some());
        let channel = client.channel(sensor.physical[0].as_str());
        let mut ts = 0u64;
        group.bench_function("subscribed_channel_10pts", |b| {
            b.iter(|| {
                ts += 1000;
                channel
                    .call(aodb_shm::messages::Ingest::new(points(ts)))
                    .unwrap()
            })
        });
        rt.shutdown();
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("shm_queries");
    let (rt, topology, client) = build(TopologySpec::default(), 10);
    let channel_key = topology.orgs[0].sensors[0].physical[0].clone();
    // Preload a window.
    for batch in 0..100u64 {
        client
            .ingest(&channel_key, points(batch * 1000))
            .unwrap()
            .wait()
            .unwrap();
    }
    rt.quiesce(Duration::from_secs(10));

    group.bench_function("raw_range_100pts", |b| {
        b.iter(|| {
            client
                .raw_range(&channel_key, 0, 10_000, 0)
                .unwrap()
                .wait()
                .unwrap()
        })
    });

    group.bench_function("live_data_21_channels", |b| {
        b.iter(|| {
            client
                .live_data(&topology.orgs[0].key)
                .unwrap()
                .wait_for(Duration::from_secs(10))
                .unwrap()
        })
    });

    group.bench_function("channel_stats", |b| {
        b.iter(|| client.channel_stats(&channel_key).unwrap().wait().unwrap())
    });
    group.finish();
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = bench_ingest, bench_queries
}
criterion_main!(benches);
