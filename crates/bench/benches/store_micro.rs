//! Criterion micro-benchmarks of the storage substrate: in-memory and
//! log-structured stores, codec framing, and the provisioned-throughput
//! decorator's overhead.

use std::sync::Arc;
use std::time::Duration;

use aodb_store::codec::{crc32, decode_state, encode_state, frame_record, parse_record};
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{
    Bytes, ExhaustionBehavior, Key, LogStore, LogStoreConfig, MemStore, ProvisionedConfig,
    ProvisionedStore, StateStore,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct ChannelBlob {
    org: String,
    points: Vec<(u64, f64)>,
}

fn blob(points: usize) -> ChannelBlob {
    ChannelBlob {
        org: "org-1".into(),
        points: (0..points as u64)
            .map(|i| (i * 100, i as f64 * 0.5))
            .collect(),
    }
}

fn bench_mem(c: &mut Criterion) {
    let store = MemStore::new();
    let value = Bytes::from(vec![7u8; 512]);
    for i in 0..10_000 {
        store
            .put(&Key::with_sort("t", "p", &format!("{i:06}")), value.clone())
            .unwrap();
    }
    let mut group = c.benchmark_group("mem_store");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("put_512B", |b| {
        b.iter(|| {
            i += 1;
            store
                .put(&Key::with_sort("t", "q", &format!("{i:06}")), value.clone())
                .unwrap()
        })
    });
    group.bench_function("get_hit", |b| {
        let key = Key::with_sort("t", "p", "005000");
        b.iter(|| store.get(&key).unwrap())
    });
    group.bench_function("scan_prefix_10k", |b| {
        let prefix = Key::partition_prefix("t", "p");
        b.iter(|| store.scan_prefix(&prefix).unwrap().len())
    });
    group.finish();
}

fn bench_log(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("aodb-bench-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
    let value = Bytes::from(vec![7u8; 512]);
    let mut group = c.benchmark_group("log_store");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("put_512B_nosync", |b| {
        b.iter(|| {
            i += 1;
            store
                .put(&Key::with_sort("t", "p", &format!("{i:08}")), value.clone())
                .unwrap()
        })
    });
    group.bench_function("get_hit", |b| {
        let key = Key::with_sort("t", "p", "00000001");
        b.iter(|| store.get(&key).unwrap())
    });
    group.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let small = blob(10);
    let large = blob(1000);
    let small_bytes = encode_state(&small).unwrap();
    let large_bytes = encode_state(&large).unwrap();

    group.bench_function("encode_state_10pt", |b| {
        b.iter(|| encode_state(&small).unwrap())
    });
    group.bench_function("encode_state_1000pt", |b| {
        b.iter(|| encode_state(&large).unwrap())
    });
    group.bench_function("decode_state_1000pt", |b| {
        b.iter(|| decode_state::<ChannelBlob>(&large_bytes).unwrap())
    });
    group.throughput(Throughput::Bytes(large_bytes.len() as u64));
    group.bench_function("crc32_blob", |b| b.iter(|| crc32(&large_bytes)));
    group.bench_function("frame_and_parse", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(small_bytes.len() + 8);
            frame_record(&small_bytes, &mut buf);
            parse_record(&buf).unwrap().unwrap().1
        })
    });
    group.finish();
}

/// Range scans over the same 100k-point stream on both storage layouts:
/// the KV blob (decode the whole state, filter the window) and the
/// tseries engine (sparse-index block skipping into sealed blocks). The
/// narrow scans are where the index pays — the KV blob must still decode
/// everything.
fn bench_scan_range(c: &mut Criterion) {
    const N: u64 = 100_000;
    // Quantized 10 Hz sensor signal, same as the ingest experiment.
    let points: Vec<(u64, f64)> = (0..N)
        .map(|i| (i * 100, 20.0 + (i % 16) as f64 * 0.25))
        .collect();
    // Narrow window: 1k points from the middle of the stream.
    let (from, to) = (50_000 * 100, 50_999 * 100);

    let ts = TsStore::new(
        Arc::new(MemStore::new()) as Arc<dyn StateStore>,
        TsConfig::default(),
    );
    for chunk in points.chunks(100) {
        ts.append_batch("s", chunk, b"").unwrap();
    }

    let blob = ChannelBlob {
        org: "org-1".into(),
        points: points.clone(),
    };
    let blob_bytes = encode_state(&blob).unwrap();

    let mut group = c.benchmark_group("scan_range");
    group.bench_function("tseries_full_100k", |b| {
        b.iter(|| {
            let hits = ts.scan_range("s", 0, u64::MAX, 0).unwrap();
            assert_eq!(hits.len(), N as usize);
            hits
        })
    });
    group.bench_function("tseries_narrow_1k_of_100k", |b| {
        b.iter(|| {
            let hits = ts.scan_range("s", from, to, 0).unwrap();
            assert_eq!(hits.len(), 1_000);
            hits
        })
    });
    group.bench_function("kv_blob_full_100k", |b| {
        b.iter(|| {
            let state = decode_state::<ChannelBlob>(&blob_bytes).unwrap();
            assert_eq!(state.points.len(), N as usize);
            state.points
        })
    });
    group.bench_function("kv_blob_narrow_1k_of_100k", |b| {
        b.iter(|| {
            let state = decode_state::<ChannelBlob>(&blob_bytes).unwrap();
            let hits: Vec<(u64, f64)> = state
                .points
                .into_iter()
                .filter(|&(ts_ms, _)| ts_ms >= from && ts_ms <= to)
                .collect();
            assert_eq!(hits.len(), 1_000);
            hits
        })
    });
    group.finish();
}

fn bench_provisioned(c: &mut Criterion) {
    let store = ProvisionedStore::new(
        MemStore::new(),
        ProvisionedConfig {
            read_units: u32::MAX,
            write_units: u32::MAX,
            burst_seconds: 1.0,
            on_exhausted: ExhaustionBehavior::Block,
            request_latency: Duration::ZERO,
        },
    );
    let value = Bytes::from(vec![7u8; 512]);
    let mut group = c.benchmark_group("provisioned_overhead");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("put_512B_uncapped", |b| {
        b.iter(|| {
            i += 1;
            store
                .put(&Key::with_sort("t", "p", &format!("{i:08}")), value.clone())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20);
    targets = bench_mem, bench_log, bench_codec, bench_scan_range, bench_provisioned
}
criterion_main!(benches);
