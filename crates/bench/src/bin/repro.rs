//! `repro` — regenerates the paper's evaluation figures and the ablation
//! studies.
//!
//! ```text
//! repro [EXPERIMENTS...] [--quick] [--json DIR] [--label NAME] [--bench-out PATH]
//!
//! EXPERIMENTS: all (default) | fig6 | fig7 | fig8 | fig9 | fig89
//!            | dispatch | ingest | placement | durability | granularity
//!            | constraints
//! --quick           shorter sweeps and durations (CI-friendly)
//! --json DIR        additionally write each experiment's raw results as JSON
//! --label NAME      record the dispatch microbench under this key in the
//!                   bench trajectory file (default: "after"); for the
//!                   ingest experiment a non-default label prefixes its
//!                   "before"/"after" entries ("NAME-before", "NAME-after")
//! --bench-out PATH  dispatch trajectory file (default: BENCH_dispatch.json);
//!                   the ingest experiment always writes BENCH_ingest.json
//! ```

use std::path::PathBuf;

use aodb_bench::experiments::{ablations, dispatch, fig6, fig7, fig89, ingest};

fn write_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("  → wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Merges one benchmark record into a trajectory file at the repo root,
/// keyed by `label` so the before/after perf history accumulates across
/// runs.
fn record_bench_entry<T: serde::Serialize>(path: &str, label: &str, result: &T) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| match v {
            serde_json::Value::Object(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    let entry = serde_json::json!({
        "machine": {
            "cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            "os": std::env::consts::OS,
            "arch": std::env::consts::ARCH,
        },
        "recorded_unix": std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        "result": result,
    });
    root.insert(label.to_string(), entry);
    match serde_json::to_string_pretty(&serde_json::Value::Object(root)) {
        Ok(body) => {
            if let Err(e) = std::fs::write(path, body + "\n") {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                println!("  → recorded bench entry \"{label}\" in {path}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize bench record: {e}"),
    }
}

/// Records one ingest-experiment run as a before/after pair in
/// `BENCH_ingest.json`: the KV baseline under `"{prefix}before"`, the
/// full result (tseries numbers, speedup, engine ceiling) under
/// `"{prefix}after"`. The default label ("after") maps to the bare
/// `before`/`after` keys; any other label becomes a prefix so e.g. CI
/// smoke runs don't clobber the checked-in full-workload numbers.
fn record_ingest_bench(label: &str, result: &ingest::IngestResult) {
    const PATH: &str = "BENCH_ingest.json";
    let prefix = if label == "after" {
        String::new()
    } else {
        format!("{label}-")
    };
    record_bench_entry(PATH, &format!("{prefix}before"), &result.kv);
    record_bench_entry(PATH, &format!("{prefix}after"), result);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_dir = flag_value("--json").map(PathBuf::from);
    let label = flag_value("--label").unwrap_or_else(|| "after".to_string());
    let bench_out = flag_value("--bench-out").unwrap_or_else(|| "BENCH_dispatch.json".to_string());
    // Positions holding a flag's value, to keep them out of the
    // experiment selection.
    let value_slots: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.as_str(), "--json" | "--label" | "--bench-out"))
        .map(|(i, _)| i + 1)
        .collect();
    let mut selected: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_slots.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    let wants = |name: &str| {
        selected.iter().any(|s| s == name || s == "all")
            || (name == "fig89" && selected.iter().any(|s| s == "fig8" || s == "fig9"))
    };

    println!(
        "IoT-AODB reproduction harness — EDBT 2019 \"Modeling and Building IoT Data \
         Platforms with Actor-Oriented Databases\"{}",
        if quick { " (quick mode)" } else { "" }
    );

    if wants("fig6") {
        let points = fig6::run(quick);
        write_json(&json_dir, "fig6", &points);
    }
    if wants("fig7") {
        let points = fig7::run(quick);
        write_json(&json_dir, "fig7", &points);
    }
    if wants("fig89") {
        let points = fig89::run(quick);
        write_json(&json_dir, "fig89", &points);
    }
    if wants("dispatch") {
        let result = dispatch::run(quick);
        write_json(&json_dir, "dispatch", &result);
        record_bench_entry(&bench_out, &label, &result);
    }
    if wants("ingest") {
        let result = ingest::run(quick);
        write_json(&json_dir, "ingest", &result);
        record_ingest_bench(&label, &result);
    }
    if wants("placement") {
        let points = ablations::run_placement(quick);
        write_json(&json_dir, "placement", &points);
    }
    if wants("durability") {
        let points = ablations::run_durability(quick);
        write_json(&json_dir, "durability", &points);
    }
    if wants("granularity") {
        let points = ablations::run_granularity(quick);
        write_json(&json_dir, "granularity", &points);
    }
    if wants("constraints") {
        let points = ablations::run_constraints(quick);
        write_json(&json_dir, "constraints", &points);
    }
    println!("\ndone.");
}
