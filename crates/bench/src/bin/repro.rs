//! `repro` — regenerates the paper's evaluation figures and the ablation
//! studies.
//!
//! ```text
//! repro [EXPERIMENTS...] [--quick] [--json DIR]
//!
//! EXPERIMENTS: all (default) | fig6 | fig7 | fig8 | fig9 | fig89
//!            | placement | durability | granularity | constraints
//! --quick      shorter sweeps and durations (CI-friendly)
//! --json DIR   additionally write each experiment's raw results as JSON
//! ```

use std::path::PathBuf;

use aodb_bench::experiments::{ablations, fig6, fig7, fig89};

fn write_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("  → wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            json_dir
                .as_deref()
                .map(|d| d.as_os_str() != a.as_str())
                .unwrap_or(true)
        })
        .cloned()
        .collect();
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    let wants = |name: &str| {
        selected.iter().any(|s| s == name || s == "all")
            || (name == "fig89" && selected.iter().any(|s| s == "fig8" || s == "fig9"))
    };

    println!(
        "IoT-AODB reproduction harness — EDBT 2019 \"Modeling and Building IoT Data \
         Platforms with Actor-Oriented Databases\"{}",
        if quick { " (quick mode)" } else { "" }
    );

    if wants("fig6") {
        let points = fig6::run(quick);
        write_json(&json_dir, "fig6", &points);
    }
    if wants("fig7") {
        let points = fig7::run(quick);
        write_json(&json_dir, "fig7", &points);
    }
    if wants("fig89") {
        let points = fig89::run(quick);
        write_json(&json_dir, "fig89", &points);
    }
    if wants("placement") {
        let points = ablations::run_placement(quick);
        write_json(&json_dir, "placement", &points);
    }
    if wants("durability") {
        let points = ablations::run_durability(quick);
        write_json(&json_dir, "durability", &points);
    }
    if wants("granularity") {
        let points = ablations::run_granularity(quick);
        write_json(&json_dir, "granularity", &points);
    }
    if wants("constraints") {
        let points = ablations::run_constraints(quick);
        write_json(&json_dir, "constraints", &points);
    }
    println!("\ndone.");
}
