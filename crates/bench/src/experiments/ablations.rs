//! Ablation experiments for the design choices the paper calls out:
//! placement strategy (§5), durability policy (§5), actor vs. non-actor
//! granularity for frequently accessed entities (§4.3), and constraint
//! enforcement mechanism (§4.4).

use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_cattle::meatcut::{AddItinerary, GetCutInfo, InitMeatCut, MeatCut};
use aodb_cattle::model_b::{CreateCutB, SnapshotCuts, TransferCutB};
use aodb_cattle::types::{Breed, ItineraryEntry, MeatCutData};
use aodb_cattle::{register_all as register_cattle, CattleClient, CattleEnv, CutHolder};
use aodb_core::{TxnOutcome, WorkflowOutcome, WritePolicy};
use aodb_runtime::{
    gather, ConsistentHashPlacement, NetConfig, Placement, PreferLocalPlacement, RandomPlacement,
    Runtime,
};
use aodb_shm::{provision, register_all as register_shm, ShmEnv, Topology, TopologySpec};
use aodb_store::{ExhaustionBehavior, MemStore, ProvisionedConfig, ProvisionedStore, StateStore};
use serde::Serialize;

use crate::experiments::common::SimHw;
use crate::measure::{fmt_f, print_table, LatencyRow, WindowedThroughput};
use crate::workload::{run_load, FleetRefs, LoadConfig};

const SILO_OF_4: fn(usize) -> Option<aodb_runtime::SiloId> =
    |org| Some(aodb_runtime::SiloId((org % 4) as u32));

// ---------------------------------------------------------------- placement

/// One placement-strategy measurement.
#[derive(Clone, Debug, Serialize)]
pub struct PlacementPoint {
    /// Strategy name.
    pub strategy: String,
    /// Sustained throughput.
    pub throughput: WindowedThroughput,
    /// Ingest latency.
    pub ingest: LatencyRow,
    /// Fraction of messages that crossed silos.
    pub remote_fraction: f64,
}

fn run_placement_one(placement: impl Placement, name: &str, quick: bool) -> PlacementPoint {
    let hw = SimHw::default();
    let sensors = 2_000; // 4 silos × 2 workers → 50 % utilization
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::builder()
        .silos(4, hw.large_workers)
        .placement(placement)
        .network(NetConfig::lan())
        .build();
    register_shm(
        &rt,
        ShmEnv::paper_default(Arc::clone(&store)).with_service_time(hw.service_time),
    );
    let topology = Topology::layout(sensors, TopologySpec::default());
    provision(&rt, &topology, SILO_OF_4).expect("provision");
    let fleet = FleetRefs::build(&rt, &topology, SILO_OF_4);

    let report = run_load(
        &fleet,
        LoadConfig::sensors(sensors, if quick { 5 } else { 8 }),
    );
    let metrics = rt.metrics();
    let total = (metrics.remote_messages + metrics.local_messages).max(1);
    let point = PlacementPoint {
        strategy: name.to_string(),
        throughput: report.throughput,
        ingest: report.ingest,
        remote_fraction: metrics.remote_messages as f64 / total as f64,
    };
    rt.shutdown_with_drain(Duration::from_secs(10));
    point
}

/// Placement ablation: random (Orleans default) vs prefer-local (the
/// paper's choice for channels/aggregators) vs consistent hashing.
pub fn run_placement(quick: bool) -> Vec<PlacementPoint> {
    println!(
        "\nAblation: activation placement — 4 silos, LAN, 2,000 sensors, gateways silo-affine"
    );
    let points = vec![
        run_placement_one(RandomPlacement, "random", quick),
        run_placement_one(PreferLocalPlacement, "prefer-local", quick),
        run_placement_one(ConsistentHashPlacement, "consistent-hash", quick),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.strategy.clone(),
                format!(
                    "{} ± {}",
                    fmt_f(p.throughput.mean),
                    fmt_f(p.throughput.std_dev)
                ),
                fmt_f(p.ingest.p50_ms),
                fmt_f(p.ingest.p99_ms),
                format!("{:.1}%", p.remote_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Placement ablation (§5)",
        &[
            "strategy",
            "throughput req/s",
            "p50 ms",
            "p99 ms",
            "remote msgs",
        ],
        &rows,
    );
    points
}

// --------------------------------------------------------------- durability

/// One durability-policy measurement.
#[derive(Clone, Debug, Serialize)]
pub struct DurabilityPoint {
    /// Policy label.
    pub policy: String,
    /// Sustained throughput.
    pub throughput: WindowedThroughput,
    /// Ingest latency.
    pub ingest: LatencyRow,
    /// Store writes issued during the run.
    pub store_writes: u64,
}

fn run_durability_one(
    label: &str,
    policy: WritePolicy,
    provisioned: Option<ProvisionedConfig>,
    quick: bool,
) -> DurabilityPoint {
    let hw = SimHw::default();
    let sensors = 300;
    let mem = MemStore::new();
    let (store, counter): (Arc<dyn StateStore>, Option<Arc<ProvisionedStore<MemStore>>>) =
        match provisioned {
            Some(config) => {
                let s = Arc::new(ProvisionedStore::new(mem, config));
                (Arc::clone(&s) as Arc<dyn StateStore>, Some(s))
            }
            None => {
                let s = Arc::new(ProvisionedStore::new(
                    mem,
                    ProvisionedConfig {
                        read_units: u32::MAX,
                        write_units: u32::MAX,
                        burst_seconds: 1.0,
                        on_exhausted: ExhaustionBehavior::Block,
                        request_latency: Duration::ZERO,
                    },
                ));
                (Arc::clone(&s) as Arc<dyn StateStore>, Some(s))
            }
        };
    let rt = Runtime::single(hw.large_workers);
    let mut env = ShmEnv::paper_default(Arc::clone(&store)).with_service_time(hw.service_time);
    env.data_policy = policy;
    env.window_capacity = 200; // bound the serialized state size
    register_shm(&rt, env);
    let topology = Topology::layout(
        sensors,
        TopologySpec {
            aggregates: false,
            ..Default::default()
        },
    );
    provision(&rt, &topology, |_| None).expect("provision");
    let fleet = FleetRefs::build(&rt, &topology, |_| None);

    let writes_before = counter.as_ref().map(|c| c.stats().writes).unwrap_or(0);
    let report = run_load(
        &fleet,
        LoadConfig::sensors(sensors, if quick { 5 } else { 8 }),
    );
    let writes_after = counter.as_ref().map(|c| c.stats().writes).unwrap_or(0);
    let point = DurabilityPoint {
        policy: label.to_string(),
        throughput: report.throughput,
        ingest: report.ingest,
        store_writes: writes_after - writes_before,
    };
    rt.shutdown_with_drain(Duration::from_secs(10));
    point
}

/// Durability ablation: the paper's write-policy spectrum, plus the same
/// policy against a DynamoDB-provisioned (200 WCU) store to show why the
/// paper defers uploads.
pub fn run_durability(quick: bool) -> Vec<DurabilityPoint> {
    println!("\nAblation: durability policy — 1 silo, 300 sensors, window 200 points");
    let paper_dynamo = ProvisionedConfig {
        read_units: 200,
        write_units: 200,
        burst_seconds: 5.0,
        on_exhausted: ExhaustionBehavior::Block,
        request_latency: Duration::from_micros(500),
    };
    let points = vec![
        run_durability_one(
            "on-deactivate (paper)",
            WritePolicy::OnDeactivate,
            None,
            quick,
        ),
        run_durability_one("every-100", WritePolicy::EveryN(100), None, quick),
        run_durability_one("every-10", WritePolicy::EveryN(10), None, quick),
        run_durability_one("every-change", WritePolicy::EveryChange, None, quick),
        run_durability_one(
            "every-change + 200 WCU dynamo",
            WritePolicy::EveryChange,
            Some(paper_dynamo),
            quick,
        ),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                format!(
                    "{} ± {}",
                    fmt_f(p.throughput.mean),
                    fmt_f(p.throughput.std_dev)
                ),
                fmt_f(p.ingest.p50_ms),
                fmt_f(p.ingest.p99_ms),
                p.store_writes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Durability ablation (§5)",
        &[
            "policy",
            "throughput req/s",
            "p50 ms",
            "p99 ms",
            "store writes",
        ],
        &rows,
    );
    points
}

// -------------------------------------------------------------- granularity

/// One granularity-model measurement.
#[derive(Clone, Debug, Serialize)]
pub struct GranularityPoint {
    /// Model label.
    pub model: String,
    /// Aggregate "all my cuts" reads per second.
    pub batch_reads_per_sec: f64,
    /// Cut transfers per second.
    pub transfers_per_sec: f64,
    /// Runtime messages needed per batch read.
    pub messages_per_batch_read: f64,
}

/// Granularity ablation (§4.3): meat cuts as actors (model A) vs
/// versioned non-actor objects in holder actors (model B). The contrasted
/// operation is the one the paper motivates: a participant reading
/// information about *all* the cuts it is responsible for.
pub fn run_granularity(quick: bool) -> Vec<GranularityPoint> {
    println!("\nAblation: actor vs non-actor objects for meat cuts (§4.3)");
    let n_cuts = if quick { 200 } else { 500 };
    let reads = if quick { 200 } else { 500 };

    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    register_cattle(&rt, CattleEnv::new(Arc::clone(&store)));

    let cut_data = |i: usize| MeatCutData {
        cow: format!("cow-{i}"),
        slaughterhouse: "house".into(),
        cut_type: "ribeye".into(),
        weight_kg: 10.0,
    };

    // --- Model A: one actor per cut.
    let cut_refs: Vec<_> = (0..n_cuts)
        .map(|i| rt.actor_ref::<MeatCut>(format!("a/cut-{i}")))
        .collect();
    for (i, cut) in cut_refs.iter().enumerate() {
        cut.tell(InitMeatCut(cut_data(i))).unwrap();
    }
    rt.quiesce(Duration::from_secs(20));

    let msgs_before = rt.metrics().messages_processed;
    let t0 = Instant::now();
    for _ in 0..reads {
        // "Distributor reads all its cuts": fan-out over every cut actor.
        let (collector, promise) = gather::<aodb_cattle::CutInfo>(cut_refs.len());
        for cut in &cut_refs {
            cut.ask_with(GetCutInfo, collector.slot()).unwrap();
        }
        promise.wait_for(Duration::from_secs(30)).unwrap();
    }
    let a_read_elapsed = t0.elapsed();
    let a_msgs = (rt.metrics().messages_processed - msgs_before) as f64 / reads as f64;

    let t0 = Instant::now();
    for cut in &cut_refs {
        cut.tell(AddItinerary(ItineraryEntry {
            delivery: "d".into(),
            from: "house".into(),
            to: "dist".into(),
            arrived_ms: 1,
        }))
        .unwrap();
    }
    rt.quiesce(Duration::from_secs(20));
    let a_transfer_elapsed = t0.elapsed();

    // --- Model B: versioned objects inside one holder per stage.
    let house = rt.actor_ref::<CutHolder>("b/house");
    let dist = rt.actor_ref::<CutHolder>("b/dist");
    for i in 0..n_cuts {
        house
            .tell(CreateCutB {
                entity: format!("cut-{i}"),
                data: cut_data(i),
            })
            .unwrap();
    }
    rt.quiesce(Duration::from_secs(20));

    let msgs_before = rt.metrics().messages_processed;
    let t0 = Instant::now();
    for _ in 0..reads {
        // Same aggregate read: one message, local state access.
        let snapshot = house.call(SnapshotCuts).unwrap();
        assert_eq!(snapshot.len(), n_cuts);
    }
    let b_read_elapsed = t0.elapsed();
    let b_msgs = (rt.metrics().messages_processed - msgs_before) as f64 / reads as f64;

    let t0 = Instant::now();
    for i in 0..n_cuts {
        house
            .tell(TransferCutB {
                entity: format!("cut-{i}"),
                to: "b/dist".into(),
                ts_ms: 1,
            })
            .unwrap();
    }
    rt.quiesce(Duration::from_secs(20));
    let b_transfer_elapsed = t0.elapsed();
    drop(dist);

    let points = vec![
        GranularityPoint {
            model: "A: cut actors".into(),
            batch_reads_per_sec: reads as f64 / a_read_elapsed.as_secs_f64(),
            transfers_per_sec: n_cuts as f64 / a_transfer_elapsed.as_secs_f64(),
            messages_per_batch_read: a_msgs,
        },
        GranularityPoint {
            model: "B: versioned objects".into(),
            batch_reads_per_sec: reads as f64 / b_read_elapsed.as_secs_f64(),
            transfers_per_sec: n_cuts as f64 / b_transfer_elapsed.as_secs_f64(),
            messages_per_batch_read: b_msgs,
        },
    ];
    rt.shutdown();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                fmt_f(p.batch_reads_per_sec),
                fmt_f(p.transfers_per_sec),
                fmt_f(p.messages_per_batch_read),
            ]
        })
        .collect();
    print_table(
        "Granularity ablation (§4.3) — 500-cut holder",
        &[
            "model",
            "batch reads/s",
            "transfers/s",
            "msgs per batch read",
        ],
        &rows,
    );
    points
}

// -------------------------------------------------------------- constraints

/// One constraint-mechanism measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ConstraintPoint {
    /// Mechanism label.
    pub mechanism: String,
    /// Ownership transfers per second.
    pub transfers_per_sec: f64,
    /// Mean latency per transfer (ms).
    pub mean_latency_ms: f64,
    /// Whether the mechanism is atomic.
    pub atomic: bool,
}

/// Constraint-enforcement ablation (§4.4): 2PC transaction vs multi-actor
/// workflow vs single-actor update for cow ownership transfer.
pub fn run_constraints(quick: bool) -> Vec<ConstraintPoint> {
    println!("\nAblation: cross-actor constraint enforcement (§4.4)");
    let transfers = if quick { 100 } else { 300 };

    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(4);
    register_cattle(&rt, CattleEnv::new(Arc::clone(&store)));
    let client = CattleClient::new(rt.handle());
    client.create_farmer("farm-a", "A").unwrap();
    client.create_farmer("farm-b", "B").unwrap();
    for i in 0..3 {
        client
            .register_cow(&format!("cx-{i}"), "farm-a", Breed::Angus, 0)
            .unwrap();
    }
    rt.quiesce(Duration::from_secs(10));

    // 2PC: bounce cow cx-0 between the farms.
    let t0 = Instant::now();
    for i in 0..transfers {
        let (from, to) = if i % 2 == 0 {
            ("farm-a", "farm-b")
        } else {
            ("farm-b", "farm-a")
        };
        let outcome = client
            .transfer_cow_txn("cx-0", from, to)
            .unwrap()
            .wait_for(Duration::from_secs(10))
            .unwrap();
        assert_eq!(outcome, TxnOutcome::Committed);
    }
    let txn_elapsed = t0.elapsed();

    // Workflow: bounce cow cx-1.
    let t0 = Instant::now();
    for i in 0..transfers {
        let (from, to) = if i % 2 == 0 {
            ("farm-a", "farm-b")
        } else {
            ("farm-b", "farm-a")
        };
        let outcome = client
            .transfer_cow_workflow(&format!("wf-{i}"), "cx-1", from, to)
            .unwrap()
            .wait_for(Duration::from_secs(10))
            .unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
    }
    let wf_elapsed = t0.elapsed();

    // Single-actor: ownership lives only in the cow (herd lists derived
    // offline) — one message per transfer.
    use aodb_cattle::cow::{Cow, InitCow};
    let cow = rt.actor_ref::<Cow>("cx-2");
    let t0 = Instant::now();
    for i in 0..transfers {
        let to = if i % 2 == 0 { "farm-b" } else { "farm-a" };
        cow.call(InitCow {
            farmer: to.to_string(),
            breed: Breed::Angus,
            born_ms: 0,
        })
        .unwrap();
    }
    let single_elapsed = t0.elapsed();
    rt.shutdown();

    let mk = |mechanism: &str, elapsed: Duration, atomic: bool| ConstraintPoint {
        mechanism: mechanism.to_string(),
        transfers_per_sec: transfers as f64 / elapsed.as_secs_f64(),
        mean_latency_ms: elapsed.as_secs_f64() * 1000.0 / transfers as f64,
        atomic,
    };
    let points = vec![
        mk("2PC transaction", txn_elapsed, true),
        mk("multi-actor workflow", wf_elapsed, false),
        mk("single-actor update", single_elapsed, true),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mechanism.clone(),
                fmt_f(p.transfers_per_sec),
                fmt_f(p.mean_latency_ms),
                if p.atomic { "yes" } else { "eventual" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Constraint-enforcement ablation (§4.4)",
        &["mechanism", "transfers/s", "mean ms", "atomic"],
        &rows,
    );
    points
}
