//! Shared experiment scaffolding: the simulated hardware profile and
//! platform construction helpers.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{NetConfig, Placement, PreferLocalPlacement, Runtime, SiloId};
use aodb_shm::{provision, register_all, ShmEnv, Topology, TopologySpec};
use aodb_store::{LogStore, LogStoreConfig, MemStore, StateStore, SyncPolicy, WalConfig};

use crate::workload::FleetRefs;

/// The simulated hardware profile mapping the paper's EC2 instances onto
/// worker counts and a per-ingest service time.
///
/// * m5.large (2 vCPU)   → 2 workers; capacity ≈ 2 / (2 × 0.5 ms)
///   = 2,000 sensor-requests/s — matching the ≈1,800 req/s the paper
///   measures in Figure 6.
/// * m5.xlarge (1.5× ECU) → 3 workers; capacity ≈ 3,000 sensor-requests/s.
///
/// The service time *sleeps* the worker, so silo capacity is governed by
/// worker count rather than host cores — the paper's cluster behaviour is
/// preserved even on a single-core reproduction host (see
/// `ShmEnv::ingest_service_time`).
#[derive(Clone, Copy, Debug)]
pub struct SimHw {
    /// Worker threads of an m5.large-class silo.
    pub large_workers: usize,
    /// Worker threads of an m5.xlarge-class silo (the paper's 1.5× ECU).
    pub xlarge_workers: usize,
    /// Simulated service time of one channel-ingest.
    pub service_time: Duration,
}

impl Default for SimHw {
    fn default() -> Self {
        SimHw {
            large_workers: 2,
            xlarge_workers: 3,
            service_time: Duration::from_micros(500),
        }
    }
}

impl SimHw {
    /// Estimated saturation throughput (sensor-requests/s) of a silo with
    /// `workers` workers, given 2 channel-ingests per sensor request.
    pub fn capacity(&self, workers: usize) -> f64 {
        workers as f64 / (2.0 * self.service_time.as_secs_f64())
    }
}

/// A fully provisioned SHM platform ready for load.
pub struct Testbed {
    /// The runtime (dropping it shuts the platform down).
    pub rt: Runtime,
    /// The fleet layout.
    pub topology: Topology,
    /// Pre-resolved request targets.
    pub fleet: FleetRefs,
    /// The backing store.
    pub store: Arc<dyn StateStore>,
}

/// Builds a platform: `silos` silos of `workers` each, organizations
/// pinned round-robin to silos (prefer-local), optional simulated LAN.
pub fn build_testbed(
    sensors: usize,
    silos: usize,
    workers: usize,
    hw: SimHw,
    net: NetConfig,
    placement: impl Placement,
    spec: TopologySpec,
) -> Testbed {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::builder()
        .silos(silos, workers)
        .placement(placement)
        .network(net)
        .max_batch(8)
        .build();
    register_all(
        &rt,
        ShmEnv::paper_default(Arc::clone(&store)).with_service_time(hw.service_time),
    );
    let topology = Topology::layout(sensors, spec);
    let silo_of_org = |org: usize| Some(SiloId((org % silos) as u32));
    provision(&rt, &topology, silo_of_org).expect("provisioning failed");
    let fleet = FleetRefs::build(&rt, &topology, silo_of_org);
    Testbed {
        rt,
        topology,
        fleet,
        store,
    }
}

/// Single-silo convenience.
pub fn build_single_silo(sensors: usize, workers: usize, hw: SimHw) -> Testbed {
    build_testbed(
        sensors,
        1,
        workers,
        hw,
        NetConfig::disabled(),
        PreferLocalPlacement,
        TopologySpec::default(),
    )
}

/// Single-silo testbed on the *durable* store stack: a [`LogStore`]
/// backing in `dir`, the tseries engine in group-commit WAL mode
/// (`FsyncPolicy::PerGroup` — every ingest ack means its WAL group
/// fsynced), and deferred ingest acks. The durability-on counterpart of
/// [`build_single_silo`]; the caller owns `dir` and removes it after
/// [`teardown`].
pub fn build_single_silo_durable(
    sensors: usize,
    workers: usize,
    hw: SimHw,
    dir: &std::path::Path,
) -> Testbed {
    let store: Arc<dyn StateStore> = Arc::new(
        LogStore::open(LogStoreConfig {
            dir: dir.to_path_buf(),
            compact_threshold: 16 * 1024 * 1024,
            sync: SyncPolicy::OnDemand,
            group_commit: None,
        })
        .expect("open durable bench store"),
    );
    let (env, _engine) = ShmEnv::tseries_wal_default(
        Arc::clone(&store),
        dir.join("ingest.wal"),
        WalConfig::default(),
    )
    .expect("open bench wal");
    let rt = Runtime::builder().silos(1, workers).max_batch(8).build();
    register_all(&rt, env.with_service_time(hw.service_time));
    let topology = Topology::layout(sensors, TopologySpec::default());
    let silo_of_org = |_org: usize| Some(SiloId(0));
    provision(&rt, &topology, silo_of_org).expect("provisioning failed");
    let fleet = FleetRefs::build(&rt, &topology, silo_of_org);
    Testbed {
        rt,
        topology,
        fleet,
        store,
    }
}

/// Tears a testbed down with a drain budget scaled to possible backlog.
pub fn teardown(testbed: Testbed) {
    testbed.rt.shutdown_with_drain(Duration::from_secs(15));
}
