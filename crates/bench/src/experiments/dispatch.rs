//! **Dispatch-path microbenchmark.**
//!
//! Unlike the figure experiments, which simulate per-request service time
//! (so throughput is bounded by the modelled hardware), this benchmark
//! uses zero-work handlers: every message costs only the runtime's own
//! dispatch path — reference minting, directory lookup, mailbox push,
//! run-queue scheduling, batch drain, turn execution. Its throughput *is*
//! the scheduler overhead the paper's ingest numbers sit on top of, which
//! makes it the regression canary for `BENCH_dispatch.json`.
//!
//! Three measurements:
//!
//! * **ring** — R rings of L relay actors; each seed message hops around
//!   its ring H times. All dispatches originate *inside* worker turns, so
//!   this exercises the worker-local fast path (and, under the
//!   work-stealing scheduler, the local LIFO deque).
//! * **fanout** — external producer threads `tell` a pool of sink actors
//!   round-robin. Exercises the client/injector dispatch path and the
//!   mailbox push under cross-thread contention.
//! * **fig6 saturation point** — one Figure 6 ingest point well past the
//!   knee (service-time-simulated), recorded so scheduler changes are
//!   visible in the paper workload too.

use std::time::{Duration, Instant};

use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};
use serde::Serialize;

use crate::experiments::common::{build_single_silo, build_single_silo_durable, teardown, SimHw};
use crate::measure::{fmt_f, print_table};
use crate::workload::{run_load, LoadConfig};

/// Worker threads of the benchmark silo (acceptance floor: ≥ 4).
pub const WORKERS: usize = 4;

const RINGS: usize = 4;
const RING_LEN: usize = 64;
const SINKS: usize = 64;
const PRODUCERS: usize = 2;

/// Relay actor: forwards each hop to the next member of its ring.
/// Same-type forwarding needs no `declared_calls` entry (self-type edges
/// are exempt from the topology check). Keys are `u64` (`ring * 1000 +
/// index`) so reference minting costs no allocation — the measurement is
/// the dispatch path, not key construction.
struct Relay {
    next_key: u64,
}

impl Actor for Relay {
    const TYPE_NAME: &'static str = "bench.dispatch.relay";
}

struct Hop {
    remaining: u64,
}

impl Message for Hop {
    type Reply = ();
}

impl Handler<Hop> for Relay {
    fn handle(&mut self, msg: Hop, ctx: &mut ActorContext<'_>) {
        if msg.remaining == 0 {
            return;
        }
        let next = ctx.actor_ref::<Relay>(self.next_key);
        let _ = next.tell(Hop {
            remaining: msg.remaining - 1,
        });
    }
}

/// Sink actor for the fanout measurement: counts and returns.
struct Sink {
    count: u64,
}

impl Actor for Sink {
    const TYPE_NAME: &'static str = "bench.dispatch.sink";
}

struct Inc;

impl Message for Inc {
    type Reply = ();
}

impl Handler<Inc> for Sink {
    fn handle(&mut self, _msg: Inc, _ctx: &mut ActorContext<'_>) {
        self.count += 1;
    }
}

fn ring_key(ring: usize, index: usize) -> u64 {
    (ring * 1000 + index) as u64
}

/// Blocks until `messages_processed` reaches `target` or `deadline` hits.
/// Returns the instant the target was observed.
fn await_processed(rt: &Runtime, target: u64, deadline: Instant) -> Instant {
    loop {
        if rt.metrics().messages_processed >= target {
            return Instant::now();
        }
        assert!(
            Instant::now() < deadline,
            "dispatch bench stalled: {}/{} messages processed",
            rt.metrics().messages_processed,
            target
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// One benchmark record (one scheduler build).
#[derive(Clone, Debug, Serialize)]
pub struct DispatchResult {
    /// Worker threads of the benchmark silo.
    pub workers: usize,
    /// Messages processed per second in the ring (worker-originated
    /// dispatch) measurement — the headline dispatch-path number.
    pub ring_msgs_per_sec: f64,
    /// Total ring messages processed.
    pub ring_msgs: u64,
    /// Messages per second in the fanout (client-originated dispatch)
    /// measurement.
    pub fanout_msgs_per_sec: f64,
    /// Total fanout messages processed.
    pub fanout_msgs: u64,
    /// Sensors offered in the Figure 6 saturation point.
    pub fig6_sensors: usize,
    /// Sustained ingest throughput (req/s) at that point.
    pub fig6_throughput_rps: f64,
    /// The same saturation point with durability *on*: LogStore backing,
    /// tseries engine in group-commit WAL mode (`FsyncPolicy::PerGroup`),
    /// deferred acks. Every acked request's points fsynced before the
    /// ack — the gap to `fig6_throughput_rps` is the residual cost of
    /// real durability after group commit amortizes the fsyncs.
    pub fig6_durable_throughput_rps: f64,
}

/// Ring measurement: seeds one long hop chain per ring and times the
/// runtime draining them.
fn run_ring(quick: bool) -> (f64, u64) {
    let hops: u64 = if quick { 20_000 } else { 120_000 };
    let rt = Runtime::single(WORKERS);
    rt.register(|id| {
        let key: u64 = id.key.to_string().parse().expect("numeric relay key");
        let (ring, idx) = ((key / 1000) as usize, (key % 1000) as usize);
        Relay {
            next_key: ring_key(ring, (idx + 1) % RING_LEN),
        }
    });

    // Pre-activate every relay so activation cost stays out of the
    // steady-state measurement.
    for ring in 0..RINGS {
        for idx in 0..RING_LEN {
            rt.actor_ref::<Relay>(ring_key(ring, idx))
                .tell(Hop { remaining: 0 })
                .expect("warmup hop");
        }
    }
    let warmup = (RINGS * RING_LEN) as u64;
    await_processed(&rt, warmup, Instant::now() + Duration::from_secs(30));

    let start = Instant::now();
    for ring in 0..RINGS {
        rt.actor_ref::<Relay>(ring_key(ring, 0))
            .tell(Hop { remaining: hops })
            .expect("seed hop");
    }
    let total = RINGS as u64 * (hops + 1);
    let end = await_processed(
        &rt,
        warmup + total,
        Instant::now() + Duration::from_secs(600),
    );
    let rate = total as f64 / (end - start).as_secs_f64();
    rt.shutdown();
    (rate, total)
}

/// Fanout measurement: external threads tell sink actors round-robin.
fn run_fanout(quick: bool) -> (f64, u64) {
    let per_producer: u64 = if quick { 40_000 } else { 200_000 };
    let rt = Runtime::single(WORKERS);
    rt.register(|_id| Sink { count: 0 });

    // Pre-activate the sinks.
    for s in 0..SINKS {
        rt.actor_ref::<Sink>(format!("sink-{s}"))
            .tell(Inc)
            .expect("warmup inc");
    }
    let warmup = SINKS as u64;
    await_processed(&rt, warmup, Instant::now() + Duration::from_secs(30));

    let refs: Vec<_> = (0..SINKS)
        .map(|s| rt.actor_ref::<Sink>(format!("sink-{s}")))
        .collect();
    let start = Instant::now();
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let refs: Vec<_> = refs.iter().map(|r| (*r).clone()).collect();
            std::thread::spawn(move || {
                for i in 0..per_producer {
                    let target = &refs[(p as u64 + i) as usize % refs.len()];
                    target.tell(Inc).expect("fanout tell");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("producer thread");
    }
    let total = PRODUCERS as u64 * per_producer;
    let end = await_processed(
        &rt,
        warmup + total,
        Instant::now() + Duration::from_secs(600),
    );
    let rate = total as f64 / (end - start).as_secs_f64();
    rt.shutdown();
    (rate, total)
}

/// One Figure 6 ingest point past the saturation knee.
fn run_fig6_point(quick: bool) -> (usize, f64) {
    let sensors = 2600;
    let secs = if quick { 5 } else { 8 };
    let hw = SimHw::default();
    let testbed = build_single_silo(sensors, hw.large_workers, hw);
    let report = run_load(&testbed.fleet, LoadConfig::sensors(sensors, secs));
    teardown(testbed);
    (sensors, report.throughput.mean)
}

/// The same Figure 6 point on the durable store stack (group-commit
/// WAL, fsync per group, deferred acks).
fn run_fig6_durable_point(quick: bool) -> f64 {
    let sensors = 2600;
    let secs = if quick { 5 } else { 8 };
    let hw = SimHw::default();
    let dir = std::env::temp_dir().join(format!(
        "aodb-bench-dispatch-durable-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create durable bench dir");
    let testbed = build_single_silo_durable(sensors, hw.large_workers, hw, &dir);
    let report = run_load(&testbed.fleet, LoadConfig::sensors(sensors, secs));
    teardown(testbed);
    let _ = std::fs::remove_dir_all(&dir);
    report.throughput.mean
}

/// Runs all four measurements and prints the summary table.
pub fn run(quick: bool) -> DispatchResult {
    println!(
        "\nDispatch microbenchmark — 1 silo × {WORKERS} workers, zero-work handlers{}",
        if quick { " (quick)" } else { "" }
    );
    let (ring_rate, ring_msgs) = run_ring(quick);
    let (fanout_rate, fanout_msgs) = run_fanout(quick);
    let (fig6_sensors, fig6_rps) = run_fig6_point(quick);
    let fig6_durable_rps = run_fig6_durable_point(quick);

    let result = DispatchResult {
        workers: WORKERS,
        ring_msgs_per_sec: ring_rate,
        ring_msgs,
        fanout_msgs_per_sec: fanout_rate,
        fanout_msgs,
        fig6_sensors,
        fig6_throughput_rps: fig6_rps,
        fig6_durable_throughput_rps: fig6_durable_rps,
    };
    print_table(
        "Dispatch path — messages/s (higher is better)",
        &["measurement", "messages", "msgs/s"],
        &[
            vec![
                "ring (worker dispatch)".into(),
                result.ring_msgs.to_string(),
                fmt_f(result.ring_msgs_per_sec),
            ],
            vec![
                "fanout (client dispatch)".into(),
                result.fanout_msgs.to_string(),
                fmt_f(result.fanout_msgs_per_sec),
            ],
            vec![
                format!("fig6 ingest @ {} sensors", result.fig6_sensors),
                "-".into(),
                fmt_f(result.fig6_throughput_rps),
            ],
            vec![
                format!("fig6 durable (group WAL) @ {} sensors", result.fig6_sensors),
                "-".into(),
                fmt_f(result.fig6_durable_throughput_rps),
            ],
        ],
    );
    result
}

/// Suppress dead-code warnings for the sink counter (read by nothing; it
/// exists to give the handler a memory effect).
#[allow(dead_code)]
fn _use_sink_count(s: &Sink) -> u64 {
    s.count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keys_wrap() {
        assert_eq!(ring_key(2, 63), 2063);
        assert_eq!(ring_key(0, 0), 0);
    }
}
