//! **Figure 6 — single-server throughput.**
//!
//! Paper: one m5.large silo; the offered load (simulated sensors, each
//! sending 1 request/s with 20 data points) is swept upward; throughput
//! rises with the number of sensors and saturates at ≈1,800 requests/s.
//!
//! Here: one 2-worker silo with 0.5 ms simulated ingest service time
//! (capacity ≈2,000 requests/s); the same sweep must show the same shape —
//! linear tracking of offered load followed by a plateau at the capacity
//! ceiling.

use serde::Serialize;

use crate::experiments::common::{build_single_silo, teardown, SimHw};
use crate::measure::{fmt_f, print_table, LatencyRow, WindowedThroughput};
use crate::workload::{run_load, LoadConfig};

/// One sweep point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Point {
    /// Simulated sensors (x-axis).
    pub sensors: usize,
    /// Offered rate (requests/s).
    pub offered: f64,
    /// Sustained throughput (the paper's y-axis).
    pub throughput: WindowedThroughput,
    /// Ingest latency at this load.
    pub ingest: LatencyRow,
}

/// Runs the Figure 6 sweep.
pub fn run(quick: bool) -> Vec<Fig6Point> {
    let hw = SimHw::default();
    let sweep: &[usize] = if quick {
        &[200, 1000, 1800, 2600]
    } else {
        &[200, 500, 1000, 1400, 1800, 2200, 2600, 3000]
    };
    let secs = if quick { 6 } else { 10 };
    println!(
        "\nFig 6: single-server throughput — 1 silo × {} workers, \
         service {:?}/ingest (est. capacity {:.0} req/s)",
        hw.large_workers,
        hw.service_time,
        hw.capacity(hw.large_workers)
    );

    let mut points = Vec::with_capacity(sweep.len());
    for &sensors in sweep {
        let testbed = build_single_silo(sensors, hw.large_workers, hw);
        let report = run_load(&testbed.fleet, LoadConfig::sensors(sensors, secs));
        points.push(Fig6Point {
            sensors,
            offered: sensors as f64,
            throughput: report.throughput,
            ingest: report.ingest,
        });
        teardown(testbed);
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.sensors.to_string(),
                fmt_f(p.offered),
                format!(
                    "{} ± {}",
                    fmt_f(p.throughput.mean),
                    fmt_f(p.throughput.std_dev)
                ),
                fmt_f(p.ingest.p50_ms),
                fmt_f(p.ingest.p99_ms),
            ]
        })
        .collect();
    print_table(
        "Figure 6 — single-server throughput (m5.large-class silo)",
        &[
            "sensors",
            "offered req/s",
            "throughput req/s",
            "p50 ms",
            "p99 ms",
        ],
        &rows,
    );
    points
}
