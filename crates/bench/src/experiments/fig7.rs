//! **Figure 7 — scale-out over multiple servers.**
//!
//! Paper: scale factor k runs k m5.xlarge silos and 2,100·k simulated
//! sensors (2,100 = 80 % of the measured m5.large saturation, rounded,
//! scaled by the 1.5× ECU ratio). Throughput must scale close to linearly
//! because organizations are independent and prefer-local placement keeps
//! each organization's traffic on its home silo.
//!
//! Here: identical construction — k silos of 3 workers, organizations
//! pinned round-robin, simulated LAN between silos, 2,100·k sensors.

use aodb_runtime::{NetConfig, PreferLocalPlacement};
use aodb_shm::TopologySpec;
use serde::Serialize;

use crate::experiments::common::{build_testbed, teardown, SimHw};
use crate::measure::{fmt_f, print_table, LatencyRow, WindowedThroughput};
use crate::workload::{run_load, LoadConfig, MixSpec};

/// Sensors per silo at scale factor 1, derived the way the paper derives
/// it: 80 % of single-server saturation (2,000 → 1,400 after the paper's
/// rounding convention applied to our capacity) × 1.5 ECU.
pub fn baseline_sensors_per_silo(hw: &SimHw) -> usize {
    let sat = hw.capacity(hw.large_workers); // ≈ 2000
    let with_headroom = (sat * 0.8 / 100.0).round() * 100.0; // round to 100s
    (with_headroom * 1.5) as usize // ECU ratio m5.large → m5.xlarge
}

/// One scale-factor point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Point {
    /// Scale factor (silos).
    pub scale_factor: usize,
    /// Simulated sensors.
    pub sensors: usize,
    /// Sustained throughput.
    pub throughput: WindowedThroughput,
    /// Ingest latency.
    pub ingest: LatencyRow,
    /// Fraction of messages that crossed silos.
    pub remote_fraction: f64,
}

/// Runs the Figure 7 sweep.
pub fn run(quick: bool) -> Vec<Fig7Point> {
    let hw = SimHw::default();
    let base = baseline_sensors_per_silo(&hw);
    let factors: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };
    let secs = if quick { 6 } else { 10 };
    println!(
        "\nFig 7: scale-out — k silos × {} workers, {base} sensors/silo, LAN between silos",
        hw.xlarge_workers
    );

    let mut points = Vec::with_capacity(factors.len());
    for &sf in factors {
        let sensors = base * sf;
        let testbed = build_testbed(
            sensors,
            sf,
            hw.xlarge_workers,
            hw,
            NetConfig::lan(),
            PreferLocalPlacement,
            TopologySpec::default(),
        );
        let mut config = LoadConfig::sensors(sensors, secs);
        config.generators = (1 + sf / 2).min(4);
        config.mix = MixSpec::INGEST_ONLY;
        let report = run_load(&testbed.fleet, config);
        let metrics = testbed.rt.metrics();
        let total = (metrics.remote_messages + metrics.local_messages).max(1);
        points.push(Fig7Point {
            scale_factor: sf,
            sensors,
            throughput: report.throughput,
            ingest: report.ingest,
            remote_fraction: metrics.remote_messages as f64 / total as f64,
        });
        teardown(testbed);
    }

    let base_tp = points.first().map(|p| p.throughput.mean).unwrap_or(1.0);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scale_factor.to_string(),
                p.sensors.to_string(),
                format!(
                    "{} ± {}",
                    fmt_f(p.throughput.mean),
                    fmt_f(p.throughput.std_dev)
                ),
                format!("{:.2}x", p.throughput.mean / base_tp),
                fmt_f(p.ingest.p50_ms),
                format!("{:.1}%", p.remote_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — scale-out (m5.xlarge-class silos)",
        &[
            "scale",
            "sensors",
            "throughput req/s",
            "speedup",
            "p50 ms",
            "remote msgs",
        ],
        &rows,
    );
    points
}
