//! **Figures 8 & 9 — online query latency percentiles under mixed load.**
//!
//! Paper: one silo serving the 98 % ingest / 1 % live-data / 1 % raw-range
//! mix at 500–2,000 simulated sensors. Figure 8 plots raw-range request
//! latency percentiles (often well below 0.5 s); Figure 9 plots
//! organization live-data percentiles (below ≈1 s at 2,000 sensors);
//! both grow with load and blow up at the 99.9th percentile near
//! saturation.
//!
//! Here: identical mix on a 3-worker silo (capacity ≈3,000 req/s, so
//! 2,000 sensors ≈ 80 % utilization exactly as the paper targets).

use serde::Serialize;

use crate::experiments::common::{build_single_silo, teardown, SimHw};
use crate::measure::{fmt_f, print_table, LatencyRow, WindowedThroughput};
use crate::workload::{run_load, LoadConfig, MixSpec};

/// One load point of the mixed-workload run.
#[derive(Clone, Debug, Serialize)]
pub struct Fig89Point {
    /// Simulated sensors.
    pub sensors: usize,
    /// Sustained total throughput.
    pub throughput: WindowedThroughput,
    /// Figure 8 series: raw-range request latency.
    pub raw: LatencyRow,
    /// Figure 9 series: live-data request latency.
    pub live: LatencyRow,
    /// Ingest latency for context.
    pub ingest: LatencyRow,
}

/// Runs the Figure 8/9 sweep. The same run produces both figures.
pub fn run(quick: bool) -> Vec<Fig89Point> {
    let hw = SimHw::default();
    let sweep: &[usize] = if quick {
        &[500, 2000]
    } else {
        &[500, 1000, 1500, 2000]
    };
    let secs = if quick { 8 } else { 12 };
    println!(
        "\nFig 8/9: query latency under mixed load — 1 silo × {} workers, \
         98% ingest / 1% live / 1% raw",
        hw.xlarge_workers
    );

    let mut points = Vec::with_capacity(sweep.len());
    for &sensors in sweep {
        let testbed = build_single_silo(sensors, hw.xlarge_workers, hw);
        let mut config = LoadConfig::sensors(sensors, secs);
        config.mix = MixSpec::PAPER_MIXED;
        let report = run_load(&testbed.fleet, config);
        points.push(Fig89Point {
            sensors,
            throughput: report.throughput,
            raw: report.raw,
            live: report.live,
            ingest: report.ingest,
        });
        teardown(testbed);
    }

    let latency_rows = |select: fn(&Fig89Point) -> &LatencyRow| {
        points
            .iter()
            .map(|p| {
                let l = select(p);
                vec![
                    p.sensors.to_string(),
                    fmt_f(l.p50_ms),
                    fmt_f(l.p90_ms),
                    fmt_f(l.p95_ms),
                    fmt_f(l.p99_ms),
                    fmt_f(l.p999_ms),
                    l.count.to_string(),
                ]
            })
            .collect::<Vec<_>>()
    };
    let headers = [
        "sensors", "p50 ms", "p90 ms", "p95 ms", "p99 ms", "p99.9 ms", "samples",
    ];
    print_table(
        "Figure 8 — raw sensor-channel time-range request latency",
        &headers,
        &latency_rows(|p| &p.raw),
    );
    print_table(
        "Figure 9 — organization live-data request latency",
        &headers,
        &latency_rows(|p| &p.live),
    );
    points
}
