//! **Ingest-path storage benchmark: KV-blob rewriting vs the columnar
//! time-series engine.**
//!
//! The paper's platform persists each channel as one KV state blob, so
//! every `Ingest` rewrites the channel's entire serialized state — cost
//! per point grows with history, and at-rest storage pays full JSON
//! framing per sample. The `tseries` engine replaces that hot path with
//! delta-of-delta + XOR compression into sealed blocks behind the
//! [`SeriesStore`] seam. This experiment measures both backends on the
//! same workload and records the before/after pair into
//! `BENCH_ingest.json`.
//!
//! Two numbers per backend, plus one engine-only figure:
//!
//! * **points/s** — acked actor-path ingest throughput at equal
//!   durability: ack ⇒ durable on both sides (KV runs
//!   `WritePolicy::EveryChange`; the tseries tail record commits per
//!   append). Channels are configured bare (no subscribers, no
//!   aggregation, no simulated service time) so the measurement isolates
//!   the storage path: dispatch + state mutation + durable append. The
//!   backing store is a [`LogStore`] in both runs (`SyncPolicy::OnDemand`,
//!   i.e. no per-write fsync — the comparison is the write *path*, not
//!   the disk).
//! * **bytes/point** — at-rest footprint of the ingested stream. For the
//!   KV backend that is the final channel state blob (the window holds
//!   every ingested point; JSON framing per `DataPoint`). For tseries it
//!   is every record under the `tseries` namespace after a final seal —
//!   sealed blocks plus the (empty) tail record.
//! * **engine points/s** — direct `append_batch` throughput of the
//!   engine with no actor layer, the ceiling the actor path sits under.
//!
//! The signal is a realistic quantized sensor stream (10 Hz, fixed-step
//! ADC values): XOR compression thrives on shared mantissa bits, which
//! is what lands tseries at ~2 bytes/point. A full-random-mantissa
//! stream (e.g. `sin`) compresses to ~9 bytes/point — that boundary is
//! documented in DESIGN.md §13 and pinned by the recovery tests.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_runtime::Runtime;
use aodb_shm::messages::{ConfigureChannel, Ingest};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{
    FsyncPolicy, Key, LogStore, LogStoreConfig, MemStore, StateStore, SyncPolicy, WalConfig,
};
use serde::Serialize;

use crate::measure::{fmt_f, print_table};

/// Worker threads of the benchmark silo.
const WORKERS: usize = 4;
/// Points per `Ingest` batch (the paper's sensors emit small batches).
const BATCH: usize = 10;

/// One backend's measurement.
#[derive(Serialize, Clone)]
pub struct BackendResult {
    /// `"kv-log"` or `"tseries"`.
    pub backend: String,
    /// Total points acked through the actor path.
    pub points: u64,
    /// Wall-clock seconds from first send to last ack.
    pub elapsed_s: f64,
    /// `points / elapsed_s`.
    pub points_per_sec: f64,
    /// At-rest bytes attributable to the ingested stream.
    pub bytes_at_rest: u64,
    /// `bytes_at_rest / points`.
    pub bytes_per_point: f64,
}

/// The full experiment record written to `BENCH_ingest.json`.
#[derive(Serialize)]
pub struct IngestResult {
    /// Concurrent channels driven.
    pub channels: usize,
    /// Acked points per channel.
    pub points_per_channel: u64,
    /// Points per `Ingest` message.
    pub batch: usize,
    /// Baseline: per-ingest KV state-blob rewrite (the paper's model).
    pub kv: BackendResult,
    /// Columnar engine behind the `SeriesStore` seam.
    pub tseries: BackendResult,
    /// Columnar engine in group-commit WAL mode, `FsyncPolicy::OnDemand`
    /// — the same durability class as the `tseries` row (no per-write
    /// fsync), but appends write compact delta frames through the
    /// committer and acks defer onto the group commit instead of
    /// blocking the turn. The acceptance row for the group-commit
    /// speedup at `EveryAppend`-equivalent durability.
    pub tseries_wal: BackendResult,
    /// Group-commit WAL with `FsyncPolicy::PerGroup`: real fsync per
    /// group — durability *on*. One fsync is amortized over every frame
    /// in the group, which is what keeps this row in the same decade as
    /// the no-fsync rows instead of collapsing to disk latency.
    pub tseries_wal_fsync: BackendResult,
    /// `tseries.points_per_sec / kv.points_per_sec`.
    pub speedup_points_per_sec: f64,
    /// `tseries_wal.points_per_sec / tseries.points_per_sec` — the
    /// group-commit win at equal durability.
    pub wal_speedup_points_per_sec: f64,
    /// Direct engine `append_batch` throughput, no actor layer.
    pub engine_points_per_sec: f64,
}

/// The quantized 10 Hz sensor signal: fixed-step ADC values around a
/// baseline, the workload class the compressor is designed for.
fn sensor_point(i: u64) -> DataPoint {
    DataPoint {
        ts_ms: i * 100,
        value: 20.0 + (i % 16) as f64 * 0.25,
    }
}

fn temp_store(tag: &str) -> (std::path::PathBuf, Arc<dyn StateStore>) {
    let dir = std::env::temp_dir().join(format!("aodb-bench-ingest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        LogStore::open(LogStoreConfig {
            dir: dir.clone(),
            compact_threshold: 16 * 1024 * 1024,
            sync: SyncPolicy::OnDemand,
            group_commit: None,
        })
        .expect("open bench log store"),
    );
    (dir, store)
}

/// Rounds of in-flight batches the driver keeps outstanding. A real
/// sensor fleet never barriers on one round's acks before emitting the
/// next 100 ms of samples; a bounded window models that steady stream
/// while still verifying every ack. The window is what lets the
/// group-commit WAL show its coalescing (a full barrier would cap every
/// group at `channels` frames) — and it is shared by *all* backends, so
/// the rows stay comparable.
const PIPELINE_ROUNDS: usize = 16;

/// Drives `channels × points_per_channel` acked ingests and returns the
/// elapsed wall-clock seconds. Each round sends one batch per channel;
/// up to [`PIPELINE_ROUNDS`] rounds stay in flight, and every ack is
/// verified before the measurement ends.
fn drive_ingest(rt: &Runtime, channels: &[String], points_per_channel: u64) -> f64 {
    for c in channels {
        rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
            .call(ConfigureChannel {
                org: "org-bench".into(),
                sensor: "org-bench/s-0".into(),
                threshold: Threshold::default(),
                subscribers: Vec::new(),
                aggregates: false,
            })
            .expect("configure channel");
    }
    let rounds = points_per_channel / BATCH as u64;
    let start = Instant::now();
    let mut inflight: std::collections::VecDeque<Vec<aodb_runtime::Promise<u32>>> =
        std::collections::VecDeque::with_capacity(PIPELINE_ROUNDS + 1);
    let drain_round = |round: Vec<aodb_runtime::Promise<u32>>| {
        for p in round {
            let accepted = p
                .wait_for(Duration::from_secs(60))
                .expect("ingest batch acked");
            assert_eq!(accepted as usize, BATCH, "batch partially rejected");
        }
    };
    for round in 0..rounds {
        let mut sent = Vec::with_capacity(channels.len());
        for c in channels {
            let points: Vec<DataPoint> = (0..BATCH as u64)
                .map(|i| sensor_point(round * BATCH as u64 + i))
                .collect();
            sent.push(
                rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .ask(Ingest::new(points))
                    .expect("send ingest"),
            );
        }
        inflight.push_back(sent);
        if inflight.len() > PIPELINE_ROUNDS {
            drain_round(inflight.pop_front().expect("non-empty window"));
        }
    }
    for round in inflight {
        drain_round(round);
    }
    start.elapsed().as_secs_f64()
}

/// Sums the value bytes of every record whose key starts with `prefix`.
fn stored_bytes(store: &Arc<dyn StateStore>, prefix: &[u8]) -> u64 {
    store
        .scan_prefix(prefix)
        .expect("scan store")
        .iter()
        .map(|(_, v)| v.len() as u64)
        .sum()
}

/// Baseline run: the KV model with per-ingest durability — every ingest
/// rewrites the channel's full state blob (`WritePolicy::EveryChange`,
/// matching the tseries path's ack ⇒ durable guarantee; the paper's
/// `OnDeactivate` default keeps acked points only in memory). The window
/// retains every point (capacity = points_per_channel) so both backends
/// store the same stream.
fn run_kv(channels: usize, points_per_channel: u64) -> BackendResult {
    let (dir, store) = temp_store("kv");
    let rt = Runtime::single(WORKERS);
    let mut env = ShmEnv::paper_default(Arc::clone(&store));
    env.window_capacity = points_per_channel as usize;
    env.data_policy = aodb_core::WritePolicy::EveryChange;
    register_all(&rt, env);
    let keys: Vec<String> = (0..channels)
        .map(|i| format!("org-bench/s-{i}/c-0"))
        .collect();
    let elapsed = drive_ingest(&rt, &keys, points_per_channel);
    rt.shutdown();
    let bytes = stored_bytes(&store, &Key::partition_prefix("actor-state", "shm.channel"));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let points = channels as u64 * points_per_channel;
    BackendResult {
        backend: "kv-log".into(),
        points,
        elapsed_s: elapsed,
        points_per_sec: points as f64 / elapsed,
        bytes_at_rest: bytes,
        bytes_per_point: bytes as f64 / points as f64,
    }
}

/// Columnar run: same workload through the `SeriesStore` seam.
fn run_tseries(channels: usize, points_per_channel: u64) -> BackendResult {
    let (dir, store) = temp_store("ts");
    let engine = Arc::new(TsStore::with_defaults(Arc::clone(&store)));
    let rt = Runtime::single(WORKERS);
    register_all(
        &rt,
        ShmEnv::paper_default(Arc::clone(&store))
            .with_series_store(Arc::clone(&engine) as Arc<dyn SeriesStore>),
    );
    let keys: Vec<String> = (0..channels)
        .map(|i| format!("org-bench/s-{i}/c-0"))
        .collect();
    let elapsed = drive_ingest(&rt, &keys, points_per_channel);
    rt.shutdown();
    // At rest: seal the residual tails, then count every tseries record
    // (sealed blocks + the now-empty tail records).
    for k in &keys {
        engine
            .seal(&format!("shm.channel/{k}"))
            .expect("final seal");
    }
    let bytes = stored_bytes(&store, &Key::namespace_prefix("tseries"));
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let points = channels as u64 * points_per_channel;
    BackendResult {
        backend: "tseries".into(),
        points,
        elapsed_s: elapsed,
        points_per_sec: points as f64 / elapsed,
        bytes_at_rest: bytes,
        bytes_per_point: bytes as f64 / points as f64,
    }
}

/// Group-commit WAL run: same workload, engine in WAL mode. Appends
/// write delta frames through the committer thread and ingest acks ride
/// the group commit ([`ShmEnv::deferred_acks`]).
fn run_tseries_wal(
    channels: usize,
    points_per_channel: u64,
    fsync_policy: FsyncPolicy,
    backend: &str,
) -> BackendResult {
    let (dir, store) = temp_store(backend);
    let wal_config = WalConfig {
        fsync_policy,
        ..WalConfig::default()
    };
    let (env, engine) =
        ShmEnv::tseries_wal_default(Arc::clone(&store), dir.join("ingest.wal"), wal_config)
            .expect("open bench wal");
    let rt = Runtime::single(WORKERS);
    register_all(&rt, env);
    let keys: Vec<String> = (0..channels)
        .map(|i| format!("org-bench/s-{i}/c-0"))
        .collect();
    let elapsed = drive_ingest(&rt, &keys, points_per_channel);
    rt.shutdown();
    // At rest: fold outstanding WAL deltas into the backing store, seal
    // the residual tails, then count the tseries records — the same
    // footprint measurement as the plain tseries row (the WAL itself is
    // transient by construction: checkpoint resets it).
    engine.checkpoint().expect("final checkpoint");
    for k in &keys {
        engine
            .seal(&format!("shm.channel/{k}"))
            .expect("final seal");
    }
    let bytes = stored_bytes(&store, &Key::namespace_prefix("tseries"));
    drop(engine);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    let points = channels as u64 * points_per_channel;
    BackendResult {
        backend: backend.into(),
        points,
        elapsed_s: elapsed,
        points_per_sec: points as f64 / elapsed,
        bytes_at_rest: bytes,
        bytes_per_point: bytes as f64 / points as f64,
    }
}

/// Direct engine throughput: `append_batch` on a [`MemStore`] backing,
/// no actors — the ceiling the acked actor path sits under.
fn run_engine_direct(total_points: u64) -> f64 {
    let engine = TsStore::new(
        Arc::new(MemStore::new()) as Arc<dyn StateStore>,
        TsConfig::default(),
    );
    let start = Instant::now();
    let mut i = 0u64;
    while i < total_points {
        let chunk: Vec<(u64, f64)> = (i..i + BATCH as u64)
            .map(|j| {
                let p = sensor_point(j);
                (p.ts_ms, p.value)
            })
            .collect();
        engine.append_batch("bench", &chunk, b"").expect("append");
        i += BATCH as u64;
    }
    total_points as f64 / start.elapsed().as_secs_f64()
}

/// Runs the experiment. `quick` shrinks the workload for CI smoke runs.
pub fn run(quick: bool) -> IngestResult {
    let (channels, points_per_channel, engine_points) = if quick {
        (4usize, 2_000u64, 100_000u64)
    } else {
        (8usize, 5_000u64, 1_000_000u64)
    };
    println!("\n== ingest: KV-blob rewrite vs columnar tseries engine ==");
    println!(
        "   {channels} channels × {points_per_channel} points, {BATCH}-point batches, \
         quantized 10 Hz sensor signal, LogStore backing (no per-write fsync)"
    );

    let kv = run_kv(channels, points_per_channel);
    let tseries = run_tseries(channels, points_per_channel);
    let tseries_wal = run_tseries_wal(
        channels,
        points_per_channel,
        FsyncPolicy::OnDemand,
        "tseries-wal",
    );
    let tseries_wal_fsync = run_tseries_wal(
        channels,
        points_per_channel,
        FsyncPolicy::PerGroup,
        "tseries-wal-fsync",
    );
    let engine_points_per_sec = run_engine_direct(engine_points);
    let speedup = tseries.points_per_sec / kv.points_per_sec;
    let wal_speedup = tseries_wal.points_per_sec / tseries.points_per_sec;

    let rows: Vec<Vec<String>> = [&kv, &tseries, &tseries_wal, &tseries_wal_fsync]
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                fmt_f(r.points_per_sec),
                format!("{:.2}", r.bytes_per_point),
                format!("{:.3}", r.elapsed_s),
            ]
        })
        .collect();
    print_table(
        "ingest backends",
        &["backend", "points/s", "bytes/point", "elapsed s"],
        &rows,
    );
    println!(
        "   speedup ×{speedup:.1} (tseries/kv), ×{wal_speedup:.1} (wal/tseries, equal \
         durability); direct engine append: {} points/s",
        fmt_f(engine_points_per_sec)
    );

    IngestResult {
        channels,
        points_per_channel,
        batch: BATCH,
        kv,
        tseries,
        tseries_wal,
        tseries_wal_fsync,
        speedup_points_per_sec: speedup,
        wal_speedup_points_per_sec: wal_speedup,
        engine_points_per_sec,
    }
}
