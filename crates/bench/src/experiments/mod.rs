//! Experiment drivers reproducing the paper's evaluation (Figures 6–9)
//! and the design-choice ablations from DESIGN.md.

pub mod ablations;
pub mod common;
pub mod dispatch;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod ingest;

pub use common::{build_single_silo, build_testbed, teardown, SimHw, Testbed};
