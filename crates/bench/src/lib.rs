//! # aodb-bench — benchmark harness for the EDBT 2019 reproduction
//!
//! Reimplements the paper's .NET benchmarking tool (Section 6.1) and the
//! four evaluation figures, plus ablation experiments over the modeling
//! principles:
//!
//! * [`workload`] — simulated sensor fleet: open-loop request generation
//!   at 1 request/s/sensor × 10 points/channel, with the 98/1/1 mixed
//!   workload of Figures 8–9.
//! * [`measure`] — windowed throughput with the paper's drop-first/last
//!   method, latency percentile tables.
//! * [`experiments`] — Figure 6 (single-server saturation), Figure 7
//!   (scale-out), Figures 8/9 (query latency percentiles), and the
//!   placement / durability / granularity / constraint ablations.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p aodb-bench --release --bin repro -- all
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod measure;
pub mod workload;
