//! Measurement utilities: windowed throughput accounting and result
//! tables, following the paper's method (Section 6.1): the run is split
//! into fixed windows, the first and last windows are dropped, and the
//! mean ± standard deviation over the remaining windows is reported.

use aodb_runtime::Percentiles;
use serde::Serialize;

/// Mean and standard deviation over per-window throughput samples with the
/// paper's first/last-window trimming.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct WindowedThroughput {
    /// Mean completed requests/s over the kept windows.
    pub mean: f64,
    /// Standard deviation across the kept windows (the paper's error
    /// bars).
    pub std_dev: f64,
    /// Number of windows kept.
    pub windows: usize,
}

/// Computes trimmed windowed throughput from per-window completion counts.
pub fn windowed_throughput(per_window: &[u64], window_secs: f64) -> WindowedThroughput {
    let kept: &[u64] = if per_window.len() > 2 {
        &per_window[1..per_window.len() - 1]
    } else {
        per_window
    };
    if kept.is_empty() {
        return WindowedThroughput::default();
    }
    let rates: Vec<f64> = kept.iter().map(|&c| c as f64 / window_secs).collect();
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
    WindowedThroughput {
        mean,
        std_dev: var.sqrt(),
        windows: rates.len(),
    }
}

/// Latency percentiles rendered for a table row (values in ms).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyRow {
    /// Median (ms).
    pub p50_ms: f64,
    /// 90th percentile (ms).
    pub p90_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Mean (ms).
    pub mean_ms: f64,
    /// Sample count.
    pub count: u64,
}

impl From<Percentiles> for LatencyRow {
    fn from(p: Percentiles) -> Self {
        LatencyRow {
            p50_ms: p.p50 as f64 / 1000.0,
            p90_ms: p.p90 as f64 / 1000.0,
            p95_ms: p.p95 as f64 / 1000.0,
            p99_ms: p.p99 as f64 / 1000.0,
            p999_ms: p.p999 as f64 / 1000.0,
            mean_ms: p.mean / 1000.0,
            count: p.count,
        }
    }
}

/// Pretty-prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_first_and_last_windows() {
        // Warmup and teardown windows are outliers and must be dropped.
        let tp = windowed_throughput(&[5, 100, 102, 98, 3], 1.0);
        assert_eq!(tp.windows, 3);
        assert!((tp.mean - 100.0).abs() < 0.1, "mean = {}", tp.mean);
        assert!(tp.std_dev < 2.0);
    }

    #[test]
    fn short_runs_keep_everything() {
        let tp = windowed_throughput(&[50, 60], 2.0);
        assert_eq!(tp.windows, 2);
        assert!((tp.mean - 27.5).abs() < 0.1);
    }

    #[test]
    fn empty_input() {
        let tp = windowed_throughput(&[], 1.0);
        assert_eq!(tp.mean, 0.0);
        assert_eq!(tp.windows, 0);
    }

    #[test]
    fn latency_row_converts_to_ms() {
        let p = Percentiles {
            p50: 1500,
            p90: 2000,
            p95: 2500,
            p99: 5000,
            p999: 50_000,
            max: 60_000,
            mean: 1800.0,
            count: 10,
        };
        let row = LatencyRow::from(p);
        assert_eq!(row.p50_ms, 1.5);
        assert_eq!(row.p999_ms, 50.0);
        assert_eq!(row.mean_ms, 1.8);
    }
}
