//! The benchmarking workload generator — our reimplementation of the
//! paper's .NET command-line tool (Section 6.1).
//!
//! Sensors are simulated open-loop: every simulated sensor emits one
//! request per second carrying 10 data points per physical channel
//! (modelling 10 Hz sampling). A configurable request mix adds the two
//! online query types of Figures 8–9: organization live-data requests and
//! raw time-range requests (98 % / 1 % / 1 % at the paper's setting).
//!
//! Requests are fired fire-and-forget with completion callbacks, so the
//! generator never blocks on the platform: measured latency includes
//! queueing delay, which is exactly what produces the saturation and tail
//! behaviour the paper plots.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_runtime::{ActorRef, Collector, Histogram, ReplyTo, Runtime, SiloId};
use aodb_shm::messages::{GetLiveData, Ingest, QueryRange};
use aodb_shm::types::DataPoint;
use aodb_shm::{Organization, PhysicalSensorChannel, Topology};

use crate::measure::{windowed_throughput, LatencyRow, WindowedThroughput};

/// Pre-resolved actor references for the whole simulated fleet, built once
/// so the request hot loop performs no key formatting or registry lookups.
pub struct FleetRefs {
    /// Per sensor: its physical channel references.
    pub sensors: Vec<Vec<ActorRef<PhysicalSensorChannel>>>,
    /// Organization references (live-data targets).
    pub orgs: Vec<ActorRef<Organization>>,
    /// Flat channel list (raw-range targets).
    pub channels: Vec<ActorRef<PhysicalSensorChannel>>,
}

impl FleetRefs {
    /// Resolves references for `topology`. `silo_of_org` gives each
    /// organization's gateway silo (as in provisioning), so requests
    /// originate silo-locally under prefer-local deployment.
    pub fn build(
        rt: &Runtime,
        topology: &Topology,
        silo_of_org: impl Fn(usize) -> Option<SiloId>,
    ) -> FleetRefs {
        let mut per_org_sensors: Vec<Vec<Vec<ActorRef<PhysicalSensorChannel>>>> =
            Vec::with_capacity(topology.orgs.len());
        let mut orgs = Vec::with_capacity(topology.orgs.len());
        let mut channels = Vec::new();
        for (org_idx, org) in topology.orgs.iter().enumerate() {
            let handle = match silo_of_org(org_idx) {
                Some(silo) => rt.handle_on(silo),
                None => rt.handle(),
            };
            orgs.push(handle.actor_ref::<Organization>(org.key.as_str()));
            let mut org_sensors = Vec::with_capacity(org.sensors.len());
            for sensor in &org.sensors {
                let refs: Vec<ActorRef<PhysicalSensorChannel>> = sensor
                    .physical
                    .iter()
                    .map(|c| handle.actor_ref::<PhysicalSensorChannel>(c.as_str()))
                    .collect();
                channels.extend(refs.iter().cloned());
                org_sensors.push(refs);
            }
            per_org_sensors.push(org_sensors);
        }
        // Interleave sensors round-robin across organizations. Real
        // sensors report independently; without this, the generator's
        // sequential sweep would hit each organization's (and under
        // prefer-local placement, each silo's) sensors in one contiguous
        // burst, fabricating queueing spikes that no real fleet exhibits.
        let total: usize = per_org_sensors.iter().map(Vec::len).sum();
        let mut sensors = Vec::with_capacity(total);
        let max_len = per_org_sensors.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            for org_sensors in &per_org_sensors {
                if let Some(refs) = org_sensors.get(i) {
                    sensors.push(refs.clone());
                }
            }
        }
        FleetRefs {
            sensors,
            orgs,
            channels,
        }
    }
}

/// Request mix in per-mille; the remainder is sensor ingest.
#[derive(Clone, Copy, Debug)]
pub struct MixSpec {
    /// Live-data requests per 1000 (paper: 10).
    pub live_per_mille: u32,
    /// Raw-range requests per 1000 (paper: 10).
    pub raw_per_mille: u32,
}

impl MixSpec {
    /// Ingest only (Figures 6–7).
    pub const INGEST_ONLY: MixSpec = MixSpec {
        live_per_mille: 0,
        raw_per_mille: 0,
    };
    /// The paper's 98 % / 1 % / 1 % mix (Figures 8–9).
    pub const PAPER_MIXED: MixSpec = MixSpec {
        live_per_mille: 10,
        raw_per_mille: 10,
    };
}

/// One load phase.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Total sensor-request rate (requests/s across the whole fleet; the
    /// paper's "N simulated sensors" ≡ rate N at 1 request/s/sensor).
    pub rate_per_sec: f64,
    /// Total run time (including warmup/cooldown windows that get
    /// trimmed).
    pub duration: Duration,
    /// Window length for throughput accounting.
    pub window: Duration,
    /// Data points per physical channel per request (paper: 10).
    pub points_per_channel: usize,
    /// Query mix.
    pub mix: MixSpec,
    /// Generator threads.
    pub generators: usize,
}

impl LoadConfig {
    /// Ingest-only load at `sensors` simulated sensors for `secs` seconds.
    pub fn sensors(sensors: usize, secs: u64) -> LoadConfig {
        LoadConfig {
            rate_per_sec: sensors as f64,
            duration: Duration::from_secs(secs),
            window: Duration::from_secs(1),
            points_per_channel: 10,
            mix: MixSpec::INGEST_ONLY,
            generators: 2,
        }
    }
}

/// Outcome of one load phase.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests offered by the generators.
    pub offered: u64,
    /// Requests completed (all replies received).
    pub completed: u64,
    /// Trimmed windowed completion throughput.
    pub throughput: WindowedThroughput,
    /// Ingest request latency (send → both channel acks).
    pub ingest: LatencyRow,
    /// Live-data request latency.
    pub live: LatencyRow,
    /// Raw-range request latency.
    pub raw: LatencyRow,
    /// Requests that failed to dispatch.
    pub send_errors: u64,
}

struct Shared {
    completed: AtomicU64,
    offered: AtomicU64,
    send_errors: AtomicU64,
    recording: AtomicBool,
    ingest_hist: Histogram,
    live_hist: Histogram,
    raw_hist: Histogram,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs one open-loop load phase against a provisioned fleet.
pub fn run_load(fleet: &FleetRefs, config: LoadConfig) -> LoadReport {
    assert!(!fleet.sensors.is_empty(), "fleet has no sensors");
    let shared = Arc::new(Shared {
        completed: AtomicU64::new(0),
        offered: AtomicU64::new(0),
        send_errors: AtomicU64::new(0),
        recording: AtomicBool::new(false),
        ingest_hist: Histogram::new(),
        live_hist: Histogram::new(),
        raw_hist: Histogram::new(),
    });

    let start = Instant::now();
    let gens = config.generators.max(1);
    let mut threads = Vec::with_capacity(gens);
    for g in 0..gens {
        let shared = Arc::clone(&shared);
        let sensors: Vec<Vec<ActorRef<PhysicalSensorChannel>>> = fleet
            .sensors
            .iter()
            .skip(g)
            .step_by(gens)
            .cloned()
            .collect();
        let orgs = fleet.orgs.clone();
        let channels: Vec<ActorRef<PhysicalSensorChannel>> = fleet
            .channels
            .iter()
            .skip(g)
            .step_by(gens)
            .cloned()
            .collect();
        threads.push(std::thread::spawn(move || {
            generator_loop(&shared, &sensors, &orgs, &channels, config, g, start)
        }));
    }

    // Monitor thread: window the completion counter for throughput stats,
    // and gate latency recording to the interior of the run (the paper's
    // drop-first/last-window method applied to latencies too).
    let window_secs = config.window.as_secs_f64();
    let n_windows = (config.duration.as_secs_f64() / window_secs).ceil() as usize;
    let mut per_window = Vec::with_capacity(n_windows);
    let mut last_completed = 0u64;
    for w in 0..n_windows {
        if w == 1 {
            shared.recording.store(true, Ordering::Release);
        }
        if w + 1 == n_windows {
            shared.recording.store(false, Ordering::Release);
        }
        let next = start + config.window.mul_f64((w + 1) as f64);
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        let completed = shared.completed.load(Ordering::Relaxed);
        per_window.push(completed - last_completed);
        last_completed = completed;
    }
    shared.recording.store(false, Ordering::Release);
    for t in threads {
        let _ = t.join();
    }
    // Let the last in-flight requests finish for the completion counter.
    std::thread::sleep(Duration::from_millis(100));

    LoadReport {
        offered: shared.offered.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        throughput: windowed_throughput(&per_window, window_secs),
        ingest: LatencyRow::from(shared.ingest_hist.snapshot().percentiles()),
        live: LatencyRow::from(shared.live_hist.snapshot().percentiles()),
        raw: LatencyRow::from(shared.raw_hist.snapshot().percentiles()),
        send_errors: shared.send_errors.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn generator_loop(
    shared: &Arc<Shared>,
    sensors: &[Vec<ActorRef<PhysicalSensorChannel>>],
    orgs: &[ActorRef<Organization>],
    channels: &[ActorRef<PhysicalSensorChannel>],
    config: LoadConfig,
    seed: usize,
    start: Instant,
) {
    if sensors.is_empty() {
        return;
    }
    let gens = config.generators.max(1) as f64;
    let interval = Duration::from_secs_f64(gens / config.rate_per_sec.max(1.0));
    let mut rng: u64 = 0x9E37_79B9 ^ ((seed as u64) << 32 | 0x5EED);
    let mut next = start;
    let mut sensor_idx = 0usize;
    let deadline = start + config.duration;

    while Instant::now() < deadline {
        let now = Instant::now();
        if next > now {
            std::thread::sleep((next - now).min(Duration::from_millis(1)));
            continue;
        }
        next += interval;

        let draw = xorshift(&mut rng) % 1000;
        let ts_ms = start.elapsed().as_millis() as u64;
        if draw < config.mix.live_per_mille as u64 {
            fire_live(shared, orgs, &mut rng);
        } else if draw < (config.mix.live_per_mille + config.mix.raw_per_mille) as u64 {
            fire_raw(shared, channels, &mut rng, ts_ms);
        } else {
            fire_ingest(
                shared,
                &sensors[sensor_idx],
                config.points_per_channel,
                ts_ms,
                &mut rng,
            );
            sensor_idx += 1;
            if sensor_idx >= sensors.len() {
                sensor_idx = 0;
            }
        }
        shared.offered.fetch_add(1, Ordering::Relaxed);
    }
}

fn fire_ingest(
    shared: &Arc<Shared>,
    channels: &[ActorRef<PhysicalSensorChannel>],
    points_per_channel: usize,
    ts_ms: u64,
    rng: &mut u64,
) {
    let sent_at = Instant::now();
    let shared2 = Arc::clone(shared);
    // One sensor request completes when every channel acked (the paper's
    // "task calls a sensor grain and inserts 10 data points" per channel).
    let collector = Collector::new(channels.len(), move |_acks: Vec<u32>| {
        if shared2.recording.load(Ordering::Acquire) {
            shared2.ingest_hist.record_duration(sent_at.elapsed());
        }
        shared2.completed.fetch_add(1, Ordering::Relaxed);
    });
    for channel in channels {
        let base = (xorshift(rng) % 1000) as f64 / 100.0;
        let points: Vec<DataPoint> = (0..points_per_channel)
            .map(|i| DataPoint {
                ts_ms: ts_ms + (i as u64) * 100, // 10 Hz sampling
                value: base + (i as f64) * 0.01,
            })
            .collect();
        if channel
            .ask_with(Ingest::new(points), collector.slot())
            .is_err()
        {
            shared.send_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn fire_live(shared: &Arc<Shared>, orgs: &[ActorRef<Organization>], rng: &mut u64) {
    if orgs.is_empty() {
        return;
    }
    let org = &orgs[(xorshift(rng) as usize) % orgs.len()];
    let sent_at = Instant::now();
    let shared2 = Arc::clone(shared);
    let reply = ReplyTo::Callback(Box::new(move |_report| {
        if shared2.recording.load(Ordering::Acquire) {
            shared2.live_hist.record_duration(sent_at.elapsed());
        }
        shared2.completed.fetch_add(1, Ordering::Relaxed);
    }));
    if org
        .ask_with(GetLiveData { reply }, ReplyTo::Ignore)
        .is_err()
    {
        shared.send_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn fire_raw(
    shared: &Arc<Shared>,
    channels: &[ActorRef<PhysicalSensorChannel>],
    rng: &mut u64,
    ts_ms: u64,
) {
    if channels.is_empty() {
        return;
    }
    let channel = &channels[(xorshift(rng) as usize) % channels.len()];
    let sent_at = Instant::now();
    let shared2 = Arc::clone(shared);
    let reply = ReplyTo::Callback(Box::new(move |_points: Vec<DataPoint>| {
        if shared2.recording.load(Ordering::Acquire) {
            shared2.raw_hist.record_duration(sent_at.elapsed());
        }
        shared2.completed.fetch_add(1, Ordering::Relaxed);
    }));
    let query = QueryRange {
        from_ms: ts_ms.saturating_sub(60_000),
        to_ms: ts_ms,
        limit: 1_000,
    };
    if channel.ask_with(query, reply).is_err() {
        shared.send_errors.fetch_add(1, Ordering::Relaxed);
    }
}
