//! The `Cow` actor.
//!
//! Per Section 4.1, cows are actors and their collar sensor data is
//! *encapsulated inside* the cow (aggregation relationship in Figure 3):
//! collars are bound to exactly one cow and never act independently, so a
//! separate collar actor would only add messaging.
//!
//! The cow maintains its recent collar window, a down-sampled trajectory
//! (functional requirement 2), geo-fence violations, ownership, and its
//! slaughter status. It participates in ownership-transfer transactions
//! (2PC) and workflows.

use std::collections::VecDeque;

use aodb_core::{Decide, IdempotenceGuard, Prepare, StepResult, TxnLock, Vote, WorkStep};
use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::types::{
    Breed, ChainEvent, ChainEventKind, CollarReading, CowStatus, GeoFence, GeoPoint,
};

/// Registers a cow at a farm.
pub struct InitCow {
    /// Owning farmer key.
    pub farmer: String,
    /// Breed.
    pub breed: Breed,
    /// Birth timestamp (ms).
    pub born_ms: u64,
}
impl Message for InitCow {
    type Reply = ();
}

/// Collar sensor batch (continuous geo/health stream).
pub struct CollarReport {
    /// The readings, oldest first.
    pub readings: Vec<CollarReading>,
}
impl Message for CollarReport {
    type Reply = u32;
}

/// Installs (or clears) the cow's pasture geo-fence.
pub struct SetFence(pub Option<GeoFence>);
impl Message for SetFence {
    type Reply = ();
}

/// The cow's recorded trajectory, oldest first.
#[derive(Clone, Copy)]
pub struct GetTrajectory {
    /// Max points (0 = all retained).
    pub limit: usize,
}
impl Message for GetTrajectory {
    type Reply = Vec<(u64, GeoPoint)>;
}

/// Structured snapshot of the cow.
#[derive(Clone, Copy)]
pub struct GetCowInfo;
impl Message for GetCowInfo {
    type Reply = CowInfo;
}

/// Reply of [`GetCowInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CowInfo {
    /// Current owner (farmer key).
    pub farmer: String,
    /// Breed.
    pub breed: Breed,
    /// Birth timestamp.
    pub born_ms: u64,
    /// Lifecycle status.
    pub status: CowStatus,
    /// Latest collar reading.
    pub last_reading: Option<CollarReading>,
    /// Total collar readings ingested.
    pub total_readings: u64,
    /// Geo-fence violations observed.
    pub fence_violations: u64,
    /// Ownership/lifecycle event log (provenance for tracing).
    pub events: Vec<ChainEvent>,
}

/// Marks the cow slaughtered; replies with the info the slaughterhouse
/// needs to derive cuts. Fails (None) when the cow is already slaughtered.
pub struct MarkSlaughtered {
    /// The slaughterhouse performing the operation.
    pub slaughterhouse: String,
    /// Operation time.
    pub ts_ms: u64,
}
impl Message for MarkSlaughtered {
    type Reply = Option<CowInfo>;
}

#[derive(Serialize, Deserialize)]
pub(crate) struct CowState {
    farmer: String,
    breed: Breed,
    born_ms: u64,
    status: CowStatus,
    fence: Option<GeoFence>,
    fence_violations: u64,
    /// Grid cell currently recorded in the location index.
    #[serde(default)]
    location_cell: Option<String>,
    window: VecDeque<CollarReading>,
    trajectory: VecDeque<(u64, GeoPoint)>,
    total_readings: u64,
    events: Vec<ChainEvent>,
    transfer_guard: IdempotenceGuard,
}

impl Default for CowState {
    fn default() -> Self {
        CowState {
            farmer: String::new(),
            breed: Breed::Angus,
            born_ms: 0,
            status: CowStatus::Alive,
            fence: None,
            fence_violations: 0,
            location_cell: None,
            window: VecDeque::new(),
            trajectory: VecDeque::new(),
            total_readings: 0,
            events: Vec::new(),
            transfer_guard: IdempotenceGuard::new(),
        }
    }
}

/// The cow actor.
pub struct Cow {
    state: aodb_core::Persisted<CowState>,
    lock: TxnLock<String>, // pending new owner
    window_capacity: usize,
    trajectory_capacity: usize,
}

impl Cow {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Cow {
            state: env.persisted_stream(Self::TYPE_NAME, &id.key),
            lock: TxnLock::new(),
            window_capacity: env.window_capacity,
            trajectory_capacity: env.trajectory_capacity,
        });
    }

    fn info(&self, _key: &str) -> CowInfo {
        let s = self.state.get();
        CowInfo {
            farmer: s.farmer.clone(),
            breed: s.breed,
            born_ms: s.born_ms,
            status: s.status,
            last_reading: s.window.back().copied(),
            total_readings: s.total_readings,
            fence_violations: s.fence_violations,
            events: s.events.clone(),
        }
    }
}

impl Actor for Cow {
    const TYPE_NAME: &'static str = "cattle.cow";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Collar reports maintain the geo location index
        // (`geo::update_location_index`).
        const CALLS: &[aodb_runtime::CallDecl] =
            &[aodb_runtime::CallDecl::send("aodb.index-shard")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitCow> for Cow {
    fn handle(&mut self, msg: InitCow, ctx: &mut ActorContext<'_>) {
        let key = ctx.key().to_string();
        self.state.mutate(|s| {
            s.farmer = msg.farmer.clone();
            s.breed = msg.breed;
            s.born_ms = msg.born_ms;
            s.events.push(ChainEvent {
                entity: key,
                kind: ChainEventKind::Born,
                actor: msg.farmer,
                ts_ms: msg.born_ms,
            });
        });
    }
}

impl Handler<CollarReport> for Cow {
    fn handle(&mut self, msg: CollarReport, ctx: &mut ActorContext<'_>) -> u32 {
        let window_capacity = self.window_capacity;
        let trajectory_capacity = self.trajectory_capacity;
        let accepted = self.state.mutate(|s| {
            let mut accepted = 0;
            for r in &msg.readings {
                if let Some(fence) = &s.fence {
                    if !fence.contains(&r.position) {
                        s.fence_violations += 1;
                    }
                }
                s.window.push_back(*r);
                if s.window.len() > window_capacity {
                    s.window.pop_front();
                }
                s.trajectory.push_back((r.ts_ms, r.position));
                if s.trajectory.len() > trajectory_capacity {
                    s.trajectory.pop_front();
                }
                s.total_readings += 1;
                accepted += 1;
            }
            accepted
        });
        // Keep the spatial index pointing at the cow's current grid cell
        // (eventually consistent; see `crate::geo`).
        if let Some(last) = msg.readings.last() {
            let new_cell = crate::geo::grid_cell(&last.position);
            let old_cell = self.state.get().location_cell.clone();
            if old_cell.as_deref() != Some(new_cell.as_str()) {
                crate::geo::update_location_index(
                    ctx,
                    &ctx.key().to_string(),
                    old_cell.as_deref(),
                    &new_cell,
                );
                self.state.mutate(|s| s.location_cell = Some(new_cell));
            }
        }
        accepted
    }
}

impl Handler<SetFence> for Cow {
    fn handle(&mut self, msg: SetFence, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.fence = msg.0);
    }
}

impl Handler<GetTrajectory> for Cow {
    fn handle(&mut self, msg: GetTrajectory, _ctx: &mut ActorContext<'_>) -> Vec<(u64, GeoPoint)> {
        let s = self.state.get();
        let skip = if msg.limit == 0 || s.trajectory.len() <= msg.limit {
            0
        } else {
            s.trajectory.len() - msg.limit
        };
        s.trajectory.iter().skip(skip).copied().collect()
    }
}

impl Handler<GetCowInfo> for Cow {
    fn handle(&mut self, _msg: GetCowInfo, ctx: &mut ActorContext<'_>) -> CowInfo {
        self.info(&ctx.key().to_string())
    }
}

impl Handler<MarkSlaughtered> for Cow {
    fn handle(&mut self, msg: MarkSlaughtered, ctx: &mut ActorContext<'_>) -> Option<CowInfo> {
        if self.state.get().status == CowStatus::Slaughtered {
            return None; // a cow can only be slaughtered once (FR 3)
        }
        let key = ctx.key().to_string();
        self.state.mutate(|s| {
            s.status = CowStatus::Slaughtered;
            s.events.push(ChainEvent {
                entity: key.clone(),
                kind: ChainEventKind::Slaughtered,
                actor: msg.slaughterhouse.clone(),
                ts_ms: msg.ts_ms,
            });
        });
        Some(self.info(&key))
    }
}

// ------------------------------------------------ ownership transfer (2PC)

/// Transaction op schema: `{"action": "set-owner", "new_owner": "..."}`.
impl Handler<Prepare> for Cow {
    fn handle(&mut self, msg: Prepare, _ctx: &mut ActorContext<'_>) -> Vote {
        if self.state.get().status == CowStatus::Slaughtered {
            return Vote::No("cow already slaughtered".into());
        }
        let Some(new_owner) = msg.op.0.get("new_owner").and_then(|v| v.as_str()) else {
            return Vote::No("malformed op: missing new_owner".into());
        };
        self.lock.try_prepare(msg.txn, new_owner.to_string())
    }
}

impl Handler<Decide> for Cow {
    fn handle(&mut self, msg: Decide, ctx: &mut ActorContext<'_>) {
        if let Some(new_owner) = self.lock.decide(&msg.txn, msg.commit) {
            let key = ctx.key().to_string();
            self.state.mutate(|s| {
                let old = std::mem::replace(&mut s.farmer, new_owner);
                let _ = old;
                s.events.push(ChainEvent {
                    entity: key.clone(),
                    kind: ChainEventKind::OwnershipTransferred,
                    actor: s.farmer.clone(),
                    ts_ms: 0,
                });
            });
        }
    }
}

// -------------------------------------------- ownership transfer (workflow)

/// Workflow step schema: `{"action": "set-owner", "new_owner": "..."}`.
impl Handler<WorkStep> for Cow {
    fn handle(&mut self, msg: WorkStep, ctx: &mut ActorContext<'_>) -> StepResult {
        let Some(new_owner) = msg
            .payload
            .get("new_owner")
            .and_then(|v| v.as_str())
            .map(str::to_string)
        else {
            return StepResult::Failed("malformed step: missing new_owner".into());
        };
        let key = ctx.key().to_string();
        // The idempotence-token insertion must itself be durable: if it
        // went through get_mut_untracked() and the guard rejected the
        // replay, the turn could end with the token unpersisted and a
        // later replay would double-apply.
        let fresh = self
            .state
            .mutate(|s| s.transfer_guard.first_time(&msg.idempotence));
        if fresh {
            self.state.mutate(|s| {
                if s.farmer != new_owner {
                    s.farmer = new_owner.clone();
                    s.events.push(ChainEvent {
                        entity: key.clone(),
                        kind: ChainEventKind::OwnershipTransferred,
                        actor: new_owner.clone(),
                        ts_ms: 0,
                    });
                }
            });
        }
        StepResult::Done
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{
        assert_codec_roundtrip, breed, chain_event, collar_reading, cow_status, geo_fence,
        geo_point, idempotence_guard, key,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any cow state survives the persistence codec unchanged — the
        /// widest state in the workspace (collar window, trajectory,
        /// events, geo-fence, idempotence guard).
        #[test]
        fn cow_state_roundtrips(
            (farmer, breed, born_ms, status, fence) in (
                key(),
                breed(),
                any::<u64>(),
                cow_status(),
                proptest::option::of(geo_fence()),
            ),
            (fence_violations, location_cell, window, trajectory) in (
                any::<u64>(),
                proptest::option::of(key()),
                proptest::collection::vec(collar_reading(), 0..5),
                proptest::collection::vec((any::<u64>(), geo_point()), 0..5),
            ),
            (total_readings, events, transfer_guard) in (
                any::<u64>(),
                proptest::collection::vec(chain_event(), 0..5),
                idempotence_guard(),
            ),
        ) {
            assert_codec_roundtrip(&CowState {
                farmer,
                breed,
                born_ms,
                status,
                fence,
                fence_violations,
                location_cell,
                window: window.into(),
                trajectory: trajectory.into(),
                total_readings,
                events,
                transfer_guard,
            });
        }
    }
}
