//! `Distributor` and `Delivery` actors.
//!
//! Figure 3: a distributor (e.g. a logistics company) manages many
//! delivery actors; each delivery tracks one transport of meat cuts from a
//! source to a destination with a vehicle. On arrival the delivery
//! notifies every transported cut, extending its itinerary (tracking,
//! functional requirement 4).

use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::meatcut::{AddItinerary, MeatCut};
use crate::types::ItineraryEntry;

/// Initializes a distributor.
pub struct InitDistributor {
    /// Display name.
    pub name: String,
}
impl Message for InitDistributor {
    type Reply = ();
}

/// Creates a delivery under this distributor; replies with the delivery
/// actor key.
pub struct CreateDelivery {
    /// Cut keys being moved.
    pub cuts: Vec<String>,
    /// Origin holder key.
    pub from: String,
    /// Destination holder key.
    pub to: String,
    /// Vehicle identifier.
    pub vehicle: String,
}
impl Message for CreateDelivery {
    type Reply = String;
}

/// Deliveries created by a distributor.
#[derive(Clone, Copy)]
pub struct ListDeliveries;
impl Message for ListDeliveries {
    type Reply = Vec<String>;
}

#[derive(Default, Serialize, Deserialize)]
struct DistributorState {
    name: String,
    deliveries: Vec<String>,
    next_delivery: u64,
}

/// The distributor actor.
pub struct Distributor {
    state: aodb_core::Persisted<DistributorState>,
}

impl Distributor {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Distributor {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Distributor {
    const TYPE_NAME: &'static str = "cattle.distributor";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Shipping creates the delivery actor.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("cattle.delivery")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitDistributor> for Distributor {
    fn handle(&mut self, msg: InitDistributor, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.name = msg.name);
    }
}

impl Handler<CreateDelivery> for Distributor {
    fn handle(&mut self, msg: CreateDelivery, ctx: &mut ActorContext<'_>) -> String {
        let me = ctx.key().to_string();
        let delivery_key = self.state.mutate(|s| {
            let key = format!("{me}/d-{}", s.next_delivery);
            s.next_delivery += 1;
            s.deliveries.push(key.clone());
            key
        });
        let _ = ctx
            .actor_ref::<Delivery>(delivery_key.as_str())
            .tell(InitDelivery {
                distributor: me,
                cuts: msg.cuts,
                from: msg.from,
                to: msg.to,
                vehicle: msg.vehicle,
            });
        delivery_key
    }
}

impl Handler<ListDeliveries> for Distributor {
    fn handle(&mut self, _msg: ListDeliveries, _ctx: &mut ActorContext<'_>) -> Vec<String> {
        self.state.get().deliveries.clone()
    }
}

// ---------------------------------------------------------------- delivery

/// Delivery lifecycle status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DeliveryStatus {
    /// Created, not yet departed.
    #[default]
    Planned,
    /// On the road.
    InTransit,
    /// Completed.
    Delivered,
}

/// Initializes a delivery (sent by its distributor).
pub struct InitDelivery {
    /// Managing distributor key.
    pub distributor: String,
    /// Transported cut keys.
    pub cuts: Vec<String>,
    /// Origin holder.
    pub from: String,
    /// Destination holder.
    pub to: String,
    /// Vehicle identifier.
    pub vehicle: String,
}
impl Message for InitDelivery {
    type Reply = ();
}

/// Marks departure.
pub struct Depart {
    /// Departure time (ms).
    pub ts_ms: u64,
}
impl Message for Depart {
    type Reply = ();
}

/// Marks arrival: transfers every transported cut to the destination.
pub struct Arrive {
    /// Arrival time (ms).
    pub ts_ms: u64,
}
impl Message for Arrive {
    type Reply = ();
}

/// Delivery snapshot.
#[derive(Clone, Copy)]
pub struct GetDeliveryInfo;
impl Message for GetDeliveryInfo {
    type Reply = DeliveryInfo;
}

/// Reply of [`GetDeliveryInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeliveryInfo {
    /// Managing distributor.
    pub distributor: String,
    /// Transported cuts.
    pub cuts: Vec<String>,
    /// Origin holder.
    pub from: String,
    /// Destination holder.
    pub to: String,
    /// Vehicle identifier.
    pub vehicle: String,
    /// Lifecycle status.
    pub status: DeliveryStatus,
    /// Departure time, when departed.
    pub departed_ms: Option<u64>,
    /// Arrival time, when delivered.
    pub arrived_ms: Option<u64>,
}

#[derive(Default, Serialize, Deserialize)]
struct DeliveryState {
    distributor: String,
    cuts: Vec<String>,
    from: String,
    to: String,
    vehicle: String,
    status: DeliveryStatus,
    departed_ms: Option<u64>,
    arrived_ms: Option<u64>,
}

/// The delivery actor.
pub struct Delivery {
    state: aodb_core::Persisted<DeliveryState>,
}

impl Delivery {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Delivery {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Delivery {
    const TYPE_NAME: &'static str = "cattle.delivery";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Arrival stamps the itinerary of every carried cut.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("cattle.meat-cut")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitDelivery> for Delivery {
    fn handle(&mut self, msg: InitDelivery, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.distributor = msg.distributor;
            s.cuts = msg.cuts;
            s.from = msg.from;
            s.to = msg.to;
            s.vehicle = msg.vehicle;
        });
    }
}

impl Handler<Depart> for Delivery {
    fn handle(&mut self, msg: Depart, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            if s.status == DeliveryStatus::Planned {
                s.status = DeliveryStatus::InTransit;
                s.departed_ms = Some(msg.ts_ms);
            }
        });
    }
}

impl Handler<Arrive> for Delivery {
    fn handle(&mut self, msg: Arrive, ctx: &mut ActorContext<'_>) {
        let delivery_key = ctx.key().to_string();
        let already_delivered = self.state.get().status == DeliveryStatus::Delivered;
        if already_delivered {
            return; // idempotent
        }
        self.state.mutate(|s| {
            s.status = DeliveryStatus::Delivered;
            s.arrived_ms = Some(msg.ts_ms);
        });
        let s = self.state.get();
        for cut in &s.cuts {
            let _ = ctx
                .actor_ref::<MeatCut>(cut.as_str())
                .tell(AddItinerary(ItineraryEntry {
                    delivery: delivery_key.clone(),
                    from: s.from.clone(),
                    to: s.to.clone(),
                    arrived_ms: msg.ts_ms,
                }));
        }
    }
}

impl Handler<GetDeliveryInfo> for Delivery {
    fn handle(&mut self, _msg: GetDeliveryInfo, _ctx: &mut ActorContext<'_>) -> DeliveryInfo {
        let s = self.state.get();
        DeliveryInfo {
            distributor: s.distributor.clone(),
            cuts: s.cuts.clone(),
            from: s.from.clone(),
            to: s.to.clone(),
            vehicle: s.vehicle.clone(),
            status: s.status,
            departed_ms: s.departed_ms,
            arrived_ms: s.arrived_ms,
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key};
    use proptest::prelude::*;

    fn delivery_status() -> impl Strategy<Value = DeliveryStatus> {
        prop_oneof![
            Just(DeliveryStatus::Planned),
            Just(DeliveryStatus::InTransit),
            Just(DeliveryStatus::Delivered),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any distributor state survives the persistence codec unchanged.
        #[test]
        fn distributor_state_roundtrips(
            name in key(),
            deliveries in proptest::collection::vec(key(), 0..5),
            next_delivery in any::<u64>(),
        ) {
            assert_codec_roundtrip(&DistributorState { name, deliveries, next_delivery });
        }

        /// Any delivery state survives the persistence codec unchanged.
        #[test]
        fn delivery_state_roundtrips(
            (distributor, cuts, from, to) in (
                key(),
                proptest::collection::vec(key(), 0..5),
                key(),
                key(),
            ),
            (vehicle, status, departed_ms, arrived_ms) in (
                key(),
                delivery_status(),
                proptest::option::of(any::<u64>()),
                proptest::option::of(any::<u64>()),
            ),
        ) {
            assert_codec_roundtrip(&DeliveryState {
                distributor,
                cuts,
                from,
                to,
                vehicle,
                status,
                departed_ms,
                arrived_ms,
            });
        }
    }
}
