//! Shared construction environment for the cattle actor factories.

use std::sync::Arc;

use aodb_core::{Persisted, PersistentState, WritePolicy};
use aodb_runtime::ActorKey;
use aodb_store::StateStore;

/// Store + policies handed to every cattle actor factory. Registry data
/// (ownership, provenance) is written immediately; sensor streams follow
/// the windowed policy, mirroring the SHM platform's two durability
/// classes.
#[derive(Clone)]
pub struct CattleEnv {
    /// The grain-state store.
    pub store: Arc<dyn StateStore>,
    /// Policy for registry/provenance state.
    pub registry_policy: WritePolicy,
    /// Policy for collar-stream state.
    pub stream_policy: WritePolicy,
    /// Collar readings kept in a cow's in-memory window.
    pub window_capacity: usize,
    /// Trajectory points retained per cow.
    pub trajectory_capacity: usize,
}

impl CattleEnv {
    /// Sensible defaults for tests and examples.
    pub fn new(store: Arc<dyn StateStore>) -> Self {
        CattleEnv {
            store,
            registry_policy: WritePolicy::EveryChange,
            stream_policy: WritePolicy::OnDeactivate,
            window_capacity: 8_640, // a day of 10-second collar fixes
            trajectory_capacity: 4_096,
        }
    }

    /// Persisted cell following the registry policy.
    pub fn persisted_registry<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(
            Arc::clone(&self.store),
            type_name,
            key,
            self.registry_policy,
        )
    }

    /// Persisted cell following the stream policy.
    pub fn persisted_stream<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(Arc::clone(&self.store), type_name, key, self.stream_policy)
    }
}
