//! The `Farmer` actor: one farm unit (an individual farmer or a
//! cooperative managed as a unit, per the paper's footnote in §4.1).
//!
//! Owns the herd membership list and the pasture geo-fences, and
//! participates in ownership-transfer transactions and workflows.

use aodb_core::{Decide, IdempotenceGuard, Prepare, StepResult, TxnLock, Vote, WorkStep};
use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::types::GeoFence;

/// Initializes a farm unit.
pub struct InitFarmer {
    /// Display name.
    pub name: String,
}
impl Message for InitFarmer {
    type Reply = ();
}

/// Adds a cow to the herd (registration or purchase settlement).
pub struct AddCow(pub String);
impl Message for AddCow {
    type Reply = ();
}

/// The herd, sorted.
#[derive(Clone, Copy)]
pub struct ListCows;
impl Message for ListCows {
    type Reply = Vec<String>;
}

/// Installs a named pasture fence.
pub struct SetPastureFence {
    /// Pasture name.
    pub pasture: String,
    /// The fence geometry.
    pub fence: GeoFence,
}
impl Message for SetPastureFence {
    type Reply = ();
}

/// Looks up a named pasture fence.
pub struct GetPastureFence(pub String);
impl Message for GetPastureFence {
    type Reply = Option<GeoFence>;
}

#[derive(Default, Serialize, Deserialize)]
struct FarmerState {
    name: String,
    cows: Vec<String>,
    pastures: Vec<(String, GeoFence)>,
    transfer_guard: IdempotenceGuard,
}

/// Pending transfer op decoded from a transaction payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) enum HerdChange {
    Add(String),
    Remove(String),
}

/// The farmer actor.
pub struct Farmer {
    state: aodb_core::Persisted<FarmerState>,
    lock: TxnLock<HerdChange>,
}

impl Farmer {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Farmer {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
            lock: TxnLock::new(),
        });
    }

    fn apply(&mut self, change: &HerdChange) {
        self.state.mutate(|s| match change {
            HerdChange::Add(cow) => {
                if !s.cows.contains(cow) {
                    s.cows.push(cow.clone());
                }
            }
            HerdChange::Remove(cow) => s.cows.retain(|c| c != cow),
        });
    }
}

impl Actor for Farmer {
    const TYPE_NAME: &'static str = "cattle.farmer";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitFarmer> for Farmer {
    fn handle(&mut self, msg: InitFarmer, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.name = msg.name);
    }
}

impl Handler<AddCow> for Farmer {
    fn handle(&mut self, msg: AddCow, _ctx: &mut ActorContext<'_>) {
        self.apply(&HerdChange::Add(msg.0));
    }
}

impl Handler<ListCows> for Farmer {
    fn handle(&mut self, _msg: ListCows, _ctx: &mut ActorContext<'_>) -> Vec<String> {
        let mut cows = self.state.get().cows.clone();
        cows.sort();
        cows
    }
}

impl Handler<SetPastureFence> for Farmer {
    fn handle(&mut self, msg: SetPastureFence, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            if let Some(slot) = s.pastures.iter_mut().find(|(p, _)| p == &msg.pasture) {
                slot.1 = msg.fence;
            } else {
                s.pastures.push((msg.pasture, msg.fence));
            }
        });
    }
}

impl Handler<GetPastureFence> for Farmer {
    fn handle(&mut self, msg: GetPastureFence, _ctx: &mut ActorContext<'_>) -> Option<GeoFence> {
        self.state
            .get()
            .pastures
            .iter()
            .find(|(p, _)| p == &msg.0)
            .map(|(_, f)| *f)
    }
}

// ----------------------------------------------------- transaction support

fn decode_herd_change(op: &serde_json::Value) -> Result<HerdChange, String> {
    let cow = op
        .get("cow")
        .and_then(|v| v.as_str())
        .ok_or("malformed op: missing cow")?
        .to_string();
    match op.get("action").and_then(|v| v.as_str()) {
        Some("add-cow") => Ok(HerdChange::Add(cow)),
        Some("remove-cow") => Ok(HerdChange::Remove(cow)),
        other => Err(format!("unknown herd action: {other:?}")),
    }
}

/// Transaction op schema: `{"action": "add-cow"|"remove-cow", "cow": …}`.
impl Handler<Prepare> for Farmer {
    fn handle(&mut self, msg: Prepare, _ctx: &mut ActorContext<'_>) -> Vote {
        let change = match decode_herd_change(&msg.op.0) {
            Ok(c) => c,
            Err(e) => return Vote::No(e),
        };
        if let HerdChange::Remove(cow) = &change {
            if !self.state.get().cows.contains(cow) {
                return Vote::No(format!("cow {cow} is not in this herd"));
            }
        }
        self.lock.try_prepare(msg.txn, change)
    }
}

impl Handler<Decide> for Farmer {
    fn handle(&mut self, msg: Decide, _ctx: &mut ActorContext<'_>) {
        if let Some(change) = self.lock.decide(&msg.txn, msg.commit) {
            self.apply(&change);
        }
    }
}

/// Workflow step schema: same as the transaction op.
impl Handler<WorkStep> for Farmer {
    fn handle(&mut self, msg: WorkStep, _ctx: &mut ActorContext<'_>) -> StepResult {
        let change = match decode_herd_change(&msg.payload) {
            Ok(c) => c,
            Err(e) => return StepResult::Failed(e),
        };
        // Durable idempotence: record the token through mutate() so a
        // replay-rejecting turn still persists the guard state.
        let fresh = self
            .state
            .mutate(|s| s.transfer_guard.first_time(&msg.idempotence));
        if fresh {
            self.apply(&change);
        }
        StepResult::Done
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, geo_fence, idempotence_guard, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any farmer state survives the persistence codec unchanged —
        /// including the transfer-idempotence guard that keeps workflow
        /// resubmission exactly-once across crashes.
        #[test]
        fn farmer_state_roundtrips(
            name in key(),
            cows in proptest::collection::vec(key(), 0..5),
            pastures in proptest::collection::vec((key(), geo_fence()), 0..4),
            transfer_guard in idempotence_guard(),
        ) {
            assert_codec_roundtrip(&FarmerState { name, cows, pastures, transfer_guard });
        }
    }
}
