//! Spatial indexing of cow locations.
//!
//! The paper's challenge list (§2.3) explicitly includes "spatial queries
//! for cow locations". The AODB answer: a secondary index (maintained by
//! the generic [`aodb_core::IndexShard`] actors) over *grid cells* — each
//! cow's collar stream keeps the index entry for its current cell up to
//! date (eventually consistent, like all IoT location data), and a
//! proximity query unions the postings of the cells covering the search
//! area.

use aodb_core::{IndexShard, IndexUpdate};
use aodb_runtime::{ActorContext, Collector, Promise, RuntimeHandle, SendError};

use crate::types::GeoPoint;

/// Name of the location index.
pub const LOCATION_INDEX: &str = "cow-location";
/// Shards of the location index. All writers and readers must agree.
pub const LOCATION_BUCKETS: u32 = 16;
/// Grid cell edge in degrees (~1.1 km of latitude).
pub const CELL_DEG: f64 = 0.01;

/// The grid cell containing `p`.
pub fn grid_cell(p: &GeoPoint) -> String {
    let lat = (p.lat / CELL_DEG).floor() as i64;
    let lon = (p.lon / CELL_DEG).floor() as i64;
    format!("g:{lat}:{lon}")
}

/// The cells within `radius` cells (Chebyshev) of the cell containing
/// `p` — the search cover for a proximity query.
pub fn covering_cells(p: &GeoPoint, radius: i64) -> Vec<String> {
    let lat = (p.lat / CELL_DEG).floor() as i64;
    let lon = (p.lon / CELL_DEG).floor() as i64;
    let mut cells = Vec::with_capacity(((2 * radius + 1) * (2 * radius + 1)) as usize);
    for dlat in -radius..=radius {
        for dlon in -radius..=radius {
            cells.push(format!("g:{}:{}", lat + dlat, lon + dlon));
        }
    }
    cells
}

fn shard_of(value: &str) -> String {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in value.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{LOCATION_INDEX}:{}", hash % LOCATION_BUCKETS as u64)
}

/// Index maintenance used by the `Cow` actor from inside its turn:
/// moves `cow` from `old_cell` to `new_cell` (eventual consistency).
pub(crate) fn update_location_index(
    ctx: &ActorContext<'_>,
    cow: &str,
    old_cell: Option<&str>,
    new_cell: &str,
) {
    // One message per touched shard; old and new cell may share one.
    let new_shard = shard_of(new_cell);
    match old_cell {
        Some(old) if shard_of(old) == new_shard => {
            let _ = ctx.actor_ref::<IndexShard>(new_shard).tell(IndexUpdate {
                index: LOCATION_INDEX.into(),
                remove: Some(old.to_string()),
                add: Some(new_cell.to_string()),
                entity: cow.to_string(),
            });
        }
        Some(old) => {
            let _ = ctx
                .actor_ref::<IndexShard>(shard_of(old))
                .tell(IndexUpdate {
                    index: LOCATION_INDEX.into(),
                    remove: Some(old.to_string()),
                    add: None,
                    entity: cow.to_string(),
                });
            let _ = ctx.actor_ref::<IndexShard>(new_shard).tell(IndexUpdate {
                index: LOCATION_INDEX.into(),
                remove: None,
                add: Some(new_cell.to_string()),
                entity: cow.to_string(),
            });
        }
        None => {
            let _ = ctx.actor_ref::<IndexShard>(new_shard).tell(IndexUpdate {
                index: LOCATION_INDEX.into(),
                remove: None,
                add: Some(new_cell.to_string()),
                entity: cow.to_string(),
            });
        }
    }
}

/// Finds the cows currently indexed within `radius_cells` grid cells of
/// `center`. The promise yields the (deduplicated, sorted) cow keys.
pub fn cows_near(
    handle: &RuntimeHandle,
    center: &GeoPoint,
    radius_cells: i64,
) -> Result<Promise<Vec<String>>, SendError> {
    let cells = covering_cells(center, radius_cells);
    let (sink, out) = aodb_runtime::ReplyTo::promise();
    // The collector's completion closure flattens and deduplicates the
    // per-cell postings before resolving the caller's promise.
    let collector = Collector::new(cells.len(), move |nested: Vec<Vec<String>>| {
        let mut cows: Vec<String> = nested.into_iter().flatten().collect();
        cows.sort();
        cows.dedup();
        sink.deliver(cows);
    });
    for cell in &cells {
        handle
            .try_actor_ref::<IndexShard>(shard_of(cell))?
            .ask_with(
                aodb_core::IndexLookup {
                    index: LOCATION_INDEX.into(),
                    value: cell.clone(),
                },
                collector.slot(),
            )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cell_is_stable_and_distinct() {
        let a = GeoPoint {
            lat: 55.4812,
            lon: 8.6823,
        };
        let b = GeoPoint {
            lat: 55.4813,
            lon: 8.6824,
        }; // same cell
        let c = GeoPoint {
            lat: 55.4912,
            lon: 8.6823,
        }; // different lat cell
        assert_eq!(grid_cell(&a), grid_cell(&b));
        assert_ne!(grid_cell(&a), grid_cell(&c));
    }

    #[test]
    fn negative_coordinates_floor_correctly() {
        let p = GeoPoint {
            lat: -0.001,
            lon: -0.001,
        };
        assert_eq!(grid_cell(&p), "g:-1:-1");
        let q = GeoPoint {
            lat: 0.001,
            lon: 0.001,
        };
        assert_eq!(grid_cell(&q), "g:0:0");
    }

    #[test]
    fn covering_cells_counts() {
        let p = GeoPoint { lat: 1.0, lon: 2.0 };
        assert_eq!(covering_cells(&p, 0).len(), 1);
        assert_eq!(covering_cells(&p, 1).len(), 9);
        assert_eq!(covering_cells(&p, 2).len(), 25);
        assert!(covering_cells(&p, 1).contains(&grid_cell(&p)));
    }
}
