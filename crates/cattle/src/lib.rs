//! # aodb-cattle — the beef-cattle tracking & tracing data platform
//!
//! Case study 2 of the EDBT 2019 paper: a multi-tenant supply-chain
//! platform connecting farmers, slaughterhouses, distributors, retailers,
//! and consumers, built on the AODB layer. It implements **both** actor
//! models the paper contrasts:
//!
//! * **Model A (Figure 3)** — every entity an actor: [`Farmer`], [`Cow`]
//!   (collar readings encapsulated inside), [`Slaughterhouse`],
//!   [`MeatCut`], [`Distributor`], [`Delivery`], [`Retailer`],
//!   [`MeatProduct`]. Tracing is a graph walk across actors
//!   ([`trace_product`]).
//! * **Model B (Figure 5)** — meat cuts as *versioned non-actor objects*
//!   ([`CutHolder`] + [`aodb_core::Versioned`]): transfers copy the
//!   object, reads are local, provenance travels with the object.
//!
//! Ownership transfer (the Section 4.4 constraint example) is implemented
//! twice: atomically via 2PC ([`transfer_cow_txn`]) and eventually via a
//! retried idempotent workflow ([`transfer_cow_workflow`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cow;
pub mod distribution;
mod env;
pub mod farmer;
pub mod geo;
pub mod meatcut;
pub mod model_b;
pub mod retail;
pub mod slaughterhouse;
pub mod tracing;
pub mod transfer;
pub mod types;

#[cfg(test)]
pub(crate) mod test_props;

mod platform;

pub use cow::{Cow, CowInfo};
pub use distribution::{Delivery, DeliveryStatus, Distributor};
pub use env::CattleEnv;
pub use farmer::Farmer;
pub use meatcut::{CutInfo, MeatCut};
pub use model_b::CutHolder;
pub use platform::{register_all, CattleClient};
pub use retail::{MeatProduct, ProductInfo, Retailer};
pub use slaughterhouse::{Slaughterhouse, CUT_TYPES};
pub use tracing::{trace_product, track_cut, CutTrace, TraceError, TraceReport};
pub use transfer::{transfer_cow_txn, transfer_cow_workflow};

/// The static call topology of every cattle-tracking actor type: one row
/// per actor, with the outbound edges from
/// [`aodb_runtime::Actor::declared_calls`]. Input to the `aodb-analysis`
/// call-graph extraction.
pub fn call_topology() -> Vec<aodb_runtime::ActorTopology> {
    use aodb_runtime::ActorTopology;
    vec![
        ActorTopology::of::<Cow>(),
        ActorTopology::of::<Farmer>(),
        ActorTopology::of::<Slaughterhouse>(),
        ActorTopology::of::<MeatCut>(),
        ActorTopology::of::<Distributor>(),
        ActorTopology::of::<Delivery>(),
        ActorTopology::of::<Retailer>(),
        ActorTopology::of::<MeatProduct>(),
        ActorTopology::of::<CutHolder>(),
    ]
}
