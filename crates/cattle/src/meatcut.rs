//! The `MeatCut` actor — model A (Figure 3), where meat cuts are actors.
//!
//! Section 4.3 discusses the cost of this choice: every read of cut
//! information is a message exchange. The `granularity` ablation bench
//! contrasts this model with the versioned-object model B in
//! [`crate::model_b`].

use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::types::{ItineraryEntry, MeatCutData};

/// Creates the cut (sent by the slaughterhouse).
pub struct InitMeatCut(pub MeatCutData);
impl Message for InitMeatCut {
    type Reply = ();
}

/// Appends a completed transport leg (sent by `Delivery` actors).
pub struct AddItinerary(pub ItineraryEntry);
impl Message for AddItinerary {
    type Reply = ();
}

/// Links the cut into a consumer product (sent by retailers).
pub struct SetProduct(pub String);
impl Message for SetProduct {
    type Reply = ();
}

/// Full cut snapshot: provenance + tracking.
#[derive(Clone, Copy)]
pub struct GetCutInfo;
impl Message for GetCutInfo {
    type Reply = CutInfo;
}

/// Reply of [`GetCutInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CutInfo {
    /// Cut payload (cow, slaughterhouse, type, weight).
    pub data: MeatCutData,
    /// Completed transport legs, oldest first.
    pub itinerary: Vec<ItineraryEntry>,
    /// Current holder (slaughterhouse, distributor, or retailer key).
    pub holder: String,
    /// Product this cut became part of, if any.
    pub product: Option<String>,
}

#[derive(Default, Serialize, Deserialize)]
struct CutState {
    data: Option<MeatCutData>,
    itinerary: Vec<ItineraryEntry>,
    holder: String,
    product: Option<String>,
}

/// The meat-cut actor (model A).
pub struct MeatCut {
    state: aodb_core::Persisted<CutState>,
}

impl MeatCut {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| MeatCut {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for MeatCut {
    const TYPE_NAME: &'static str = "cattle.meat-cut";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitMeatCut> for MeatCut {
    fn handle(&mut self, msg: InitMeatCut, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.holder = msg.0.slaughterhouse.clone();
            s.data = Some(msg.0);
        });
    }
}

impl Handler<AddItinerary> for MeatCut {
    fn handle(&mut self, msg: AddItinerary, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.holder = msg.0.to.clone();
            s.itinerary.push(msg.0);
        });
    }
}

impl Handler<SetProduct> for MeatCut {
    fn handle(&mut self, msg: SetProduct, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.product = Some(msg.0));
    }
}

impl Handler<GetCutInfo> for MeatCut {
    fn handle(&mut self, _msg: GetCutInfo, _ctx: &mut ActorContext<'_>) -> CutInfo {
        let s = self.state.get();
        CutInfo {
            data: s.data.clone().unwrap_or(MeatCutData {
                cow: String::new(),
                slaughterhouse: String::new(),
                cut_type: String::new(),
                weight_kg: 0.0,
            }),
            itinerary: s.itinerary.clone(),
            holder: s.holder.clone(),
            product: s.product.clone(),
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, itinerary_entry, key, meat_cut_data};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any meat-cut state survives the persistence codec unchanged.
        #[test]
        fn cut_state_roundtrips(
            data in proptest::option::of(meat_cut_data()),
            itinerary in proptest::collection::vec(itinerary_entry(), 0..5),
            holder in key(),
            product in proptest::option::of(key()),
        ) {
            assert_codec_roundtrip(&CutState { data, itinerary, holder, product });
        }
    }
}
