//! Model B (Figure 5): meat cuts as **versioned non-actor objects**.
//!
//! The paper's alternative model for frequently accessed inanimate
//! entities (Section 4.3): instead of a `MeatCut` actor that every
//! participant must message, each responsible actor holds its own
//! *version* of the cut object. Transfers copy the object to the next
//! holder (bumping the version and recording provenance); reads are local
//! state access. The `granularity` ablation bench measures the resulting
//! trade-off: fewer messages and more read concurrency versus copy
//! overhead and redundancy.
//!
//! One generic [`CutHolder`] actor type plays every chain role here
//! (slaughterhouse, distributor, retailer); the role lives in the key.

use std::collections::BTreeMap;

use aodb_core::Versioned;
use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::types::MeatCutData;

/// Creates a cut object at this holder (version 0).
pub struct CreateCutB {
    /// Stable entity id of the cut.
    pub entity: String,
    /// Cut payload.
    pub data: MeatCutData,
}
impl Message for CreateCutB {
    type Reply = ();
}

/// Transfers the holder's current version of `entity` to holder `to`.
/// Replies `false` when this holder has no live version of the entity.
pub struct TransferCutB {
    /// The cut entity id.
    pub entity: String,
    /// Destination holder key.
    pub to: String,
    /// Hand-over time.
    pub ts_ms: u64,
}
impl Message for TransferCutB {
    type Reply = bool;
}

/// Receives a copied version from the previous holder.
pub struct ReceiveCutB(pub Versioned<MeatCutData>);
impl Message for ReceiveCutB {
    type Reply = ();
}

/// Local read of the holder's version of `entity` — **no further
/// messaging**, this is the whole point of model B.
pub struct GetLocalCut(pub String);
impl Message for GetLocalCut {
    type Reply = Option<Versioned<MeatCutData>>;
}

/// Updates the local version's payload (e.g. trimming weight), which is a
/// purely local mutation in model B.
pub struct UpdateLocalCut {
    /// The cut entity id.
    pub entity: String,
    /// New weight.
    pub weight_kg: f64,
}
impl Message for UpdateLocalCut {
    type Reply = bool;
}

/// Number of cut versions (live + historical) this holder retains.
#[derive(Clone, Copy)]
pub struct CountCutVersions;
impl Message for CountCutVersions {
    type Reply = usize;
}

/// Snapshot of **all** cuts this holder currently owns — the aggregate
/// read that model B answers with a single message where model A needs a
/// fan-out over every cut actor.
#[derive(Clone, Copy)]
pub struct SnapshotCuts;
impl Message for SnapshotCuts {
    type Reply = Vec<Versioned<MeatCutData>>;
}

#[derive(Default, Serialize, Deserialize)]
struct HolderState {
    /// Live versions this holder currently owns.
    live: BTreeMap<String, Versioned<MeatCutData>>,
    /// Historical versions kept after transfer (the redundancy the paper
    /// notes as model B's cost).
    history: Vec<Versioned<MeatCutData>>,
}

/// A supply-chain participant in model B.
pub struct CutHolder {
    state: aodb_core::Persisted<HolderState>,
}

impl CutHolder {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| CutHolder {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for CutHolder {
    const TYPE_NAME: &'static str = "cattle.cut-holder";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Model B transfers copy the cut record to the receiving holder
        // (same type, different key).
        const CALLS: &[aodb_runtime::CallDecl] =
            &[aodb_runtime::CallDecl::send("cattle.cut-holder")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<CreateCutB> for CutHolder {
    fn handle(&mut self, msg: CreateCutB, ctx: &mut ActorContext<'_>) {
        let me = ctx.key().to_string();
        self.state.mutate(|s| {
            s.live
                .insert(msg.entity.clone(), Versioned::new(msg.entity, me, msg.data));
        });
    }
}

impl Handler<TransferCutB> for CutHolder {
    fn handle(&mut self, msg: TransferCutB, ctx: &mut ActorContext<'_>) -> bool {
        let copy = self.state.mutate(|s| {
            let current = s.live.remove(&msg.entity)?;
            let next = current.transfer_to(&msg.to, msg.ts_ms);
            s.history.push(current);
            Some(next)
        });
        match copy {
            Some(next) => {
                let _ = ctx
                    .actor_ref::<CutHolder>(msg.to.as_str())
                    .tell(ReceiveCutB(next));
                true
            }
            None => false,
        }
    }
}

impl Handler<ReceiveCutB> for CutHolder {
    fn handle(&mut self, msg: ReceiveCutB, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.live.insert(msg.0.entity.clone(), msg.0);
        });
    }
}

impl Handler<GetLocalCut> for CutHolder {
    fn handle(
        &mut self,
        msg: GetLocalCut,
        _ctx: &mut ActorContext<'_>,
    ) -> Option<Versioned<MeatCutData>> {
        let s = self.state.get();
        s.live
            .get(&msg.0)
            .cloned()
            .or_else(|| s.history.iter().rev().find(|v| v.entity == msg.0).cloned())
    }
}

impl Handler<UpdateLocalCut> for CutHolder {
    fn handle(&mut self, msg: UpdateLocalCut, _ctx: &mut ActorContext<'_>) -> bool {
        self.state.mutate(|s| match s.live.get_mut(&msg.entity) {
            Some(v) => {
                v.payload.weight_kg = msg.weight_kg;
                true
            }
            None => false,
        })
    }
}

impl Handler<SnapshotCuts> for CutHolder {
    fn handle(
        &mut self,
        _msg: SnapshotCuts,
        _ctx: &mut ActorContext<'_>,
    ) -> Vec<Versioned<MeatCutData>> {
        self.state.get().live.values().cloned().collect()
    }
}

impl Handler<CountCutVersions> for CutHolder {
    fn handle(&mut self, _msg: CountCutVersions, _ctx: &mut ActorContext<'_>) -> usize {
        let s = self.state.get();
        s.live.len() + s.history.len()
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key, versioned_cut};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any holder state (model B's redundant versioned copies)
        /// survives the persistence codec unchanged.
        #[test]
        fn holder_state_roundtrips(
            live in proptest::collection::vec((key(), versioned_cut()), 0..4),
            history in proptest::collection::vec(versioned_cut(), 0..4),
        ) {
            assert_codec_roundtrip(&HolderState {
                live: live.into_iter().collect(),
                history,
            });
        }
    }
}
