//! Platform facade: registration and a typed client for the beef-chain
//! API.

use std::sync::Arc;
use std::time::Duration;

use aodb_core::{TxnCoordinator, WorkflowEngine};
use aodb_runtime::{Promise, ReplyTo, Runtime, RuntimeHandle, SendError};

use crate::cow::{CollarReport, Cow, CowInfo, GetCowInfo, GetTrajectory, InitCow, SetFence};
use crate::distribution::{
    Arrive, CreateDelivery, Delivery, DeliveryInfo, Depart, Distributor, GetDeliveryInfo,
    InitDistributor,
};
use crate::env::CattleEnv;
use crate::farmer::{AddCow, Farmer, InitFarmer, ListCows};
use crate::meatcut::MeatCut;
use crate::model_b::CutHolder;
use crate::retail::{CreateProduct, InitRetailer, MeatProduct, Retailer};
use crate::slaughterhouse::{InitSlaughterhouse, Slaughter, Slaughterhouse};
use crate::types::{Breed, CollarReading, GeoFence, GeoPoint};

/// Registers every cattle actor type (both models) plus the transaction
/// coordinator and workflow engine the transfers need.
pub fn register_all(rt: &Runtime, env: CattleEnv) {
    Farmer::register(rt, env.clone());
    Cow::register(rt, env.clone());
    Slaughterhouse::register(rt, env.clone());
    MeatCut::register(rt, env.clone());
    Distributor::register(rt, env.clone());
    Delivery::register(rt, env.clone());
    Retailer::register(rt, env.clone());
    MeatProduct::register(rt, env.clone());
    CutHolder::register(rt, env.clone());
    TxnCoordinator::register(rt);
    aodb_core::IndexShard::register(rt, Arc::clone(&env.store));
    WorkflowEngine::register(rt, env.store);
}

/// Typed client facade over the beef-chain API.
#[derive(Clone)]
pub struct CattleClient {
    handle: RuntimeHandle,
}

impl CattleClient {
    /// Client using `handle`'s origin.
    pub fn new(handle: RuntimeHandle) -> Self {
        CattleClient { handle }
    }

    /// Creates a farm unit.
    pub fn create_farmer(&self, key: &str, name: &str) -> Result<(), SendError> {
        self.handle.try_actor_ref::<Farmer>(key)?.tell(InitFarmer {
            name: name.to_string(),
        })
    }

    /// Registers a cow at a farm (both sides updated; initial
    /// registration needs no transaction because nothing is concurrent
    /// yet).
    pub fn register_cow(
        &self,
        cow: &str,
        farmer: &str,
        breed: Breed,
        born_ms: u64,
    ) -> Result<(), SendError> {
        self.handle.try_actor_ref::<Cow>(cow)?.tell(InitCow {
            farmer: farmer.to_string(),
            breed,
            born_ms,
        })?;
        self.handle
            .try_actor_ref::<Farmer>(farmer)?
            .tell(AddCow(cow.to_string()))
    }

    /// The farmer's herd.
    pub fn herd(&self, farmer: &str) -> Result<Promise<Vec<String>>, SendError> {
        self.handle.try_actor_ref::<Farmer>(farmer)?.ask(ListCows)
    }

    /// Streams collar readings into a cow.
    pub fn collar_report(
        &self,
        cow: &str,
        readings: Vec<CollarReading>,
    ) -> Result<Promise<u32>, SendError> {
        self.handle
            .try_actor_ref::<Cow>(cow)?
            .ask(CollarReport { readings })
    }

    /// Installs a geo-fence on a cow.
    pub fn set_fence(&self, cow: &str, fence: Option<GeoFence>) -> Result<(), SendError> {
        self.handle.try_actor_ref::<Cow>(cow)?.tell(SetFence(fence))
    }

    /// Cow snapshot.
    pub fn cow_info(&self, cow: &str) -> Result<Promise<CowInfo>, SendError> {
        self.handle.try_actor_ref::<Cow>(cow)?.ask(GetCowInfo)
    }

    /// Cow trajectory (most recent `limit` fixes; 0 = all retained).
    pub fn trajectory(
        &self,
        cow: &str,
        limit: usize,
    ) -> Result<Promise<Vec<(u64, GeoPoint)>>, SendError> {
        self.handle
            .try_actor_ref::<Cow>(cow)?
            .ask(GetTrajectory { limit })
    }

    /// Creates a slaughterhouse.
    pub fn create_slaughterhouse(&self, key: &str, name: &str) -> Result<(), SendError> {
        self.handle
            .try_actor_ref::<Slaughterhouse>(key)?
            .tell(InitSlaughterhouse {
                name: name.to_string(),
            })
    }

    /// Slaughters a cow; the promise yields the created cut keys, or
    /// `None` when the cow was already slaughtered.
    pub fn slaughter(
        &self,
        slaughterhouse: &str,
        cow: &str,
        ts_ms: u64,
    ) -> Result<Promise<Option<Vec<String>>>, SendError> {
        let (reply, promise) = ReplyTo::promise();
        self.handle
            .try_actor_ref::<Slaughterhouse>(slaughterhouse)?
            .tell(Slaughter {
                cow: cow.to_string(),
                ts_ms,
                reply,
            })?;
        Ok(promise)
    }

    /// Creates a distributor.
    pub fn create_distributor(&self, key: &str, name: &str) -> Result<(), SendError> {
        self.handle
            .try_actor_ref::<Distributor>(key)?
            .tell(InitDistributor {
                name: name.to_string(),
            })
    }

    /// Plans a delivery; the promise yields the delivery key.
    pub fn create_delivery(
        &self,
        distributor: &str,
        cuts: Vec<String>,
        from: &str,
        to: &str,
        vehicle: &str,
    ) -> Result<Promise<String>, SendError> {
        self.handle
            .try_actor_ref::<Distributor>(distributor)?
            .ask(CreateDelivery {
                cuts,
                from: from.to_string(),
                to: to.to_string(),
                vehicle: vehicle.to_string(),
            })
    }

    /// Departs a delivery.
    pub fn depart(&self, delivery: &str, ts_ms: u64) -> Result<(), SendError> {
        self.handle
            .try_actor_ref::<Delivery>(delivery)?
            .tell(Depart { ts_ms })
    }

    /// Completes a delivery (updates every transported cut's itinerary).
    pub fn arrive(&self, delivery: &str, ts_ms: u64) -> Result<(), SendError> {
        self.handle
            .try_actor_ref::<Delivery>(delivery)?
            .tell(Arrive { ts_ms })
    }

    /// Delivery snapshot.
    pub fn delivery_info(&self, delivery: &str) -> Result<Promise<DeliveryInfo>, SendError> {
        self.handle
            .try_actor_ref::<Delivery>(delivery)?
            .ask(GetDeliveryInfo)
    }

    /// Creates a retailer.
    pub fn create_retailer(&self, key: &str, name: &str) -> Result<(), SendError> {
        self.handle
            .try_actor_ref::<Retailer>(key)?
            .tell(InitRetailer {
                name: name.to_string(),
            })
    }

    /// Assembles a consumer product from cuts; the promise yields the
    /// product key.
    pub fn create_product(
        &self,
        retailer: &str,
        cuts: Vec<String>,
        name: &str,
        ts_ms: u64,
    ) -> Result<Promise<String>, SendError> {
        self.handle
            .try_actor_ref::<Retailer>(retailer)?
            .ask(CreateProduct {
                cuts,
                name: name.to_string(),
                ts_ms,
            })
    }

    /// Full provenance of a product (model A graph walk).
    pub fn trace_product(
        &self,
        product: &str,
    ) -> Result<crate::tracing::TraceReport, crate::tracing::TraceError> {
        crate::tracing::trace_product(&self.handle, product)
    }

    /// Where a cut is now, and how it got there.
    pub fn track_cut(
        &self,
        cut: &str,
    ) -> Result<(String, Vec<crate::types::ItineraryEntry>), crate::tracing::TraceError> {
        crate::tracing::track_cut(&self.handle, cut)
    }

    /// Atomic ownership transfer (2PC).
    pub fn transfer_cow_txn(
        &self,
        cow: &str,
        from: &str,
        to: &str,
    ) -> Result<Promise<aodb_core::TxnOutcome>, SendError> {
        crate::transfer::transfer_cow_txn(
            &self.handle,
            "cattle-coordinator",
            cow,
            from,
            to,
            Duration::from_secs(10),
        )
    }

    /// Workflow-based ownership transfer.
    pub fn transfer_cow_workflow(
        &self,
        transfer_id: &str,
        cow: &str,
        from: &str,
        to: &str,
    ) -> Result<Promise<aodb_core::WorkflowOutcome>, SendError> {
        crate::transfer::transfer_cow_workflow(
            &self.handle,
            "cattle-engine",
            transfer_id,
            cow,
            from,
            to,
        )
    }

    /// The underlying handle.
    pub fn handle(&self) -> &RuntimeHandle {
        &self.handle
    }
}
