//! `Retailer` and `MeatProduct` actors.
//!
//! Retailers transform meat cuts into consumer products (Figure 3:
//! `Meat Product` has a many-to-many association with `Meat Cut` — a
//! product may combine several cuts, and a cut may be split over several
//! products).

use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::env::CattleEnv;
use crate::meatcut::{MeatCut, SetProduct};
use crate::types::{ChainEvent, ChainEventKind};

/// Initializes a retailer.
pub struct InitRetailer {
    /// Display name.
    pub name: String,
}
impl Message for InitRetailer {
    type Reply = ();
}

/// Creates a consumer product from cuts; replies with the product key.
pub struct CreateProduct {
    /// Source cut keys.
    pub cuts: Vec<String>,
    /// Product display name, e.g. `"500g minced beef"`.
    pub name: String,
    /// Creation time.
    pub ts_ms: u64,
}
impl Message for CreateProduct {
    type Reply = String;
}

/// Products created by a retailer.
#[derive(Clone, Copy)]
pub struct ListProducts;
impl Message for ListProducts {
    type Reply = Vec<String>;
}

#[derive(Default, Serialize, Deserialize)]
struct RetailerState {
    name: String,
    products: Vec<String>,
    next_product: u64,
    events: Vec<ChainEvent>,
}

/// The retailer actor.
pub struct Retailer {
    state: aodb_core::Persisted<RetailerState>,
}

impl Retailer {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Retailer {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Retailer {
    const TYPE_NAME: &'static str = "cattle.retailer";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Product creation initializes the product actor and back-links
        // the cuts composing it.
        const CALLS: &[aodb_runtime::CallDecl] = &[
            aodb_runtime::CallDecl::send("cattle.meat-product"),
            aodb_runtime::CallDecl::send("cattle.meat-cut"),
        ];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitRetailer> for Retailer {
    fn handle(&mut self, msg: InitRetailer, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.name = msg.name);
    }
}

impl Handler<CreateProduct> for Retailer {
    fn handle(&mut self, msg: CreateProduct, ctx: &mut ActorContext<'_>) -> String {
        let me = ctx.key().to_string();
        let product_key = self.state.mutate(|s| {
            let key = format!("{me}/p-{}", s.next_product);
            s.next_product += 1;
            s.products.push(key.clone());
            s.events.push(ChainEvent {
                entity: key.clone(),
                kind: ChainEventKind::ProductCreated,
                actor: me.clone(),
                ts_ms: msg.ts_ms,
            });
            key
        });
        let _ = ctx
            .actor_ref::<MeatProduct>(product_key.as_str())
            .tell(InitProduct {
                retailer: me,
                cuts: msg.cuts.clone(),
                name: msg.name,
                ts_ms: msg.ts_ms,
            });
        for cut in &msg.cuts {
            let _ = ctx
                .actor_ref::<MeatCut>(cut.as_str())
                .tell(SetProduct(product_key.clone()));
        }
        product_key
    }
}

impl Handler<ListProducts> for Retailer {
    fn handle(&mut self, _msg: ListProducts, _ctx: &mut ActorContext<'_>) -> Vec<String> {
        self.state.get().products.clone()
    }
}

// ----------------------------------------------------------- meat product

/// Initializes a product (sent by its retailer).
pub struct InitProduct {
    /// Creating retailer key.
    pub retailer: String,
    /// Source cut keys.
    pub cuts: Vec<String>,
    /// Display name.
    pub name: String,
    /// Creation time.
    pub ts_ms: u64,
}
impl Message for InitProduct {
    type Reply = ();
}

/// Product snapshot (what a consumer scans).
#[derive(Clone, Copy)]
pub struct GetProductInfo;
impl Message for GetProductInfo {
    type Reply = ProductInfo;
}

/// Reply of [`GetProductInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProductInfo {
    /// Creating retailer.
    pub retailer: String,
    /// Source cuts.
    pub cuts: Vec<String>,
    /// Display name.
    pub name: String,
    /// Creation time.
    pub created_ms: u64,
}

#[derive(Default, Serialize, Deserialize)]
struct ProductState {
    retailer: String,
    cuts: Vec<String>,
    name: String,
    created_ms: u64,
}

/// The meat-product actor.
pub struct MeatProduct {
    state: aodb_core::Persisted<ProductState>,
}

impl MeatProduct {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| MeatProduct {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for MeatProduct {
    const TYPE_NAME: &'static str = "cattle.meat-product";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitProduct> for MeatProduct {
    fn handle(&mut self, msg: InitProduct, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.retailer = msg.retailer;
            s.cuts = msg.cuts;
            s.name = msg.name;
            s.created_ms = msg.ts_ms;
        });
    }
}

impl Handler<GetProductInfo> for MeatProduct {
    fn handle(&mut self, _msg: GetProductInfo, _ctx: &mut ActorContext<'_>) -> ProductInfo {
        let s = self.state.get();
        ProductInfo {
            retailer: s.retailer.clone(),
            cuts: s.cuts.clone(),
            name: s.name.clone(),
            created_ms: s.created_ms,
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, chain_event, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any retailer state survives the persistence codec unchanged.
        #[test]
        fn retailer_state_roundtrips(
            name in key(),
            products in proptest::collection::vec(key(), 0..5),
            next_product in any::<u64>(),
            events in proptest::collection::vec(chain_event(), 0..6),
        ) {
            assert_codec_roundtrip(&RetailerState { name, products, next_product, events });
        }

        /// Any product state survives the persistence codec unchanged.
        #[test]
        fn product_state_roundtrips(
            retailer in key(),
            cuts in proptest::collection::vec(key(), 0..5),
            name in key(),
            created_ms in any::<u64>(),
        ) {
            assert_codec_roundtrip(&ProductState { retailer, cuts, name, created_ms });
        }
    }
}
