//! The `Slaughterhouse` actor.
//!
//! Slaughters cows and derives `MeatCut` actors from them (model A). The
//! slaughter operation spans two actors (the cow must atomically flip to
//! `Slaughtered`, then cuts are created) and is implemented as a
//! continuation chain — the slaughterhouse never blocks its turn: it asks
//! the cow to mark itself slaughtered, and the reply callback posts a
//! completion message back to the slaughterhouse, which then creates the
//! cut actors and answers the original caller.

use aodb_runtime::{Actor, ActorContext, Handler, Message, ReplyTo};
use serde::{Deserialize, Serialize};

use crate::cow::{Cow, CowInfo, MarkSlaughtered};
use crate::env::CattleEnv;
use crate::meatcut::{InitMeatCut, MeatCut};
use crate::types::{ChainEvent, ChainEventKind, MeatCutData};

/// The cut types derived from one carcass in this simplified chain.
pub const CUT_TYPES: [&str; 4] = ["ribeye", "sirloin", "brisket", "round"];

/// Initializes the slaughterhouse.
pub struct InitSlaughterhouse {
    /// Display name.
    pub name: String,
}
impl Message for InitSlaughterhouse {
    type Reply = ();
}

/// Slaughters `cow`, creating one cut per [`CUT_TYPES`] entry.
///
/// The outcome (the created cut keys, or `None` if the cow was already
/// slaughtered) is delivered through `reply` once the cow has confirmed
/// and the cuts exist.
pub struct Slaughter {
    /// The cow to slaughter.
    pub cow: String,
    /// Operation time (ms).
    pub ts_ms: u64,
    /// Outcome sink.
    pub reply: ReplyTo<Option<Vec<String>>>,
}
impl Message for Slaughter {
    type Reply = ();
}

/// Internal continuation: the cow answered [`MarkSlaughtered`].
struct CowConfirmed {
    cow: String,
    ts_ms: u64,
    info: Option<CowInfo>,
    reply: ReplyTo<Option<Vec<String>>>,
}
impl Message for CowConfirmed {
    type Reply = ();
}

/// Slaughter records kept by this house (GS1-style events).
#[derive(Clone, Copy)]
pub struct GetSlaughterLog;
impl Message for GetSlaughterLog {
    type Reply = Vec<ChainEvent>;
}

#[derive(Default, Serialize, Deserialize)]
struct SlaughterhouseState {
    name: String,
    events: Vec<ChainEvent>,
    cuts_created: u64,
}

/// The slaughterhouse actor.
pub struct Slaughterhouse {
    state: aodb_core::Persisted<SlaughterhouseState>,
}

impl Slaughterhouse {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: CattleEnv) {
        rt.register(move |id| Slaughterhouse {
            state: env.persisted_registry(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Slaughterhouse {
    const TYPE_NAME: &'static str = "cattle.slaughterhouse";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Slaughter continuation chain: ask the cow (callback reply, the
        // turn never blocks), then create the cut actors.
        const CALLS: &[aodb_runtime::CallDecl] = &[
            aodb_runtime::CallDecl::send("cattle.cow"),
            aodb_runtime::CallDecl::send("cattle.meat-cut"),
        ];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitSlaughterhouse> for Slaughterhouse {
    fn handle(&mut self, msg: InitSlaughterhouse, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.name = msg.name);
    }
}

impl Handler<Slaughter> for Slaughterhouse {
    fn handle(&mut self, msg: Slaughter, ctx: &mut ActorContext<'_>) {
        let me = ctx.actor_ref::<Slaughterhouse>(ctx.key().clone());
        let cow_key = msg.cow.clone();
        let ts_ms = msg.ts_ms;
        let reply = msg.reply;
        let continuation = ReplyTo::Callback(Box::new(move |info: Option<CowInfo>| {
            let _ = me.tell(CowConfirmed {
                cow: cow_key,
                ts_ms,
                info,
                reply,
            });
        }));
        let _ = ctx.actor_ref::<Cow>(msg.cow.as_str()).ask_with(
            MarkSlaughtered {
                slaughterhouse: ctx.key().to_string(),
                ts_ms,
            },
            continuation,
        );
    }
}

impl Handler<CowConfirmed> for Slaughterhouse {
    fn handle(&mut self, msg: CowConfirmed, ctx: &mut ActorContext<'_>) {
        let Some(_cow_info) = msg.info else {
            msg.reply.deliver(None); // cow was already slaughtered
            return;
        };
        let house = ctx.key().to_string();
        let mut cut_keys = Vec::with_capacity(CUT_TYPES.len());
        for (i, cut_type) in CUT_TYPES.iter().enumerate() {
            let cut_key = format!("{}/cut-{}", msg.cow, i);
            let _ = ctx
                .actor_ref::<MeatCut>(cut_key.as_str())
                .tell(InitMeatCut(MeatCutData {
                    cow: msg.cow.clone(),
                    slaughterhouse: house.clone(),
                    cut_type: (*cut_type).to_string(),
                    weight_kg: 20.0,
                }));
            cut_keys.push(cut_key);
        }
        self.state.mutate(|s| {
            s.events.push(ChainEvent {
                entity: msg.cow.clone(),
                kind: ChainEventKind::Slaughtered,
                actor: house.clone(),
                ts_ms: msg.ts_ms,
            });
            for cut in &cut_keys {
                s.events.push(ChainEvent {
                    entity: cut.clone(),
                    kind: ChainEventKind::CutCreated,
                    actor: house.clone(),
                    ts_ms: msg.ts_ms,
                });
            }
            s.cuts_created += cut_keys.len() as u64;
        });
        msg.reply.deliver(Some(cut_keys));
    }
}

impl Handler<GetSlaughterLog> for Slaughterhouse {
    fn handle(&mut self, _msg: GetSlaughterLog, _ctx: &mut ActorContext<'_>) -> Vec<ChainEvent> {
        self.state.get().events.clone()
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, chain_event, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any slaughterhouse state survives the persistence codec
        /// unchanged.
        #[test]
        fn slaughterhouse_state_roundtrips(
            name in key(),
            events in proptest::collection::vec(chain_event(), 0..6),
            cuts_created in any::<u64>(),
        ) {
            assert_codec_roundtrip(&SlaughterhouseState { name, events, cuts_created });
        }
    }
}
