//! Shared proptest strategies and the codec round-trip assertion for the
//! persisted-state tests (the `codec_tests` modules next to each state
//! type).
//!
//! Every `Persisted<T>` blob goes through `aodb_store::codec`, so
//! "decode (encode s) == s" over arbitrary states is exactly the
//! crash-recovery property: any state a crash can leave in the store
//! must reactivate unchanged.

use aodb_core::{IdempotenceGuard, TransferRecord, Versioned};
use proptest::prelude::*;

use crate::types::{
    Breed, ChainEvent, ChainEventKind, CollarReading, CowStatus, GeoFence, GeoPoint,
    ItineraryEntry, MeatCutData,
};

/// Encodes with the store codec, decodes, and compares canonically
/// (`serde_json::Value` is `BTreeMap`-backed, so the comparison is
/// field-order-insensitive but misses nothing).
pub(crate) fn assert_codec_roundtrip<T>(state: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let bytes = aodb_store::codec::encode_state(state).expect("state must encode");
    let back: T = aodb_store::codec::decode_state(&bytes).expect("state must decode");
    assert_eq!(
        serde_json::to_value(state).expect("canonical form"),
        serde_json::to_value(&back).expect("canonical form"),
        "state drifted across the persistence codec"
    );
}

/// Actor-key-shaped strings, including the empty string.
pub(crate) fn key() -> impl Strategy<Value = String> {
    "[a-z0-9/_-]{0,12}"
}

/// A GPS fix anywhere on the globe.
pub(crate) fn geo_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..90.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint { lat, lon })
}

/// Either fence shape.
pub(crate) fn geo_fence() -> impl Strategy<Value = GeoFence> {
    prop_oneof![
        (geo_point(), 0.0f64..10.0)
            .prop_map(|(center, radius)| GeoFence::Circle { center, radius }),
        (geo_point(), geo_point()).prop_map(|(min, max)| GeoFence::Rect { min, max }),
    ]
}

/// One collar report.
pub(crate) fn collar_reading() -> impl Strategy<Value = CollarReading> {
    (any::<u64>(), geo_point(), 0.0f64..30.0, 30.0f64..45.0).prop_map(
        |(ts_ms, position, speed, temperature)| CollarReading {
            ts_ms,
            position,
            speed,
            temperature,
        },
    )
}

/// Every supply-chain event kind.
pub(crate) fn chain_event() -> impl Strategy<Value = ChainEvent> {
    (
        key(),
        prop_oneof![
            Just(ChainEventKind::Born),
            Just(ChainEventKind::OwnershipTransferred),
            Just(ChainEventKind::Slaughtered),
            Just(ChainEventKind::CutCreated),
            Just(ChainEventKind::Departed),
            Just(ChainEventKind::Arrived),
            Just(ChainEventKind::ProductCreated),
        ],
        key(),
        any::<u64>(),
    )
        .prop_map(|(entity, kind, actor, ts_ms)| ChainEvent {
            entity,
            kind,
            actor,
            ts_ms,
        })
}

/// Every breed.
pub(crate) fn breed() -> impl Strategy<Value = Breed> {
    prop_oneof![
        Just(Breed::Angus),
        Just(Breed::Hereford),
        Just(Breed::Nelore),
        Just(Breed::HolsteinCross),
    ]
}

/// Both lifecycle states.
pub(crate) fn cow_status() -> impl Strategy<Value = CowStatus> {
    prop_oneof![Just(CowStatus::Alive), Just(CowStatus::Slaughtered)]
}

/// A meat-cut payload.
pub(crate) fn meat_cut_data() -> impl Strategy<Value = MeatCutData> {
    (key(), key(), key(), 0.0f64..500.0).prop_map(|(cow, slaughterhouse, cut_type, weight_kg)| {
        MeatCutData {
            cow,
            slaughterhouse,
            cut_type,
            weight_kg,
        }
    })
}

/// One leg of a cut's journey.
pub(crate) fn itinerary_entry() -> impl Strategy<Value = ItineraryEntry> {
    (key(), key(), key(), any::<u64>()).prop_map(|(delivery, from, to, arrived_ms)| {
        ItineraryEntry {
            delivery,
            from,
            to,
            arrived_ms,
        }
    })
}

/// A versioned meat-cut copy with a provenance chain of `hops` transfers
/// (the model-B redundant-state representation).
pub(crate) fn versioned_cut() -> impl Strategy<Value = Versioned<MeatCutData>> {
    (
        key(),
        key(),
        meat_cut_data(),
        proptest::collection::vec((key(), key(), any::<u64>()), 0..4),
    )
        .prop_map(|(entity, owner, payload, hops)| {
            let mut v = Versioned::new(entity, owner, payload);
            for (i, (from, to, at_ms)) in hops.into_iter().enumerate() {
                v.version = i as u32 + 1;
                v.history.push(TransferRecord {
                    from,
                    to,
                    version: v.version,
                    at_ms,
                });
            }
            v
        })
}

/// A guard that has already seen an arbitrary set of tokens.
pub(crate) fn idempotence_guard() -> impl Strategy<Value = IdempotenceGuard> {
    proptest::collection::vec(key(), 0..5).prop_map(|tokens| {
        let mut guard = IdempotenceGuard::new();
        for t in &tokens {
            guard.first_time(t);
        }
        guard
    })
}
