//! Tracing and tracking queries across the supply chain.
//!
//! Functional requirements 3–6: consumers trace a meat product back
//! through its cuts to slaughterhouse, cow and farm; distributors and
//! retailers track where cuts are. In model A this is a graph walk across
//! actors (product → cuts → cow) executed by the client through chained
//! requests; in model B the provenance travels with the versioned object,
//! so one message to the current holder answers everything.

use std::time::Duration;

use aodb_runtime::{RuntimeHandle, SendError};
use serde::{Deserialize, Serialize};

use crate::cow::{Cow, CowInfo, GetCowInfo};
use crate::meatcut::{CutInfo, GetCutInfo, MeatCut};
use crate::retail::{GetProductInfo, MeatProduct, ProductInfo};
use crate::types::ItineraryEntry;

/// Why a trace failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A hop in the walk could not be dispatched or answered.
    Unreachable(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Unreachable(what) => write!(f, "trace hop unreachable: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<SendError> for TraceError {
    fn from(e: SendError) -> Self {
        TraceError::Unreachable(e.to_string())
    }
}

/// Provenance of one cut inside a product trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CutTrace {
    /// The cut key.
    pub cut: String,
    /// Cut snapshot (type, weight, slaughterhouse, itinerary).
    pub info: CutInfo,
    /// The source animal's snapshot (owner, breed, events).
    pub cow: CowInfo,
}

/// The full farm-to-fork report a consumer sees.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceReport {
    /// The scanned product key.
    pub product: String,
    /// Product snapshot (retailer, name).
    pub product_info: ProductInfo,
    /// Per-cut provenance.
    pub cuts: Vec<CutTrace>,
}

impl TraceReport {
    /// All farms the product's beef came from (deduplicated).
    pub fn farms(&self) -> Vec<String> {
        let mut farms: Vec<String> = self.cuts.iter().map(|c| c.cow.farmer.clone()).collect();
        farms.sort();
        farms.dedup();
        farms
    }

    /// All slaughterhouses involved (deduplicated).
    pub fn slaughterhouses(&self) -> Vec<String> {
        let mut houses: Vec<String> = self
            .cuts
            .iter()
            .map(|c| c.info.data.slaughterhouse.clone())
            .collect();
        houses.sort();
        houses.dedup();
        houses
    }
}

const HOP_TIMEOUT: Duration = Duration::from_secs(10);

/// Traces a product back to its farms: product → cuts → cows (model A
/// graph walk, executed from the client).
pub fn trace_product(handle: &RuntimeHandle, product: &str) -> Result<TraceReport, TraceError> {
    let product_info = handle
        .try_actor_ref::<MeatProduct>(product)?
        .ask(GetProductInfo)?
        .wait_for(HOP_TIMEOUT)
        .map_err(|e| TraceError::Unreachable(format!("product {product}: {e}")))?;

    let mut cuts = Vec::with_capacity(product_info.cuts.len());
    for cut_key in &product_info.cuts {
        let info = handle
            .try_actor_ref::<MeatCut>(cut_key.as_str())?
            .ask(GetCutInfo)?
            .wait_for(HOP_TIMEOUT)
            .map_err(|e| TraceError::Unreachable(format!("cut {cut_key}: {e}")))?;
        let cow = handle
            .try_actor_ref::<Cow>(info.data.cow.as_str())?
            .ask(GetCowInfo)?
            .wait_for(HOP_TIMEOUT)
            .map_err(|e| TraceError::Unreachable(format!("cow {}: {e}", info.data.cow)))?;
        cuts.push(CutTrace {
            cut: cut_key.clone(),
            info,
            cow,
        });
    }
    Ok(TraceReport {
        product: product.to_string(),
        product_info,
        cuts,
    })
}

/// Tracks a cut: where it is now and every leg it travelled.
pub fn track_cut(
    handle: &RuntimeHandle,
    cut: &str,
) -> Result<(String, Vec<ItineraryEntry>), TraceError> {
    let info = handle
        .try_actor_ref::<MeatCut>(cut)?
        .ask(GetCutInfo)?
        .wait_for(HOP_TIMEOUT)
        .map_err(|e| TraceError::Unreachable(format!("cut {cut}: {e}")))?;
    Ok((info.holder, info.itinerary))
}
