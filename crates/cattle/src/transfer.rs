//! Cow ownership transfer — the paper's Section 4.4 worked example of
//! cross-actor constraint enforcement, implemented **both** ways the
//! principle describes:
//!
//! 1. [`transfer_cow_txn`]: a 2PC transaction over the cow and both
//!    farmers — atomic; either all three actors reflect the sale or none
//!    does.
//! 2. [`transfer_cow_workflow`]: a multi-actor workflow — eventually
//!    consistent with retries and idempotence, for deployments without
//!    transactions.

use std::time::Duration;

use aodb_core::{
    run_transaction, run_workflow, Participant, TxnCoordinator, TxnOp, TxnOutcome, WorkflowEngine,
    WorkflowOutcome,
};
use aodb_runtime::{Promise, RuntimeHandle, SendError};
use serde_json::json;

use crate::cow::Cow;
use crate::farmer::Farmer;

/// Atomically transfers `cow` from `from` to `to` (2PC).
pub fn transfer_cow_txn(
    handle: &RuntimeHandle,
    coordinator: &str,
    cow: &str,
    from: &str,
    to: &str,
    timeout: Duration,
) -> Result<Promise<TxnOutcome>, SendError> {
    let coordinator = handle.try_actor_ref::<TxnCoordinator>(coordinator)?;
    let cow_ref = handle.try_actor_ref::<Cow>(cow)?;
    let from_ref = handle.try_actor_ref::<Farmer>(from)?;
    let to_ref = handle.try_actor_ref::<Farmer>(to)?;
    run_transaction(
        &coordinator,
        vec![
            (
                Participant::of(&cow_ref),
                TxnOp(json!({ "action": "set-owner", "new_owner": to })),
            ),
            (
                Participant::of(&from_ref),
                TxnOp(json!({ "action": "remove-cow", "cow": cow })),
            ),
            (
                Participant::of(&to_ref),
                TxnOp(json!({ "action": "add-cow", "cow": cow })),
            ),
        ],
        timeout,
    )
}

/// Eventually transfers `cow` from `from` to `to` through the workflow
/// engine, with per-step retries. `transfer_id` must be unique per sale
/// (it doubles as the idempotence scope).
pub fn transfer_cow_workflow(
    handle: &RuntimeHandle,
    engine: &str,
    transfer_id: &str,
    cow: &str,
    from: &str,
    to: &str,
) -> Result<Promise<WorkflowOutcome>, SendError> {
    let engine = handle.try_actor_ref::<WorkflowEngine>(engine)?;
    let cow_ref = handle.try_actor_ref::<Cow>(cow)?;
    let from_ref = handle.try_actor_ref::<Farmer>(from)?;
    let to_ref = handle.try_actor_ref::<Farmer>(to)?;
    run_workflow(
        &engine,
        transfer_id,
        vec![
            // Order matters for intermediate observability: the herd lists
            // change first, the cow's owner pointer last, so a half-done
            // workflow never shows a cow owned by a farmer whose herd list
            // lacks it on the *new* side for long.
            (
                from_ref.recipient(),
                json!({ "action": "remove-cow", "cow": cow }),
            ),
            (
                to_ref.recipient(),
                json!({ "action": "add-cow", "cow": cow }),
            ),
            (
                cow_ref.recipient(),
                json!({ "action": "set-owner", "new_owner": to }),
            ),
        ],
        5,
        Duration::from_millis(10),
    )
}
