//! Domain types of the beef-cattle tracking & tracing platform.

use serde::{Deserialize, Serialize};

/// A GPS location (degrees).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct GeoPoint {
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

impl GeoPoint {
    /// Euclidean distance in degree space — adequate for the pasture-scale
    /// geometry the geo-fence checks operate on.
    pub fn distance(&self, other: &GeoPoint) -> f64 {
        let dlat = self.lat - other.lat;
        let dlon = self.lon - other.lon;
        (dlat * dlat + dlon * dlon).sqrt()
    }
}

/// One collar sensor report (the paper: movement, speed, location; plus
/// ingestible sensors measuring temperature).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollarReading {
    /// Sample timestamp (ms).
    pub ts_ms: u64,
    /// Location fix.
    pub position: GeoPoint,
    /// Movement speed (m/s).
    pub speed: f64,
    /// Body temperature (°C) from the rumen bolus.
    pub temperature: f64,
}

/// A pasture geo-fence (functional requirement 2: "Geo-fencing can help
/// identify whether a cow is in an appropriate area").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GeoFence {
    /// Circle: center + radius (degree space).
    Circle {
        /// Center of the allowed area.
        center: GeoPoint,
        /// Radius in degrees.
        radius: f64,
    },
    /// Axis-aligned rectangle.
    Rect {
        /// South-west corner.
        min: GeoPoint,
        /// North-east corner.
        max: GeoPoint,
    },
}

impl GeoFence {
    /// Whether `p` lies inside the fence.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        match self {
            GeoFence::Circle { center, radius } => center.distance(p) <= *radius,
            GeoFence::Rect { min, max } => {
                p.lat >= min.lat && p.lat <= max.lat && p.lon >= min.lon && p.lon <= max.lon
            }
        }
    }
}

/// Cattle breed (tracing information consumers care about).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Breed {
    /// Aberdeen Angus.
    Angus,
    /// Hereford.
    Hereford,
    /// Nelore (the dominant Brazilian beef breed — the Embrapa case).
    Nelore,
    /// Danish Holstein crossbreed.
    HolsteinCross,
}

/// Lifecycle status of a cow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CowStatus {
    /// On pasture, reporting collar data.
    #[default]
    Alive,
    /// Slaughtered; terminal.
    Slaughtered,
}

/// A GS1-EPCIS-style supply-chain event: who did what to which entity,
/// where and when. Every actor appends these to its event log, and the
/// tracing queries stitch them together.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChainEvent {
    /// The entity the event is about (cow, cut, or product key).
    pub entity: String,
    /// What happened.
    pub kind: ChainEventKind,
    /// The responsible actor (farmer, slaughterhouse, … key).
    pub actor: String,
    /// Event time (ms).
    pub ts_ms: u64,
}

/// GS1-style event vocabulary for the beef chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainEventKind {
    /// Animal registered at a farm.
    Born,
    /// Ownership transferred between farmers.
    OwnershipTransferred,
    /// Animal slaughtered.
    Slaughtered,
    /// Cut created from a carcass.
    CutCreated,
    /// Cut departed on a delivery.
    Departed,
    /// Cut arrived at a destination.
    Arrived,
    /// Product assembled from cuts.
    ProductCreated,
}

/// Payload of a meat cut (the inanimate entity of Section 4.3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeatCutData {
    /// Source cow key.
    pub cow: String,
    /// Slaughterhouse key that produced it.
    pub slaughterhouse: String,
    /// Cut type, e.g. `"ribeye"`.
    pub cut_type: String,
    /// Weight in kilograms (may be trimmed during handling).
    pub weight_kg: f64,
}

/// One leg of a meat cut's journey.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ItineraryEntry {
    /// Delivery key that moved the cut.
    pub delivery: String,
    /// Origin holder.
    pub from: String,
    /// Destination holder.
    pub to: String,
    /// Arrival time (ms).
    pub arrived_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_fence() {
        let fence = GeoFence::Circle {
            center: GeoPoint { lat: 0.0, lon: 0.0 },
            radius: 1.0,
        };
        assert!(fence.contains(&GeoPoint { lat: 0.5, lon: 0.5 }));
        assert!(!fence.contains(&GeoPoint { lat: 1.0, lon: 1.0 }));
    }

    #[test]
    fn rect_fence() {
        let fence = GeoFence::Rect {
            min: GeoPoint { lat: 0.0, lon: 0.0 },
            max: GeoPoint { lat: 2.0, lon: 3.0 },
        };
        assert!(fence.contains(&GeoPoint { lat: 1.0, lon: 2.9 }));
        assert!(!fence.contains(&GeoPoint {
            lat: -0.1,
            lon: 1.0
        }));
        assert!(!fence.contains(&GeoPoint { lat: 1.0, lon: 3.1 }));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint { lat: 1.0, lon: 2.0 };
        let b = GeoPoint { lat: 4.0, lon: 6.0 };
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&b), 5.0);
    }
}
