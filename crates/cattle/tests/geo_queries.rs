//! Spatial-query tests: the collar stream maintains the location index,
//! and proximity queries find cows by grid neighbourhood.

use std::sync::Arc;
use std::time::Duration;

use aodb_cattle::geo::{covering_cells, cows_near, grid_cell};
use aodb_cattle::types::{Breed, CollarReading, GeoPoint};
use aodb_cattle::{register_all, CattleClient, CattleEnv};
use aodb_runtime::Runtime;
use aodb_store::MemStore;

const T: Duration = Duration::from_secs(10);

fn reading(ts_ms: u64, lat: f64, lon: f64) -> CollarReading {
    CollarReading {
        ts_ms,
        position: GeoPoint { lat, lon },
        speed: 0.1,
        temperature: 38.5,
    }
}

fn setup() -> (Runtime, CattleClient) {
    let rt = Runtime::single(2);
    register_all(&rt, CattleEnv::new(Arc::new(MemStore::new())));
    let client = CattleClient::new(rt.handle());
    client.create_farmer("g/farm", "F").unwrap();
    (rt, client)
}

#[test]
fn collar_reports_populate_the_location_index() {
    let (rt, client) = setup();
    // Three cows: two in the same pasture corner, one far away.
    for (cow, lat, lon) in [
        ("g/cow-a", 55.480, 8.680),
        ("g/cow-b", 55.481, 8.681),
        ("g/cow-c", 56.200, 9.500),
    ] {
        client.register_cow(cow, "g/farm", Breed::Angus, 0).unwrap();
        client
            .collar_report(cow, vec![reading(0, lat, lon)])
            .unwrap()
            .wait_for(T)
            .unwrap();
    }
    assert!(rt.quiesce(T));

    let near = cows_near(
        &rt.handle(),
        &GeoPoint {
            lat: 55.480,
            lon: 8.680,
        },
        1,
    )
    .unwrap()
    .wait_for(T)
    .unwrap();
    assert_eq!(near, vec!["g/cow-a", "g/cow-b"], "far cow must not appear");

    let far = cows_near(
        &rt.handle(),
        &GeoPoint {
            lat: 56.200,
            lon: 9.500,
        },
        0,
    )
    .unwrap()
    .wait_for(T)
    .unwrap();
    assert_eq!(far, vec!["g/cow-c"]);
    rt.shutdown();
}

#[test]
fn moving_cow_changes_cells() {
    let (rt, client) = setup();
    client
        .register_cow("g/walker", "g/farm", Breed::Hereford, 0)
        .unwrap();
    client
        .collar_report("g/walker", vec![reading(0, 10.005, 10.005)])
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert!(rt.quiesce(T));
    let here = GeoPoint {
        lat: 10.005,
        lon: 10.005,
    };
    assert_eq!(
        cows_near(&rt.handle(), &here, 0)
            .unwrap()
            .wait_for(T)
            .unwrap(),
        vec!["g/walker"]
    );

    // Walk several cells away; the old cell must be vacated.
    client
        .collar_report("g/walker", vec![reading(1, 10.055, 10.005)])
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert!(rt.quiesce(T));
    assert!(cows_near(&rt.handle(), &here, 0)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .is_empty());
    let there = GeoPoint {
        lat: 10.055,
        lon: 10.005,
    };
    assert_eq!(
        cows_near(&rt.handle(), &there, 0)
            .unwrap()
            .wait_for(T)
            .unwrap(),
        vec!["g/walker"]
    );
    rt.shutdown();
}

#[test]
fn movement_within_a_cell_causes_no_index_traffic() {
    let (rt, client) = setup();
    client
        .register_cow("g/grazer", "g/farm", Breed::Nelore, 0)
        .unwrap();
    client
        .collar_report("g/grazer", vec![reading(0, 20.0051, 20.0051)])
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert!(rt.quiesce(T));
    let baseline = rt.metrics().messages_processed;

    // 50 reports, all inside the same 0.01° cell.
    for i in 1..=50u64 {
        client
            .collar_report(
                "g/grazer",
                vec![reading(i, 20.0051 + (i as f64) * 1e-5, 20.0051)],
            )
            .unwrap()
            .wait_for(T)
            .unwrap();
    }
    assert!(rt.quiesce(T));
    let delta = rt.metrics().messages_processed - baseline;
    // 50 collar reports; allow a couple of stray messages but no per-report
    // index updates (which would add ≥50).
    assert!(
        delta < 55,
        "unexpected index chatter: {delta} messages for 50 reports"
    );
    rt.shutdown();
}

#[test]
fn covering_cells_geometry_matches_queries() {
    // A cow on a cell border is found from the adjacent cell with r=1.
    let (rt, client) = setup();
    client
        .register_cow("g/border", "g/farm", Breed::Angus, 0)
        .unwrap();
    client
        .collar_report("g/border", vec![reading(0, 30.0101, 30.0001)])
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert!(rt.quiesce(T));

    let neighbour_point = GeoPoint {
        lat: 30.0099,
        lon: 30.0001,
    }; // one cell south
    assert_ne!(
        grid_cell(&neighbour_point),
        grid_cell(&GeoPoint {
            lat: 30.0101,
            lon: 30.0001
        })
    );
    assert!(cows_near(&rt.handle(), &neighbour_point, 0)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .is_empty());
    assert_eq!(
        cows_near(&rt.handle(), &neighbour_point, 1)
            .unwrap()
            .wait_for(T)
            .unwrap(),
        vec!["g/border"]
    );
    assert_eq!(covering_cells(&neighbour_point, 1).len(), 9);
    rt.shutdown();
}
