//! Coverage for the supply-chain bookkeeping actors: slaughter event logs,
//! distributor delivery listings, retailer product listings, and pasture
//! fence management on farms.

use std::sync::Arc;
use std::time::Duration;

use aodb_cattle::distribution::{Distributor, ListDeliveries};
use aodb_cattle::farmer::{Farmer, GetPastureFence, SetPastureFence};
use aodb_cattle::retail::{ListProducts, Retailer};
use aodb_cattle::slaughterhouse::{GetSlaughterLog, Slaughterhouse};
use aodb_cattle::types::{Breed, ChainEventKind, GeoFence, GeoPoint};
use aodb_cattle::{register_all, CattleClient, CattleEnv, CUT_TYPES};
use aodb_runtime::Runtime;
use aodb_store::MemStore;

const T: Duration = Duration::from_secs(10);

fn setup() -> (Runtime, CattleClient) {
    let rt = Runtime::single(2);
    register_all(&rt, CattleEnv::new(Arc::new(MemStore::new())));
    let client = CattleClient::new(rt.handle());
    (rt, client)
}

#[test]
fn slaughterhouse_logs_gs1_events() {
    let (rt, client) = setup();
    client.create_farmer("r/farm", "F").unwrap();
    client.create_slaughterhouse("r/house", "H").unwrap();
    for i in 0..2 {
        let cow = format!("r/cow-{i}");
        client
            .register_cow(&cow, "r/farm", Breed::Angus, 0)
            .unwrap();
        client
            .slaughter("r/house", &cow, 100 + i)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .unwrap();
    }
    let log = rt
        .actor_ref::<Slaughterhouse>("r/house")
        .call(GetSlaughterLog)
        .unwrap();
    let slaughters = log
        .iter()
        .filter(|e| e.kind == ChainEventKind::Slaughtered)
        .count();
    let cuts = log
        .iter()
        .filter(|e| e.kind == ChainEventKind::CutCreated)
        .count();
    assert_eq!(slaughters, 2);
    assert_eq!(cuts, 2 * CUT_TYPES.len());
    rt.shutdown();
}

#[test]
fn distributor_lists_its_deliveries() {
    let (rt, client) = setup();
    client.create_distributor("r/dist", "D").unwrap();
    let d1 = client
        .create_delivery("r/dist", vec!["cut-a".into()], "x", "y", "truck-1")
        .unwrap()
        .wait_for(T)
        .unwrap();
    let d2 = client
        .create_delivery("r/dist", vec!["cut-b".into()], "y", "z", "truck-2")
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_ne!(d1, d2);
    let listed = rt
        .actor_ref::<Distributor>("r/dist")
        .call(ListDeliveries)
        .unwrap();
    assert_eq!(listed, vec![d1, d2]);
    rt.shutdown();
}

#[test]
fn retailer_lists_its_products() {
    let (rt, client) = setup();
    client.create_retailer("r/retail", "R").unwrap();
    let p1 = client
        .create_product("r/retail", vec!["cut-1".into()], "pack A", 1)
        .unwrap()
        .wait_for(T)
        .unwrap();
    let p2 = client
        .create_product("r/retail", vec!["cut-2".into()], "pack B", 2)
        .unwrap()
        .wait_for(T)
        .unwrap();
    let listed = rt
        .actor_ref::<Retailer>("r/retail")
        .call(ListProducts)
        .unwrap();
    assert_eq!(listed, vec![p1, p2]);
    rt.shutdown();
}

#[test]
fn farm_pasture_fences_are_named_and_updatable() {
    let (rt, client) = setup();
    client.create_farmer("r/fences", "F").unwrap();
    let farmer = rt.actor_ref::<Farmer>("r/fences");
    let north = GeoFence::Circle {
        center: GeoPoint { lat: 1.0, lon: 1.0 },
        radius: 0.5,
    };
    let south = GeoFence::Circle {
        center: GeoPoint {
            lat: -1.0,
            lon: 1.0,
        },
        radius: 0.25,
    };
    farmer
        .call(SetPastureFence {
            pasture: "north".into(),
            fence: north,
        })
        .unwrap();
    farmer
        .call(SetPastureFence {
            pasture: "south".into(),
            fence: south,
        })
        .unwrap();
    assert_eq!(
        farmer.call(GetPastureFence("north".into())).unwrap(),
        Some(north)
    );
    assert_eq!(
        farmer.call(GetPastureFence("nowhere".into())).unwrap(),
        None
    );

    // Rotating pasture grounds (FR 2): the fence is replaced in place.
    let north2 = GeoFence::Rect {
        min: GeoPoint { lat: 0.5, lon: 0.5 },
        max: GeoPoint { lat: 1.5, lon: 1.5 },
    };
    farmer
        .call(SetPastureFence {
            pasture: "north".into(),
            fence: north2,
        })
        .unwrap();
    assert_eq!(
        farmer.call(GetPastureFence("north".into())).unwrap(),
        Some(north2)
    );
    rt.shutdown();
}
