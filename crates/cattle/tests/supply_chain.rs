//! End-to-end tests of the beef supply chain: collar streams, geo-fencing,
//! slaughter, distribution, retail, farm-to-fork tracing, ownership
//! transfers (2PC and workflow), and the model A vs model B contrast.

use std::sync::Arc;
use std::time::Duration;

use aodb_cattle::model_b::{
    CountCutVersions, CreateCutB, GetLocalCut, TransferCutB, UpdateLocalCut,
};
use aodb_cattle::types::{
    Breed, ChainEventKind, CollarReading, CowStatus, GeoFence, GeoPoint, MeatCutData,
};
use aodb_cattle::{register_all, CattleClient, CattleEnv, CutHolder, DeliveryStatus, CUT_TYPES};
use aodb_core::{TxnOutcome, WorkflowOutcome};
use aodb_runtime::Runtime;
use aodb_store::{MemStore, StateStore};

const T: Duration = Duration::from_secs(10);

fn reading(ts_ms: u64, lat: f64, lon: f64) -> CollarReading {
    CollarReading {
        ts_ms,
        position: GeoPoint { lat, lon },
        speed: 0.5,
        temperature: 38.6,
    }
}

fn setup() -> (Runtime, CattleClient, Arc<dyn StateStore>) {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(4);
    register_all(&rt, CattleEnv::new(Arc::clone(&store)));
    let client = CattleClient::new(rt.handle());
    (rt, client, store)
}

#[test]
fn collar_stream_builds_trajectory() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-1", "Nørgaard").unwrap();
    client
        .register_cow("cow-1", "farm-1", Breed::Angus, 0)
        .unwrap();

    let readings: Vec<CollarReading> = (0..50)
        .map(|i| reading(i * 10_000, 55.0 + i as f64 * 0.001, 10.0))
        .collect();
    let n = client
        .collar_report("cow-1", readings)
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(n, 50);

    let trajectory = client.trajectory("cow-1", 10).unwrap().wait_for(T).unwrap();
    assert_eq!(trajectory.len(), 10);
    assert_eq!(trajectory.last().unwrap().0, 49 * 10_000);

    let info = client.cow_info("cow-1").unwrap().wait_for(T).unwrap();
    assert_eq!(info.total_readings, 50);
    assert_eq!(info.farmer, "farm-1");
    assert_eq!(info.status, CowStatus::Alive);
    rt.shutdown();
}

#[test]
fn geofence_violations_are_counted() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-1", "F").unwrap();
    client
        .register_cow("cow-2", "farm-1", Breed::Hereford, 0)
        .unwrap();
    client
        .set_fence(
            "cow-2",
            Some(GeoFence::Rect {
                min: GeoPoint { lat: 0.0, lon: 0.0 },
                max: GeoPoint { lat: 1.0, lon: 1.0 },
            }),
        )
        .unwrap();

    client
        .collar_report(
            "cow-2",
            vec![
                reading(0, 0.5, 0.5),  // in
                reading(1, 1.5, 0.5),  // out
                reading(2, 0.9, 0.9),  // in
                reading(3, -0.1, 0.0), // out
            ],
        )
        .unwrap()
        .wait_for(T)
        .unwrap();

    let info = client.cow_info("cow-2").unwrap().wait_for(T).unwrap();
    assert_eq!(info.fence_violations, 2);
    rt.shutdown();
}

#[test]
fn slaughter_creates_cuts_and_is_single_use() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-1", "F").unwrap();
    client
        .register_cow("cow-3", "farm-1", Breed::Nelore, 0)
        .unwrap();
    client
        .create_slaughterhouse("house-1", "Danish Crown")
        .unwrap();

    let cuts = client
        .slaughter("house-1", "cow-3", 1000)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .expect("first slaughter succeeds");
    assert_eq!(cuts.len(), CUT_TYPES.len());

    // A cow can be slaughtered only once (FR 3).
    let again = client
        .slaughter("house-1", "cow-3", 2000)
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(again, None);

    let info = client.cow_info("cow-3").unwrap().wait_for(T).unwrap();
    assert_eq!(info.status, CowStatus::Slaughtered);
    assert!(info
        .events
        .iter()
        .any(|e| e.kind == ChainEventKind::Slaughtered));
    rt.shutdown();
}

#[test]
fn delivery_extends_cut_itineraries() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-1", "F").unwrap();
    client
        .register_cow("cow-4", "farm-1", Breed::Angus, 0)
        .unwrap();
    client.create_slaughterhouse("house-1", "H").unwrap();
    client.create_distributor("dist-1", "DSV").unwrap();

    let cuts = client
        .slaughter("house-1", "cow-4", 10)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .unwrap();

    let delivery = client
        .create_delivery("dist-1", cuts.clone(), "house-1", "retail-1", "truck-7")
        .unwrap()
        .wait_for(T)
        .unwrap();
    client.depart(&delivery, 20).unwrap();
    client.arrive(&delivery, 30).unwrap();
    assert!(rt.quiesce(T));

    let info = client
        .delivery_info(&delivery)
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(info.status, DeliveryStatus::Delivered);
    assert_eq!(info.departed_ms, Some(20));
    assert_eq!(info.arrived_ms, Some(30));

    let (holder, legs) = client.track_cut(&cuts[0]).unwrap();
    assert_eq!(holder, "retail-1");
    assert_eq!(legs.len(), 1);
    assert_eq!(legs[0].from, "house-1");
    assert_eq!(legs[0].to, "retail-1");
    rt.shutdown();
}

#[test]
fn farm_to_fork_trace() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-9", "Fazenda Boa Vista").unwrap();
    client
        .register_cow("cow-9", "farm-9", Breed::Nelore, 5)
        .unwrap();
    client.create_slaughterhouse("house-9", "H9").unwrap();
    client.create_distributor("dist-9", "D9").unwrap();
    client.create_retailer("retail-9", "SuperBrugsen").unwrap();

    let cuts = client
        .slaughter("house-9", "cow-9", 100)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .unwrap();
    let delivery = client
        .create_delivery("dist-9", cuts.clone(), "house-9", "retail-9", "truck-1")
        .unwrap()
        .wait_for(T)
        .unwrap();
    client.depart(&delivery, 110).unwrap();
    client.arrive(&delivery, 150).unwrap();
    assert!(rt.quiesce(T));

    let product = client
        .create_product("retail-9", cuts[..2].to_vec(), "Mixed grill pack", 200)
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert!(rt.quiesce(T));

    let report = client.trace_product(&product).unwrap();
    assert_eq!(report.product_info.retailer, "retail-9");
    assert_eq!(report.cuts.len(), 2);
    assert_eq!(report.farms(), vec!["farm-9"]);
    assert_eq!(report.slaughterhouses(), vec!["house-9"]);
    for cut in &report.cuts {
        assert_eq!(cut.cow.status, CowStatus::Slaughtered);
        assert_eq!(cut.info.product.as_deref(), Some(product.as_str()));
        assert_eq!(cut.info.itinerary.len(), 1);
    }
    rt.shutdown();
}

#[test]
fn txn_transfer_moves_cow_atomically() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-a", "A").unwrap();
    client.create_farmer("farm-b", "B").unwrap();
    client
        .register_cow("cow-t", "farm-a", Breed::Angus, 0)
        .unwrap();

    let outcome = client
        .transfer_cow_txn("cow-t", "farm-a", "farm-b")
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(outcome, TxnOutcome::Committed);

    assert_eq!(
        client.herd("farm-a").unwrap().wait_for(T).unwrap(),
        Vec::<String>::new()
    );
    assert_eq!(
        client.herd("farm-b").unwrap().wait_for(T).unwrap(),
        vec!["cow-t"]
    );
    let info = client.cow_info("cow-t").unwrap().wait_for(T).unwrap();
    assert_eq!(info.farmer, "farm-b");
    rt.shutdown();
}

#[test]
fn txn_transfer_aborts_when_cow_not_in_herd() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-a", "A").unwrap();
    client.create_farmer("farm-b", "B").unwrap();
    client
        .register_cow("cow-u", "farm-a", Breed::Angus, 0)
        .unwrap();

    // farm-b does not own cow-u; selling from farm-b must abort.
    let outcome = client
        .transfer_cow_txn("cow-u", "farm-b", "farm-a")
        .unwrap()
        .wait_for(T)
        .unwrap();
    match outcome {
        TxnOutcome::Aborted(reason) => assert!(reason.contains("not in this herd"), "{reason}"),
        other => panic!("expected abort, got {other:?}"),
    }
    // Ownership unchanged.
    let info = client.cow_info("cow-u").unwrap().wait_for(T).unwrap();
    assert_eq!(info.farmer, "farm-a");
    assert_eq!(
        client.herd("farm-a").unwrap().wait_for(T).unwrap(),
        vec!["cow-u"]
    );
    rt.shutdown();
}

#[test]
fn workflow_transfer_converges() {
    let (rt, client, _) = setup();
    client.create_farmer("farm-a", "A").unwrap();
    client.create_farmer("farm-b", "B").unwrap();
    client
        .register_cow("cow-w", "farm-a", Breed::HolsteinCross, 0)
        .unwrap();

    let outcome = client
        .transfer_cow_workflow("sale-2026-001", "cow-w", "farm-a", "farm-b")
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(outcome, WorkflowOutcome::Completed);

    assert_eq!(
        client.herd("farm-a").unwrap().wait_for(T).unwrap(),
        Vec::<String>::new()
    );
    assert_eq!(
        client.herd("farm-b").unwrap().wait_for(T).unwrap(),
        vec!["cow-w"]
    );
    let info = client.cow_info("cow-w").unwrap().wait_for(T).unwrap();
    assert_eq!(info.farmer, "farm-b");

    // Replaying the same sale id is idempotent.
    let outcome = client
        .transfer_cow_workflow("sale-2026-001", "cow-w", "farm-a", "farm-b")
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(outcome, WorkflowOutcome::Completed);
    assert_eq!(
        client.herd("farm-b").unwrap().wait_for(T).unwrap(),
        vec!["cow-w"]
    );
    rt.shutdown();
}

#[test]
fn model_b_transfer_copies_versions_and_reads_stay_local() {
    let (rt, _client, _) = setup();
    let house = rt.actor_ref::<CutHolder>("b/house-1");
    let dist = rt.actor_ref::<CutHolder>("b/dist-1");
    let retail = rt.actor_ref::<CutHolder>("b/retail-1");

    house
        .call(CreateCutB {
            entity: "cut-77".into(),
            data: MeatCutData {
                cow: "cow-77".into(),
                slaughterhouse: "b/house-1".into(),
                cut_type: "ribeye".into(),
                weight_kg: 12.0,
            },
        })
        .unwrap();

    assert!(house
        .call(TransferCutB {
            entity: "cut-77".into(),
            to: "b/dist-1".into(),
            ts_ms: 10
        })
        .unwrap());
    assert!(rt.quiesce(T));
    // The distributor trims the cut locally — no cross-actor messaging.
    assert!(dist
        .call(UpdateLocalCut {
            entity: "cut-77".into(),
            weight_kg: 11.5
        })
        .unwrap());
    assert!(dist
        .call(TransferCutB {
            entity: "cut-77".into(),
            to: "b/retail-1".into(),
            ts_ms: 20
        })
        .unwrap());
    assert!(rt.quiesce(T));

    let at_retail = retail
        .call(GetLocalCut("cut-77".into()))
        .unwrap()
        .expect("retail holds v2");
    assert_eq!(at_retail.version, 2);
    assert_eq!(at_retail.payload.weight_kg, 11.5);
    assert_eq!(
        at_retail.provenance(),
        vec!["b/house-1", "b/dist-1", "b/retail-1"]
    );

    // The house still holds its historical version 0 with original weight.
    let at_house = house
        .call(GetLocalCut("cut-77".into()))
        .unwrap()
        .expect("history kept");
    assert_eq!(at_house.version, 0);
    assert_eq!(at_house.payload.weight_kg, 12.0);

    // Redundancy is real: three holders retain a version each.
    let total: usize = [&house, &dist, &retail]
        .iter()
        .map(|h| h.call(CountCutVersions).unwrap())
        .sum();
    assert_eq!(total, 3);

    // Transferring an entity you do not hold fails.
    assert!(!house
        .call(TransferCutB {
            entity: "cut-77".into(),
            to: "b/dist-1".into(),
            ts_ms: 30
        })
        .unwrap());
    rt.shutdown();
}

#[test]
fn chain_state_survives_restart() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let product;
    {
        let rt = Runtime::single(4);
        register_all(&rt, CattleEnv::new(Arc::clone(&store)));
        let client = CattleClient::new(rt.handle());
        client.create_farmer("farm-p", "P").unwrap();
        client
            .register_cow("cow-p", "farm-p", Breed::Angus, 0)
            .unwrap();
        client.create_slaughterhouse("house-p", "H").unwrap();
        client.create_retailer("retail-p", "R").unwrap();
        let cuts = client
            .slaughter("house-p", "cow-p", 1)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .unwrap();
        product = client
            .create_product("retail-p", cuts, "pack", 2)
            .unwrap()
            .wait_for(T)
            .unwrap();
        rt.quiesce(T);
        rt.shutdown();
    }
    let rt = Runtime::single(4);
    register_all(&rt, CattleEnv::new(Arc::clone(&store)));
    let client = CattleClient::new(rt.handle());
    let report = client.trace_product(&product).unwrap();
    assert_eq!(report.cuts.len(), CUT_TYPES.len());
    assert_eq!(report.farms(), vec!["farm-p"]);
    rt.shutdown();
}
