//! # aodb-chaos — seeded chaos harness for the AODB reproduction
//!
//! Shared plumbing for the crash/recovery test fleet:
//!
//! * **Seed handling** — every chaos test derives its entire fault
//!   schedule from one `u64`. [`env_seed`] reads `CHAOS_SEED` so CI can
//!   pin or randomize runs, and [`SeedReport`] prints the seed when a
//!   test panics, turning any red run into a deterministic replay
//!   (`CHAOS_SEED=<seed> cargo test -p aodb-chaos`).
//! * **Invariant checkers** — [`AckLedger`] (no acknowledged write may
//!   be lost), [`ActivationTracker`] (at most one activation of an
//!   actor runs turns at any instant).
//! * **[`SpreadPlacement`]** — deterministic hash-modulo placement so
//!   tests can compute which silo hosts which actor and aim the kill.
//!
//! The fault *injection* itself lives next to the components it breaks:
//! [`aodb_runtime::FaultPlan`] for message drop/duplicate/delay and
//! scheduled silo crashes, [`aodb_store::ChaosStore`] for storage error
//! bursts and throttling. This crate is the harness that drives them.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

pub use aodb_runtime::{ChaosNetConfig, CrashEvent, FaultPlan, SiloCrashReport};
pub use aodb_store::{BurstWindow, ChaosStore, ChaosStoreConfig};

/// Reads the chaos seed from the `CHAOS_SEED` environment variable
/// (decimal, or hex with a `0x` prefix), falling back to `default`.
/// Tests call this so a failure printed by [`SeedReport`] can be
/// replayed without editing code.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(text) => parse_seed_text(&text)
            .unwrap_or_else(|| panic!("CHAOS_SEED {:?} is not a u64", text.trim())),
        Err(_) => default,
    }
}

/// Parses a seed as printed by [`SeedReport`]: decimal, or hex with a
/// `0x`/`0X` prefix. Pure so it can be unit-tested without mutating the
/// process environment.
fn parse_seed_text(text: &str) -> Option<u64> {
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

/// Prints the active chaos seed if the test panics, so the failing fault
/// schedule can be replayed exactly. Create it first thing in a test:
///
/// ```
/// let seed = aodb_chaos::env_seed(42);
/// let _report = aodb_chaos::SeedReport::new(seed);
/// // ... assertions; on panic stderr shows the CHAOS_SEED replay line
/// ```
pub struct SeedReport {
    seed: u64,
}

impl SeedReport {
    /// Arms the report for `seed`.
    pub fn new(seed: u64) -> Self {
        SeedReport { seed }
    }
}

impl Drop for SeedReport {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "chaos seed {seed:#018x} — replay with CHAOS_SEED={seed}",
                seed = self.seed
            );
        }
    }
}

/// Deterministic hash-modulo placement: actor → silo `stable_hash % n`.
/// Unlike the runtime's default prefer-local policy this ignores the
/// message origin, so a test can compute each actor's home silo up front
/// and kill exactly the silo it wants to hit.
pub struct SpreadPlacement;

impl SpreadPlacement {
    /// The silo this placement assigns `key` to in an `n`-silo cluster.
    pub fn silo_of(id: &aodb_runtime::ActorId, n: usize) -> aodb_runtime::SiloId {
        aodb_runtime::SiloId((id.stable_hash() % n as u64) as u32)
    }
}

impl aodb_runtime::Placement for SpreadPlacement {
    fn name(&self) -> &'static str {
        "spread"
    }
    fn place(
        &self,
        id: &aodb_runtime::ActorId,
        _origin: aodb_runtime::Origin,
        silos: usize,
    ) -> aodb_runtime::SiloId {
        Self::silo_of(id, silos)
    }
}

/// Records units of work the platform *acknowledged* (replied `Ok` to),
/// keyed by actor, and verifies afterwards that the platform still holds
/// every one of them — the "no acknowledged write is lost" invariant
/// crash tests assert after kills, restarts, and retries.
#[derive(Default)]
pub struct AckLedger {
    acked: Mutex<HashMap<String, u64>>,
}

impl AckLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `units` acknowledged units against `key`.
    pub fn ack(&self, key: &str, units: u64) {
        *self.acked.lock().entry(key.to_string()).or_default() += units;
    }

    /// Acknowledged units for `key`.
    pub fn acked(&self, key: &str) -> u64 {
        self.acked.lock().get(key).copied().unwrap_or(0)
    }

    /// Total acknowledged units across all keys.
    pub fn total(&self) -> u64 {
        self.acked.lock().values().sum()
    }

    /// Every key with at least one acknowledged unit.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.acked.lock().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Checks that `read(key)` (the durable units the platform reports
    /// now) exactly matches the acknowledged count for every key —
    /// nothing lost, nothing double-applied. Returns the violations.
    pub fn verify_exact(&self, read: impl Fn(&str) -> u64) -> Result<(), Vec<String>> {
        self.verify(read, false)
    }

    /// Like [`AckLedger::verify_exact`] but only requires `read(key) >=
    /// acked` — for fixtures where unacknowledged work may legitimately
    /// have been applied (e.g. a reply lost in transit after the turn
    /// ran).
    pub fn verify_durable(&self, read: impl Fn(&str) -> u64) -> Result<(), Vec<String>> {
        self.verify(read, true)
    }

    fn verify(&self, read: impl Fn(&str) -> u64, at_least: bool) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for (key, &acked) in self.acked.lock().iter() {
            let actual = read(key);
            let ok = if at_least {
                actual >= acked
            } else {
                actual == acked
            };
            if !ok {
                violations.push(format!(
                    "{key}: acked {acked} units but platform holds {actual}"
                ));
            }
        }
        violations.sort();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// Detects double activation: if two turns for the same actor key ever
/// overlap, the single-activation guarantee is broken. Handlers under
/// test call [`ActivationTracker::enter`] at the top of the turn and
/// drop the guard at the end.
#[derive(Default)]
pub struct ActivationTracker {
    in_turn: Mutex<HashMap<String, u32>>,
    violations: AtomicU64,
}

impl ActivationTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a turn for `key` as running; records a violation if another
    /// turn of the same key is already in flight.
    pub fn enter(&self, key: &str) -> TurnGuard<'_> {
        let mut map = self.in_turn.lock();
        let live = map.entry(key.to_string()).or_insert(0);
        *live += 1;
        if *live > 1 {
            self.violations.fetch_add(1, Ordering::SeqCst);
        }
        TurnGuard {
            tracker: self,
            key: key.to_string(),
        }
    }

    /// Number of overlapping-turn violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::SeqCst)
    }
}

/// RAII guard returned by [`ActivationTracker::enter`].
pub struct TurnGuard<'a> {
    tracker: &'a ActivationTracker,
    key: String,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut map = self.tracker.in_turn.lock();
        if let Some(live) = map.get_mut(&self.key) {
            *live -= 1;
            if *live == 0 {
                map.remove(&self.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_ledger_verifies_exact_and_durable() {
        let ledger = AckLedger::new();
        ledger.ack("a", 3);
        ledger.ack("a", 2);
        ledger.ack("b", 1);
        assert_eq!(ledger.acked("a"), 5);
        assert_eq!(ledger.total(), 6);
        assert_eq!(ledger.keys(), vec!["a".to_string(), "b".to_string()]);

        let held: HashMap<&str, u64> = [("a", 5), ("b", 1)].into();
        assert!(ledger.verify_exact(|k| held[k]).is_ok());

        // One lost unit on `a`: both modes flag it.
        let lossy: HashMap<&str, u64> = [("a", 4), ("b", 1)].into();
        let err = ledger.verify_exact(|k| lossy[k]).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("a: acked 5"));
        assert!(ledger.verify_durable(|k| lossy[k]).is_err());

        // Over-application: exact flags it, durable accepts it.
        let over: HashMap<&str, u64> = [("a", 6), ("b", 1)].into();
        assert!(ledger.verify_exact(|k| over[k]).is_err());
        assert!(ledger.verify_durable(|k| over[k]).is_ok());
    }

    #[test]
    fn activation_tracker_flags_overlap_only() {
        let tracker = ActivationTracker::new();
        {
            let _a = tracker.enter("x");
        }
        {
            let _b = tracker.enter("x"); // sequential re-entry is fine
        }
        assert_eq!(tracker.violations(), 0);

        let _one = tracker.enter("x");
        let _two = tracker.enter("x"); // overlap
        let _other = tracker.enter("y"); // different key, no overlap
        assert_eq!(tracker.violations(), 1);
    }

    #[test]
    fn seed_text_parses_decimal_and_hex() {
        // The parser is tested directly (setting process env vars in a
        // threaded test binary is racy, and CHAOS_SEED may legitimately
        // be set when the whole fleet is run under a replay seed).
        assert_eq!(parse_seed_text("7"), Some(7));
        assert_eq!(parse_seed_text(" 988768 "), Some(988768));
        assert_eq!(parse_seed_text("0xF1660"), Some(0xF1660));
        assert_eq!(parse_seed_text("0XDEADBEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_seed_text("not-a-seed"), None);
        assert_eq!(parse_seed_text("0xZZ"), None);
    }

    #[test]
    fn seed_report_is_silent_without_panic() {
        let _report = SeedReport::new(1234);
        // Dropping without a panic must not print or crash.
    }
}
