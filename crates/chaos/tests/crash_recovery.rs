//! Crash-mid-stream recovery over the SHM platform: a silo dies while
//! channels are ingesting, and every *acknowledged* batch must survive
//! into the reactivated channels on the surviving silos.
//!
//! The durability argument: channel data runs under
//! `WritePolicy::EveryChange`, so the state write happens inside the
//! turn, before the reply is delivered — an `Ok` reply therefore implies
//! the batch is already in the store, and crash eviction can only lose
//! turns that never replied (those resolve as `SiloLost` and are
//! retried).

use std::sync::Arc;
use std::time::Duration;

use aodb_chaos::{AckLedger, SeedReport, SpreadPlacement};
use aodb_core::WritePolicy;
use aodb_runtime::{ActorError, CallError, Runtime, RuntimeBuilder, SiloId};
use aodb_shm::messages::{ConfigureChannel, GetChannelStats, Ingest};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::MemStore;

const SILOS: usize = 3;

fn build() -> Runtime {
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .build();
    let mut env = ShmEnv::paper_default(Arc::new(MemStore::new()));
    // Ack ⇒ durable: data writes must not be deferred to deactivation.
    env.data_policy = WritePolicy::EveryChange;
    register_all(&rt, env);
    rt
}

fn configure(rt: &Runtime, channel: &str) {
    rt.actor_ref::<PhysicalSensorChannel>(channel)
        .call(ConfigureChannel {
            org: "org-0".into(),
            sensor: "org-0/s-0".into(),
            threshold: Threshold::default(),
            subscribers: Vec::new(),
            aggregates: false,
        })
        .unwrap();
}

fn batch(seq: u64) -> Vec<DataPoint> {
    (0..5)
        .map(|i| DataPoint {
            ts_ms: seq * 5 + i,
            value: (seq * 5 + i) as f64,
        })
        .collect()
}

#[test]
fn acknowledged_ingest_survives_silo_crash() {
    let _report = SeedReport::new(aodb_chaos::env_seed(0xC4A5));
    let rt = build();
    let victim = SiloId(1);

    let channels: Vec<String> = (0..12).map(|i| format!("org-0/s-{i}/c-0")).collect();
    for c in &channels {
        configure(&rt, c);
    }
    // The kill must actually hit channels, or the test proves nothing.
    let on_victim = channels
        .iter()
        .filter(|c| {
            let r = rt.actor_ref::<PhysicalSensorChannel>(c.as_str());
            SpreadPlacement::silo_of(r.id(), SILOS) == victim
        })
        .count();
    assert!(on_victim > 0, "no test channel lives on the victim silo");

    let ledger = AckLedger::new();
    let mut seq = 0u64;
    let ingest_round = |rt: &Runtime, ledger: &AckLedger, seq: &mut u64| {
        for c in &channels {
            *seq += 1;
            let points = batch(*seq);
            let units = points.len() as u64;
            match rt
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .call(Ingest::new(points))
            {
                Ok(accepted) => {
                    assert_eq!(accepted as u64, units);
                    ledger.ack(c, units);
                }
                Err(CallError::Reply(ActorError::SiloLost))
                | Err(CallError::Reply(ActorError::Lost)) => {
                    // Never ran: not acknowledged, nothing to record.
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
    };

    for _ in 0..4 {
        ingest_round(&rt, &ledger, &mut seq);
    }
    let report = rt.kill_silo(victim);
    assert!(report.evicted_activations > 0, "kill evicted nothing");
    // Keep ingesting through the outage (re-placement onto survivors)…
    for _ in 0..4 {
        ingest_round(&rt, &ledger, &mut seq);
    }
    // …and after the node returns.
    assert!(rt.restart_silo(victim));
    for _ in 0..4 {
        ingest_round(&rt, &ledger, &mut seq);
    }

    assert!(rt.quiesce(Duration::from_secs(5)));
    // Every acknowledged batch is present exactly once in the reactivated
    // channels — nothing lost to the crash, nothing double-applied by the
    // sequential retries.
    let verdict = ledger.verify_exact(|c| {
        rt.actor_ref::<PhysicalSensorChannel>(c)
            .call(GetChannelStats)
            .unwrap()
            .total_points
    });
    assert_eq!(verdict, Ok(()), "acknowledged writes lost");

    let metrics = rt.metrics();
    assert_eq!(metrics.silo_crashes, 1);
    assert!(
        metrics.reactivations > 0,
        "no evicted channel ever reactivated"
    );
    rt.shutdown();
}

#[test]
fn crash_mid_turn_loses_only_unacknowledged_work() {
    let _report = SeedReport::new(aodb_chaos::env_seed(0xC4A6));
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .build();
    let mut env = ShmEnv::paper_default(Arc::new(MemStore::new()));
    env.data_policy = WritePolicy::EveryChange;
    // Slow turns keep the mailbox busy so the kill lands mid-stream.
    env.ingest_service_time = Some(Duration::from_micros(300));
    register_all(&rt, env);

    let victim = SiloId(2);
    let channel = (0..10_000)
        .map(|i| format!("org-0/s-{i}/c-0"))
        .find(|c| {
            let r = rt.actor_ref::<PhysicalSensorChannel>(c.as_str());
            SpreadPlacement::silo_of(r.id(), SILOS) == victim
        })
        .expect("some key hashes onto the victim");
    configure(&rt, &channel);

    let ledger = AckLedger::new();
    let r = rt.actor_ref::<PhysicalSensorChannel>(channel.as_str());
    // Pipeline a deep queue, then kill the silo under it.
    let promises: Vec<_> = (0..60)
        .map(|seq| (seq, r.ask(Ingest::new(batch(seq))).unwrap()))
        .collect();
    std::thread::sleep(Duration::from_millis(2));
    rt.kill_silo(victim);

    let mut lost = 0u64;
    for (seq, p) in promises {
        match p.wait_for(Duration::from_secs(10)) {
            Ok(accepted) => {
                assert_eq!(accepted as usize, batch(seq).len());
                ledger.ack(&channel, accepted as u64);
            }
            Err(ActorError::SiloLost) => lost += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(lost > 0, "kill never interfered — test proves nothing");

    // The reactivated channel (on a surviving silo) holds exactly the
    // acknowledged prefix: EveryChange persisted each acked batch before
    // its reply, and the lost tail never ran.
    assert!(rt.quiesce(Duration::from_secs(5)));
    let verdict = ledger.verify_exact(|c| {
        rt.actor_ref::<PhysicalSensorChannel>(c)
            .call(GetChannelStats)
            .unwrap()
            .total_points
    });
    assert_eq!(verdict, Ok(()), "acknowledged prefix damaged by crash");
    rt.shutdown();
}
