//! Duplicate-delivery idempotence, property-tested over chaos seeds:
//! the network layer re-delivers replayable messages at random, and the
//! platforms must apply each logical operation exactly once — SHM ingest
//! through per-source dedup watermarks, cattle ownership transfer
//! through workflow idempotence tokens.

use std::sync::Arc;
use std::time::Duration;

use aodb_chaos::{ChaosNetConfig, FaultPlan, SeedReport};
use aodb_core::{WorkflowOutcome, WritePolicy};
use aodb_runtime::{LatencyModel, NetConfig, Runtime, RuntimeBuilder};
use aodb_shm::messages::{ConfigureChannel, GetChannelStats, Ingest};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{PhysicalSensorChannel, ShmEnv};
use aodb_store::MemStore;
use proptest::prelude::*;

/// A runtime whose client hop duplicates replayable messages (and only
/// duplicates — drops or delays would blur the exactly-once assertion).
fn duplicating_runtime(seed: u64) -> Runtime {
    let plan = FaultPlan::new(seed).with_net(ChaosNetConfig {
        drop_per_mille: 0,
        duplicate_per_mille: 500,
        delay_per_mille: 0,
        max_extra_delay: Duration::ZERO,
    });
    RuntimeBuilder::new()
        .silos(1, 2)
        .network(NetConfig {
            cross_silo: None,
            client: Some(LatencyModel::fixed(Duration::from_micros(20))),
        })
        .chaos(plan)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SHM ingest: `(source, seq)` tokens make redelivery invisible. 30
    /// deduped batches of 5 points go through a duplicating network; the
    /// channel must hold exactly 150 points however many copies arrived.
    #[test]
    fn shm_ingest_applies_once_under_duplication(seed in any::<u64>()) {
        let _report = SeedReport::new(seed);
        let rt = duplicating_runtime(seed);
        let mut env = ShmEnv::paper_default(Arc::new(MemStore::new()));
        env.data_policy = WritePolicy::EveryChange;
        aodb_shm::register_all(&rt, env);

        let r = rt.actor_ref::<PhysicalSensorChannel>("org-0/s-0/c-0");
        r.call(ConfigureChannel {
            org: "org-0".into(),
            sensor: "org-0/s-0".into(),
            threshold: Threshold::default(),
            subscribers: Vec::new(),
            aggregates: false,
        })
        .unwrap();

        for seq in 1..=30u64 {
            let points: Vec<DataPoint> = (0..5)
                .map(|i| DataPoint { ts_ms: seq * 5 + i, value: i as f64 })
                .collect();
            r.tell_replayable(Ingest::deduped(points, 1, seq)).unwrap();
        }
        prop_assert!(rt.quiesce(Duration::from_secs(10)));

        let stats = rt.chaos_stats().expect("chaos installed");
        prop_assert!(stats.duplicated > 0, "no duplicate was ever injected");
        let total = r.call(GetChannelStats).unwrap().total_points;
        prop_assert_eq!(
            total, 150,
            "dedup failed: {} points after {} duplicates (seed {:#x})",
            total, stats.duplicated, seed
        );
        rt.shutdown();
    }

    /// Cattle ownership transfer: redelivering the same `transfer_id`
    /// (client retry, duplicated submission) must move the cow exactly
    /// once — herd lists stay sets, provenance shows one transfer.
    #[test]
    fn cattle_transfer_applies_once_under_redelivery(
        seed in any::<u64>(),
        resubmits in 1usize..4,
    ) {
        let _report = SeedReport::new(seed);
        // Delay-only chaos shuffles timing without losing messages, so
        // every workflow submission resolves.
        let plan = FaultPlan::new(seed).with_net(ChaosNetConfig {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 400,
            max_extra_delay: Duration::from_micros(800),
        });
        let rt = RuntimeBuilder::new()
            .silos(1, 2)
            .network(NetConfig {
                cross_silo: None,
                client: Some(LatencyModel::fixed(Duration::from_micros(20))),
            })
            .chaos(plan)
            .build();
        let env = aodb_cattle::CattleEnv::new(Arc::new(MemStore::new()));
        aodb_cattle::register_all(&rt, env);
        let client = aodb_cattle::CattleClient::new(rt.handle());

        client.create_farmer("farmer-a", "A").unwrap();
        client.create_farmer("farmer-b", "B").unwrap();
        client
            .register_cow("cow-1", "farmer-a", aodb_cattle::types::Breed::Angus, 0)
            .unwrap();
        prop_assert!(rt.quiesce(Duration::from_secs(10)));

        for _ in 0..resubmits {
            let outcome = client
                .transfer_cow_workflow("xfer-1", "cow-1", "farmer-a", "farmer-b")
                .unwrap()
                .wait_for(Duration::from_secs(10))
                .unwrap();
            prop_assert_eq!(outcome, WorkflowOutcome::Completed);
        }
        prop_assert!(rt.quiesce(Duration::from_secs(10)));

        let herd_a = client.herd("farmer-a").unwrap().wait().unwrap();
        let herd_b = client.herd("farmer-b").unwrap().wait().unwrap();
        prop_assert!(herd_a.is_empty(), "cow still at origin: {:?}", herd_a);
        prop_assert_eq!(herd_b, vec!["cow-1".to_string()]);
        let info = client.cow_info("cow-1").unwrap().wait().unwrap();
        prop_assert_eq!(info.farmer, "farmer-b");
        rt.shutdown();
    }
}
