//! Replay determinism over the chaos fleet: the same pinned seed must
//! drive two complete runs — faults and all — to the *same observable
//! outcome*: identical ack-ledger contents and byte-identical persisted
//! state. This is the end-to-end guarantee the `aodb-replaycheck` rules
//! (`nondet-in-turn`, `unordered-persisted-state`, `ambient-clock`)
//! enforce statically: once every turn is a deterministic function of
//! state and message, fault *timing* can shift which batches retransmit,
//! but never what the platform finally holds.

use std::sync::Arc;
use std::time::Duration;

use aodb_cattle::model_b::{CreateCutB, CutHolder, TransferCutB};
use aodb_cattle::types::MeatCutData;
use aodb_cattle::CattleEnv;
use aodb_chaos::{AckLedger, FaultPlan, SeedReport, SpreadPlacement};
use aodb_core::WritePolicy;
use aodb_runtime::{ActorError, Runtime, RuntimeBuilder, SiloId};
use aodb_shm::messages::{ConfigureChannel, Ingest};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::{MemStore, StateStore};

const SILOS: usize = 2;
const CHANNELS: usize = 6;
const ROUNDS: u64 = 4;
const BATCH: u64 = 3;

/// Pinned CI seed; override with `CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xD37E12;

/// The workload is itself a pure function of the seed: point values come
/// from a splitmix64 stream keyed by `(seed, channel, seq)`, so two runs
/// under the same seed ingest bit-identical data.
fn point_value(seed: u64, channel: usize, seq: u64, i: u64) -> f64 {
    let mut z = seed
        .wrapping_add(channel as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq * BATCH + i);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % 100_000) as f64 / 10.0
}

fn batch(seed: u64, channel: usize, seq: u64) -> Vec<DataPoint> {
    (0..BATCH)
        .map(|i| DataPoint {
            ts_ms: seq * BATCH + i,
            value: point_value(seed, channel, seq, i),
        })
        .collect()
}

/// One full fleet run: seeded faults over a multi-silo SHM deployment,
/// TCP-style retransmit-until-acked streams, restart, drain. Returns the
/// ledger contents and the raw persisted key/value dump.
#[allow(clippy::type_complexity)]
fn run_fleet(seed: u64) -> (Vec<(String, u64)>, Vec<(Vec<u8>, Vec<u8>)>) {
    let store = Arc::new(MemStore::new());
    let plan = FaultPlan::from_seed(seed, SILOS, Duration::from_millis(150));
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .chaos(plan)
        .build();
    let mut env = ShmEnv::paper_default(store.clone());
    // Ack ⇒ durable, so an acked batch is in the store before its reply.
    env.data_policy = WritePolicy::EveryChange;
    register_all(&rt, env);

    let channels: Vec<String> = (0..CHANNELS).map(|i| format!("org-0/s-{i}/c-0")).collect();
    for c in &channels {
        for attempt in 0.. {
            let outcome =
                rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .call(ConfigureChannel {
                        org: "org-0".into(),
                        sensor: format!("org-0/s-{c}"),
                        threshold: Threshold::default(),
                        subscribers: Vec::new(),
                        aggregates: false,
                    });
            match outcome {
                Ok(()) => break,
                Err(_) if attempt < 100 => continue,
                Err(e) => panic!("channel {c} never configured: {e} (seed {seed:#x})"),
            }
        }
    }

    // Each channel is a FIFO stream retransmitting an unacked `seq` until
    // the dedup watermark acknowledges it — the faults decide how often a
    // batch retries, never whether it eventually lands exactly once.
    let ledger = AckLedger::new();
    let mut next_seq = vec![1u64; CHANNELS];
    let mut round_no = 0u64;
    while next_seq.iter().any(|&s| s <= ROUNDS) {
        round_no += 1;
        assert!(
            round_no < 2_000,
            "streams never drained: {next_seq:?} (seed {seed:#x})"
        );
        let mut round: Vec<(usize, u64, _)> = Vec::new();
        for (idx, c) in channels.iter().enumerate() {
            let seq = next_seq[idx];
            if seq > ROUNDS {
                continue;
            }
            if let Ok(p) = rt
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .ask_replayable(Ingest::deduped(batch(seed, idx, seq), idx as u64, seq))
            {
                round.push((idx, seq, p));
            }
        }
        for (idx, seq, p) in round {
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) => {
                    ledger.ack(&channels[idx], BATCH);
                    next_seq[idx] = seq + 1;
                }
                Err(ActorError::SiloLost) | Err(ActorError::Lost) => {}
                Err(e) => panic!("unexpected ingest error: {e} (seed {seed:#x})"),
            }
        }
        if round_no <= ROUNDS {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Let scheduled restarts fire, revive what is still down, drain.
    std::thread::sleep(Duration::from_millis(80));
    for s in 0..SILOS {
        rt.restart_silo(SiloId(s as u32));
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    rt.shutdown();

    let ledger_contents = ledger
        .keys()
        .into_iter()
        .map(|k| {
            let acked = ledger.acked(&k);
            (k, acked)
        })
        .collect();
    let dump = store
        .scan_prefix(&[])
        .expect("scan MemStore")
        .into_iter()
        .map(|(k, v)| (k.into_bytes(), v.to_vec()))
        .collect();
    (ledger_contents, dump)
}

#[test]
fn same_seed_twice_yields_identical_ledger_and_state_bytes() {
    let seed = aodb_chaos::env_seed(DEFAULT_SEED);
    let _report = SeedReport::new(seed);

    let (ledger_a, dump_a) = run_fleet(seed);
    let (ledger_b, dump_b) = run_fleet(seed);

    assert_eq!(
        ledger_a, ledger_b,
        "ack-ledger contents diverged between two runs of seed {seed:#x}"
    );
    // Every stream drained, so the ledger is exactly the full workload.
    assert_eq!(ledger_a.len(), CHANNELS);
    assert!(ledger_a.iter().all(|(_, acked)| *acked == ROUNDS * BATCH));

    // Byte-identical persisted state: same keys, same blobs. Compare keys
    // first so a divergence names the actor instead of dumping blobs.
    let keys = |d: &Vec<(Vec<u8>, Vec<u8>)>| -> Vec<String> {
        d.iter()
            .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
            .collect()
    };
    assert_eq!(
        keys(&dump_a),
        keys(&dump_b),
        "persisted key sets diverged (seed {seed:#x})"
    );
    for ((key, a), (_, b)) in dump_a.iter().zip(dump_b.iter()) {
        assert_eq!(
            a,
            b,
            "persisted blob for {:?} diverged between runs (seed {seed:#x})",
            String::from_utf8_lossy(key)
        );
    }
}

/// The `unordered-persisted-state` regression, end to end: model B's
/// `HolderState.live` map fills in whatever order transfers happen to
/// arrive, yet the persisted blob must not depend on that order. Two
/// runs build the same logical inventory in opposite insertion orders;
/// with an ordered map the serialized bytes are canonical and identical
/// (a `HashMap` here serialized in per-instance random order).
#[test]
fn holder_state_bytes_are_insertion_order_independent() {
    let run = |reverse: bool| -> Vec<(Vec<u8>, Vec<u8>)> {
        let store = Arc::new(MemStore::new());
        let rt: Runtime = RuntimeBuilder::new().silos(1, 2).build();
        aodb_cattle::register_all(&rt, CattleEnv::new(store.clone()));

        let mut entities: Vec<String> = (0..12).map(|i| format!("cut-{i:02}")).collect();
        if reverse {
            entities.reverse();
        }
        let source = rt.actor_ref::<CutHolder>("slaughterhouse-0");
        for e in &entities {
            source
                .call(CreateCutB {
                    entity: e.clone(),
                    data: MeatCutData {
                        cow: format!("cow-{e}"),
                        slaughterhouse: "slaughterhouse-0".into(),
                        cut_type: "ribeye".into(),
                        weight_kg: 4.5,
                    },
                })
                .expect("create cut");
        }
        // Hand half the inventory to a second holder so both a populated
        // `live` map and a transfer `history` get serialized. Transfers
        // happen in one canonical order in both runs: `history` is a Vec,
        // so its order is part of the logical state — only the *map*
        // insertions are meant to vary here.
        let mut outgoing = entities.clone();
        outgoing.sort();
        for e in outgoing.iter().filter(|e| e.ends_with(['0', '2', '4'])) {
            let moved = source
                .call(TransferCutB {
                    entity: e.to_string(),
                    to: "distributor-0".into(),
                    ts_ms: 7,
                })
                .expect("transfer cut");
            assert!(moved, "{e} was not live at the source");
        }
        assert!(rt.quiesce(Duration::from_secs(5)));
        rt.shutdown();
        store
            .scan_prefix(&[])
            .expect("scan MemStore")
            .into_iter()
            .map(|(k, v)| (k.into_bytes(), v.to_vec()))
            .collect()
    };

    let forward = run(false);
    let backward = run(true);
    assert!(!forward.is_empty(), "no holder state was persisted");
    assert_eq!(
        forward, backward,
        "holder blobs depend on insertion order — persisted maps must be ordered"
    );
}
