//! The headline chaos scenario: a Figure-6-style mixed workload (98 %
//! ingest / 2 % online queries over a multi-silo SHM deployment) runs
//! while a seeded [`FaultPlan`] drops, duplicates, and delays messages
//! and crashes (then restarts) silos on a schedule — and the platform
//! must conserve every acknowledged write, reactivate every actor on a
//! surviving silo, and reproduce the exact fault schedule when re-run
//! with the same seed.

use std::sync::Arc;
use std::time::Duration;

use aodb_chaos::{AckLedger, FaultPlan, SeedReport, SpreadPlacement};
use aodb_core::WritePolicy;
use aodb_runtime::{ActorError, LatencyModel, NetConfig, Runtime, RuntimeBuilder};
use aodb_shm::messages::{ConfigureChannel, GetChannelStats, Ingest, QueryRange};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::MemStore;

const SILOS: usize = 3;
const CHANNELS: usize = 48;
const ROUNDS: u64 = 30;
const BATCH: u64 = 5;

/// The default seed for pinned CI runs; override with `CHAOS_SEED`.
const DEFAULT_SEED: u64 = 0xF1660;

#[test]
fn fault_schedule_replays_identically_from_seed() {
    // The replay guarantee: `FaultPlan::from_seed` is pure, so the seed
    // printed by a failing run rebuilds the identical fault schedule.
    let horizon = Duration::from_millis(400);
    for seed in [DEFAULT_SEED, 1, 0xDEAD_BEEF, u64::MAX] {
        let a = FaultPlan::from_seed(seed, SILOS, horizon);
        let b = FaultPlan::from_seed(seed, SILOS, horizon);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same seed produced different fault schedules"
        );
    }
    let a = FaultPlan::from_seed(1, SILOS, horizon);
    let b = FaultPlan::from_seed(2, SILOS, horizon);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

fn build(seed: u64) -> Runtime {
    let plan = FaultPlan::from_seed(seed, SILOS, Duration::from_millis(300));
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .network(NetConfig {
            cross_silo: Some(LatencyModel::fixed(Duration::from_micros(30))),
            client: Some(LatencyModel::fixed(Duration::from_micros(30))),
        })
        .chaos(plan)
        .build();
    let mut env = ShmEnv::paper_default(Arc::new(MemStore::new()));
    // Ack ⇒ durable, and the ingest dedup watermarks persist with the
    // points they admit, so post-crash retries stay exactly-once.
    env.data_policy = WritePolicy::EveryChange;
    register_all(&rt, env);
    rt
}

fn batch(channel: usize, seq: u64) -> Vec<DataPoint> {
    (0..BATCH)
        .map(|i| DataPoint {
            ts_ms: seq * BATCH + i,
            value: (channel as u64 * 10_000 + seq * BATCH + i) as f64,
        })
        .collect()
}

#[test]
fn silo_kill_under_mixed_workload_conserves_acknowledged_writes() {
    let seed = aodb_chaos::env_seed(DEFAULT_SEED);
    let _report = SeedReport::new(seed);
    let fingerprint = FaultPlan::from_seed(seed, SILOS, Duration::from_millis(300)).fingerprint();

    let rt = build(seed);
    let channels: Vec<String> = (0..CHANNELS).map(|i| format!("org-0/s-{i}/c-0")).collect();
    for c in &channels {
        // Configuration rides the same chaotic network: retry until the
        // structural write is acknowledged.
        for attempt in 0.. {
            let outcome =
                rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .call(ConfigureChannel {
                        org: "org-0".into(),
                        sensor: format!("org-0/s-{c}"),
                        threshold: Threshold::default(),
                        subscribers: Vec::new(),
                        aggregates: false,
                    });
            match outcome {
                Ok(()) => break,
                Err(_) if attempt < 100 => continue,
                Err(e) => panic!("channel {c} never configured: {e} (seed {seed:#x})"),
            }
        }
    }

    // Mixed workload: 48 concurrent sensor streams, each a TCP-style
    // FIFO — a source retransmits an unacknowledged `seq` until it is
    // acked before advancing (the contract the dedup watermark needs) —
    // plus raw-range reads (the 2 %), while the plan's scheduled crashes
    // fire underneath. Streams are pipelined *across* channels, so the
    // kill always catches dozens of batches in flight.
    let ledger = AckLedger::new();
    let mut next_seq = vec![1u64; CHANNELS];
    let mut retransmissions = 0u64;
    let mut round_no = 0u64;
    while next_seq.iter().any(|&s| s <= ROUNDS) {
        round_no += 1;
        assert!(
            round_no < 2_000,
            "streams never drained: {next_seq:?} (seed {seed:#x})"
        );
        let mut round: Vec<(usize, u64, _)> = Vec::new();
        for (idx, c) in channels.iter().enumerate() {
            let seq = next_seq[idx];
            if seq > ROUNDS {
                continue;
            }
            // A send error (silo mid-kill) just means: retransmit next
            // round.
            if let Ok(p) = rt
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .ask_replayable(Ingest::deduped(batch(idx, seq), idx as u64, seq))
            {
                round.push((idx, seq, p));
            }
        }
        let query_target = &channels[round_no as usize % CHANNELS];
        let query = rt
            .actor_ref::<PhysicalSensorChannel>(query_target.as_str())
            .ask(QueryRange {
                from_ms: 0,
                to_ms: u64::MAX,
                limit: 10,
            });
        for (idx, seq, p) in round {
            match p.wait_for(Duration::from_secs(10)) {
                // Any Ok means this (source, seq) is applied exactly once
                // — a 0 reply is the dedup watermark acknowledging a copy
                // that already landed (e.g. a chaos duplicate of a
                // retransmission).
                Ok(_) => {
                    ledger.ack(&channels[idx], BATCH);
                    next_seq[idx] = seq + 1;
                }
                Err(ActorError::SiloLost) | Err(ActorError::Lost) => retransmissions += 1,
                Err(e) => panic!("unexpected ingest error: {e} (seed {seed:#x})"),
            }
        }
        if let Ok(p) = query {
            // Queries may be dropped or die with a silo; they must still
            // resolve with a typed error, never hang.
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) | Err(ActorError::Lost) | Err(ActorError::SiloLost) => {}
                Err(e) => panic!("unexpected query error: {e} (seed {seed:#x})"),
            }
        }
        // Pace the first `ROUNDS` rounds so the workload spans the
        // plan's crash window instead of racing past it.
        if round_no <= ROUNDS {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    eprintln!("streams drained after {round_no} rounds, {retransmissions} retransmissions");

    // Let any still-scheduled restart fire, then revive whatever is
    // still down so the survivors + returnees host the full fleet.
    std::thread::sleep(Duration::from_millis(120));
    for s in 0..SILOS {
        rt.restart_silo(aodb_runtime::SiloId(s as u32));
    }
    assert!(rt.quiesce(Duration::from_secs(10)));

    // Conservation: every channel holds exactly its acknowledged points —
    // the crashes lost nothing that was acked, and the duplicates and
    // retries double-applied nothing. Reading the stats also proves every
    // actor reactivates (the read itself re-activates evicted channels).
    let verdict = ledger.verify_exact(|c| {
        for _ in 0..200 {
            match rt
                .actor_ref::<PhysicalSensorChannel>(c)
                .call(GetChannelStats)
            {
                Ok(stats) => return stats.total_points,
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        panic!("channel {c} unreachable after restart (seed {seed:#x})");
    });
    assert_eq!(
        verdict,
        Ok(()),
        "conservation violated under seed {seed:#x}"
    );
    assert_eq!(ledger.total(), CHANNELS as u64 * ROUNDS * BATCH);

    let metrics = rt.metrics();
    assert!(
        metrics.silo_crashes >= 1,
        "plan scheduled no crash (seed {seed:#x})"
    );
    assert!(
        metrics.reactivations > 0,
        "crashes evicted actors but none reactivated (seed {seed:#x})"
    );

    // Replay guarantee, end to end: the schedule this run executed is
    // bit-identical to what the printed seed rebuilds.
    assert_eq!(
        FaultPlan::from_seed(seed, SILOS, Duration::from_millis(300)).fingerprint(),
        fingerprint
    );
    rt.shutdown();
}
