//! The at-most-one-activation invariant under crash/restart churn: even
//! while silos die and return mid-traffic, two turns for the same actor
//! key must never overlap — `kill_silo` waits for in-flight turns before
//! eviction, so a reactivation on a survivor cannot race its predecessor.

use std::sync::OnceLock;
use std::time::Duration;

use aodb_chaos::{ActivationTracker, SeedReport, SpreadPlacement};
use aodb_runtime::{Actor, ActorContext, Handler, Message, RuntimeBuilder, SiloId};

static TRACKER: OnceLock<ActivationTracker> = OnceLock::new();

fn tracker() -> &'static ActivationTracker {
    TRACKER.get_or_init(ActivationTracker::new)
}

struct Hit;
impl Message for Hit {
    type Reply = u64;
}

/// Unpersisted counter whose only job is to hold the turn open long
/// enough that an illegally concurrent second activation would be seen.
struct Counter {
    key: String,
    hits: u64,
}

impl Actor for Counter {
    const TYPE_NAME: &'static str = "chaos.counter";
}

impl Handler<Hit> for Counter {
    fn handle(&mut self, _msg: Hit, _ctx: &mut ActorContext<'_>) -> u64 {
        let _turn = tracker().enter(&self.key);
        std::thread::sleep(Duration::from_micros(200));
        self.hits += 1;
        self.hits
    }
}

#[test]
fn crash_restart_churn_never_overlaps_activations() {
    let _report = SeedReport::new(aodb_chaos::env_seed(0xAC71));
    let rt = RuntimeBuilder::new()
        .silos(3, 2)
        .placement(SpreadPlacement)
        .build();
    rt.register(|id| Counter {
        key: id.key.to_string(),
        hits: 0,
    });

    let keys: Vec<String> = (0..16).map(|i| format!("counter-{i}")).collect();
    std::thread::scope(|scope| {
        // Four client threads hammer all keys; kills re-place actors onto
        // survivors while earlier turns may still be draining.
        for _ in 0..4 {
            let rt = &rt;
            let keys = &keys;
            scope.spawn(move || {
                for _ in 0..40 {
                    for key in keys {
                        if let Ok(p) = rt.actor_ref::<Counter>(key.as_str()).ask(Hit) {
                            let _ = p.wait_for(Duration::from_secs(5));
                        }
                    }
                }
            });
        }
        for victim in [SiloId(1), SiloId(2), SiloId(1)] {
            std::thread::sleep(Duration::from_millis(5));
            rt.kill_silo(victim);
            std::thread::sleep(Duration::from_millis(3));
            assert!(rt.restart_silo(victim));
        }
    });

    assert!(rt.quiesce(Duration::from_secs(10)));
    assert_eq!(
        tracker().violations(),
        0,
        "two activations of one actor ran turns concurrently"
    );
    rt.shutdown();
}
