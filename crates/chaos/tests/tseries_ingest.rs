//! Chaos conservation with the columnar time-series backend: the Fig-6
//! mixed workload (FIFO ingest streams + range queries) runs over
//! `kill_silo` chaos while channels append compressed points through the
//! `SeriesStore` seam — and ack ⇒ durable and exactly-once must hold
//! from the backing store *alone*: after the fleet shuts down, a fresh
//! engine over the bare store must reconstruct every acknowledged point
//! (no more, no fewer) and still reject replayed batches, because the
//! dedup watermarks commit atomically with their tail block.
//!
//! Small sealed blocks (16 points vs 5-point batches) make the scheduled
//! kills straddle seal boundaries, exercising the tail-record commit
//! protocol's pending-block window.

use std::sync::Arc;
use std::time::Duration;

use aodb_chaos::{AckLedger, FaultPlan, SeedReport, SpreadPlacement};
use aodb_runtime::{ActorError, LatencyModel, NetConfig, Runtime, RuntimeBuilder};
use aodb_shm::messages::{ConfigureChannel, GetChannelStats, Ingest, QueryRange};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{MemStore, StateStore};

const SILOS: usize = 3;
const CHANNELS: usize = 24;
const ROUNDS: u64 = 24;
const BATCH: u64 = 5;
const SEAL_POINTS: u32 = 16;

const DEFAULT_SEED: u64 = 0x75E41E5;

fn build(seed: u64, store: Arc<dyn StateStore>) -> Runtime {
    let plan = FaultPlan::from_seed(seed, SILOS, Duration::from_millis(300));
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .network(NetConfig {
            cross_silo: Some(LatencyModel::fixed(Duration::from_micros(30))),
            client: Some(LatencyModel::fixed(Duration::from_micros(30))),
        })
        .chaos(plan)
        .build();
    let engine = Arc::new(TsStore::new(
        Arc::clone(&store),
        TsConfig::sealing_every(SEAL_POINTS),
    ));
    // Default tail durability (EveryAppend): an acked batch is durable
    // before the reply leaves the actor, watermark included.
    register_all(
        &rt,
        ShmEnv::paper_default(store).with_series_store(engine as Arc<dyn SeriesStore>),
    );
    rt
}

fn batch(channel: usize, seq: u64) -> Vec<DataPoint> {
    (0..BATCH)
        .map(|i| DataPoint {
            ts_ms: (seq - 1) * BATCH + i,
            value: (channel as u64 * 10_000 + seq * BATCH + i) as f64,
        })
        .collect()
}

/// The exact stream a channel must hold after its FIFO stream drains:
/// seq 1..=ROUNDS, in order, exactly once.
fn expected_stream(channel: usize) -> Vec<(u64, f64)> {
    (1..=ROUNDS)
        .flat_map(|seq| batch(channel, seq))
        .map(|p| (p.ts_ms, p.value))
        .collect()
}

#[test]
fn silo_kill_with_tseries_backend_conserves_acknowledged_writes() {
    let seed = aodb_chaos::env_seed(DEFAULT_SEED);
    let _report = SeedReport::new(seed);

    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = build(seed, Arc::clone(&store));
    let channels: Vec<String> = (0..CHANNELS).map(|i| format!("org-0/s-{i}/c-0")).collect();
    for c in &channels {
        for attempt in 0.. {
            let outcome =
                rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .call(ConfigureChannel {
                        org: "org-0".into(),
                        sensor: format!("org-0/s-{c}"),
                        threshold: Threshold::default(),
                        subscribers: Vec::new(),
                        aggregates: false,
                    });
            match outcome {
                Ok(()) => break,
                Err(_) if attempt < 100 => continue,
                Err(e) => panic!("channel {c} never configured: {e} (seed {seed:#x})"),
            }
        }
    }

    // TCP-style FIFO streams with retransmission-until-ack, pipelined
    // across channels, plus the 2 % range-read traffic — while the plan
    // kills and restarts silos underneath.
    let ledger = AckLedger::new();
    let mut next_seq = vec![1u64; CHANNELS];
    let mut retransmissions = 0u64;
    let mut round_no = 0u64;
    while next_seq.iter().any(|&s| s <= ROUNDS) {
        round_no += 1;
        assert!(
            round_no < 2_000,
            "streams never drained: {next_seq:?} (seed {seed:#x})"
        );
        let mut round: Vec<(usize, u64, _)> = Vec::new();
        for (idx, c) in channels.iter().enumerate() {
            let seq = next_seq[idx];
            if seq > ROUNDS {
                continue;
            }
            if let Ok(p) = rt
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .ask_replayable(Ingest::deduped(batch(idx, seq), idx as u64, seq))
            {
                round.push((idx, seq, p));
            }
        }
        let query_target = &channels[round_no as usize % CHANNELS];
        let query = rt
            .actor_ref::<PhysicalSensorChannel>(query_target.as_str())
            .ask(QueryRange {
                from_ms: 0,
                to_ms: u64::MAX,
                limit: 10,
            });
        for (idx, seq, p) in round {
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) => {
                    ledger.ack(&channels[idx], BATCH);
                    next_seq[idx] = seq + 1;
                }
                Err(ActorError::SiloLost) | Err(ActorError::Lost) => retransmissions += 1,
                Err(e) => panic!("unexpected ingest error: {e} (seed {seed:#x})"),
            }
        }
        if let Ok(p) = query {
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) | Err(ActorError::Lost) | Err(ActorError::SiloLost) => {}
                Err(e) => panic!("unexpected query error: {e} (seed {seed:#x})"),
            }
        }
        if round_no <= ROUNDS {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    eprintln!("streams drained after {round_no} rounds, {retransmissions} retransmissions");

    std::thread::sleep(Duration::from_millis(120));
    for s in 0..SILOS {
        rt.restart_silo(aodb_runtime::SiloId(s as u32));
    }
    assert!(rt.quiesce(Duration::from_secs(10)));

    // Phase 1 — live conservation: every reactivated channel reports
    // exactly its acknowledged points (stats recovered from the sidecar).
    let verdict = ledger.verify_exact(|c| {
        for _ in 0..200 {
            match rt
                .actor_ref::<PhysicalSensorChannel>(c)
                .call(GetChannelStats)
            {
                Ok(stats) => return stats.total_points,
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        panic!("channel {c} unreachable after restart (seed {seed:#x})");
    });
    assert_eq!(
        verdict,
        Ok(()),
        "conservation violated under seed {seed:#x}"
    );
    assert_eq!(ledger.total(), CHANNELS as u64 * ROUNDS * BATCH);
    let metrics = rt.metrics();
    assert!(
        metrics.silo_crashes >= 1,
        "plan scheduled no crash (seed {seed:#x})"
    );
    rt.shutdown();

    // Phase 2 — cold durability: a fresh engine over the bare backing
    // store (no surviving in-memory tail, no warm actor state) must
    // rebuild every channel's exact acknowledged stream: right count,
    // right order, right values, across every seal boundary.
    let cold = TsStore::new(Arc::clone(&store), TsConfig::sealing_every(SEAL_POINTS));
    for (idx, c) in channels.iter().enumerate() {
        let series = format!("shm.channel/{c}");
        let rec = cold.recover(&series).unwrap();
        assert_eq!(
            rec.points,
            ROUNDS * BATCH,
            "channel {c}: cold recovery count (seed {seed:#x})"
        );
        let scan = cold.scan_range(&series, 0, u64::MAX, 0).unwrap();
        assert_eq!(
            scan,
            expected_stream(idx),
            "channel {c}: cold recovery stream (seed {seed:#x})"
        );
        let stats = cold.stats(&series);
        assert!(
            stats.sealed_blocks >= u64::from(ROUNDS as u32 * BATCH as u32 / SEAL_POINTS) - 1,
            "channel {c}: expected sealed blocks, got {stats:?}"
        );
    }

    // Phase 3 — exactly-once after a full restart: a second fleet over
    // the same store (fresh engine, fresh actors) must reject a replay
    // of the final batch, because the watermark committed atomically
    // with the points it admitted.
    let rt2 = build(seed.wrapping_add(1) | 1, Arc::clone(&store));
    for (idx, c) in channels.iter().enumerate() {
        let replayed = loop {
            if let Ok(p) = rt2
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .ask_replayable(Ingest::deduped(batch(idx, ROUNDS), idx as u64, ROUNDS))
            {
                if let Ok(n) = p.wait_for(Duration::from_secs(10)) {
                    break n;
                }
            }
        };
        assert_eq!(
            replayed, 0,
            "channel {c}: replayed batch was re-applied after restart (seed {seed:#x})"
        );
    }
    rt2.shutdown();

    // And the replays changed nothing in storage.
    let recheck = TsStore::new(Arc::clone(&store), TsConfig::sealing_every(SEAL_POINTS));
    for c in &channels {
        let series = format!("shm.channel/{c}");
        assert_eq!(recheck.recover(&series).unwrap().points, ROUNDS * BATCH);
    }
}
