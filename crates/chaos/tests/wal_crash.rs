//! Group-commit WAL crash-point matrix: every [`CrashPoint`] boundary is
//! killed mid-flight while the Fig-6 mixed workload (FIFO deduped ingest
//! streams + range queries) runs over silo-kill chaos with deferred
//! group-commit acks — and the headline invariant must hold from storage
//! alone:
//!
//! > **acked ⇒ durable**, and the recovered store is a prefix of the ack
//! > ledger's stream (per channel: exactly seq `1..=k` for some `k` with
//! > `k·BATCH ≥ acked points`, never torn, never reordered).
//!
//! Each point is exercised at a seed-derived group number so the amount
//! of committed prefix below the kill varies across seeds, then a second
//! WAL platform over the recovered state replays *every* batch and must
//! land on exactly-once: duplicates rejected via the barrier-ordered
//! dedup path, gaps filled, final stream byte-identical to the ideal run.
//!
//! `CHAOS_SEED=<seed>` replays a failure exactly (the fleet seed also
//! derives the armed crash group).

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use aodb_chaos::{AckLedger, FaultPlan, SeedReport, SpreadPlacement};
use aodb_runtime::{ActorError, LatencyModel, NetConfig, Runtime, RuntimeBuilder};
use aodb_shm::messages::{ConfigureChannel, Ingest, QueryRange};
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{register_all, PhysicalSensorChannel, ShmEnv};
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{CrashPlan, CrashPoint, MemStore, StateStore, WalConfig};

const SILOS: usize = 3;
const CHANNELS: usize = 8;
const ROUNDS: u64 = 12;
const BATCH: u64 = 4;

const DEFAULT_SEED: u64 = 0x5EED_CA11;

/// The two seeds a matrix cell runs under: the pinned default plus a
/// derived second schedule, or (under `CHAOS_SEED`) the override and its
/// derivation — so CI's fresh-seed run still covers two group offsets.
fn seeds() -> [u64; 2] {
    let base = aodb_chaos::env_seed(DEFAULT_SEED);
    [base, base.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1]
}

/// A WAL-mode SHM fleet: 3 silos, spread placement, seeded silo-kill
/// chaos, and the time-series engine in group-commit mode over `store` +
/// `wal_path` (deferred acks resolve only after the group fsyncs).
fn wal_platform(seed: u64, store: Arc<dyn StateStore>, wal_path: &Path) -> (Runtime, Arc<TsStore>) {
    let plan = FaultPlan::from_seed(seed, SILOS, Duration::from_millis(400));
    let rt = RuntimeBuilder::new()
        .silos(SILOS, 2)
        .placement(SpreadPlacement)
        .network(NetConfig {
            cross_silo: Some(LatencyModel::fixed(Duration::from_micros(30))),
            client: Some(LatencyModel::fixed(Duration::from_micros(30))),
        })
        .chaos(plan)
        .build();
    let (env, engine) =
        ShmEnv::tseries_wal_default(store, wal_path.to_path_buf(), WalConfig::default()).unwrap();
    register_all(&rt, env);
    (rt, engine)
}

fn batch(channel: usize, seq: u64) -> Vec<DataPoint> {
    (0..BATCH)
        .map(|i| DataPoint {
            ts_ms: (seq - 1) * BATCH + i,
            value: (channel as u64 * 10_000 + seq * BATCH + i) as f64,
        })
        .collect()
}

/// The ideal stream for a channel after seq `1..=ROUNDS` lands exactly
/// once; durable prefixes of it are the only legal recovery states.
fn expected_stream(channel: usize) -> Vec<(u64, f64)> {
    (1..=ROUNDS)
        .flat_map(|seq| batch(channel, seq))
        .map(|p| (p.ts_ms, p.value))
        .collect()
}

fn configure(rt: &Runtime, channels: &[String], seed: u64) {
    for c in channels {
        for attempt in 0.. {
            let outcome =
                rt.actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .call(ConfigureChannel {
                        org: "org-0".into(),
                        sensor: format!("org-0/s-{c}"),
                        threshold: Threshold::default(),
                        subscribers: Vec::new(),
                        aggregates: false,
                    });
            match outcome {
                Ok(()) => break,
                Err(_) if attempt < 100 => continue,
                Err(e) => panic!("channel {c} never configured: {e} (seed {seed:#x})"),
            }
        }
    }
}

/// One matrix cell: arm `point` at a seed-derived committed-group count,
/// drive the mixed workload until the kill fires, then prove the three
/// phases — prefix recovery, exactly-once replay, ideal end state.
fn scenario(point: CrashPoint, seed: u64) {
    let _report = SeedReport::new(seed);
    let wal_path = std::env::temp_dir().join(format!(
        "aodb-wal-crash-{}-{point:?}-{seed:x}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal_path);

    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, engine) = wal_platform(seed, Arc::clone(&store), &wal_path);
    let channels: Vec<String> = (0..CHANNELS).map(|i| format!("org-0/s-{i}/c-0")).collect();
    configure(&rt, &channels, seed);

    // Draining a channel takes ROUNDS sequential acks, each from a
    // distinct committed group, so any group below ROUNDS is guaranteed
    // to assemble before the streams can drain.
    let at_group = seed % (ROUNDS - 2);
    engine
        .wal()
        .expect("platform is in group-commit mode")
        .arm_crash(CrashPlan { point, at_group });

    // FIFO streams with retransmission-until-ack plus query traffic,
    // exactly the Fig-6 shape — but the driver stops the moment the
    // injected kill fires: a dead WAL can never ack, and the emulated
    // process is gone.
    let ledger = AckLedger::new();
    let mut next_seq = vec![1u64; CHANNELS];
    let mut round_no = 0u64;
    let fired = loop {
        if let Some(fired) = engine.wal().unwrap().injected_crash() {
            break fired;
        }
        if next_seq.iter().all(|&s| s > ROUNDS) {
            panic!(
                "streams drained before armed group {at_group} committed: {:?} (seed {seed:#x})",
                engine.wal().unwrap().stats()
            );
        }
        round_no += 1;
        assert!(
            round_no < 2_000,
            "crash never fired: {next_seq:?} (seed {seed:#x})"
        );
        let mut round: Vec<(usize, u64, _)> = Vec::new();
        for (idx, c) in channels.iter().enumerate() {
            let seq = next_seq[idx];
            if seq > ROUNDS {
                continue;
            }
            if let Ok(p) = rt
                .actor_ref::<PhysicalSensorChannel>(c.as_str())
                .ask_replayable(Ingest::deduped(batch(idx, seq), idx as u64, seq))
            {
                round.push((idx, seq, p));
            }
        }
        let query = rt
            .actor_ref::<PhysicalSensorChannel>(channels[round_no as usize % CHANNELS].as_str())
            .ask(QueryRange {
                from_ms: 0,
                to_ms: u64::MAX,
                limit: 10,
            });
        for (idx, seq, p) in round {
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) => {
                    ledger.ack(&channels[idx], BATCH);
                    next_seq[idx] = seq + 1;
                }
                // Retransmission path: silo kill, or the WAL died under
                // the ask. Either way the write is unacknowledged.
                Err(ActorError::SiloLost) | Err(ActorError::Lost) => {}
                Err(e) => panic!("unexpected ingest error: {e} (seed {seed:#x})"),
            }
        }
        if let Ok(p) = query {
            match p.wait_for(Duration::from_secs(10)) {
                Ok(_) | Err(ActorError::Lost) | Err(ActorError::SiloLost) => {}
                Err(e) => panic!("unexpected query error: {e} (seed {seed:#x})"),
            }
        }
    };
    assert_eq!(fired, point, "wrong crash point fired (seed {seed:#x})");
    rt.shutdown();
    drop(engine);

    // Phase 1 — prefix recovery: a cold engine over the bare store + the
    // (truncated, torn) WAL file must hold, per channel, exactly seq
    // 1..=k for some k — at least everything acked, at most everything
    // sent, whole batches only, bit-identical to the ideal prefix.
    let sent = ROUNDS * BATCH;
    let mut durable_before = [0u64; CHANNELS];
    {
        let cold = TsStore::with_wal(
            Arc::clone(&store),
            TsConfig::default(),
            wal_path.clone(),
            WalConfig::default(),
        )
        .unwrap();
        for (idx, c) in channels.iter().enumerate() {
            let series = format!("shm.channel/{c}");
            let rec = cold.recover(&series).unwrap();
            let acked = ledger.acked(c);
            assert!(
                rec.points >= acked,
                "{point:?}: channel {c} acked {acked} points but recovered {} (seed {seed:#x})",
                rec.points
            );
            assert!(
                rec.points <= sent && rec.points % BATCH == 0,
                "{point:?}: channel {c} recovered a torn count {} (seed {seed:#x})",
                rec.points
            );
            let scan = cold.scan_range(&series, 0, u64::MAX, 0).unwrap();
            assert_eq!(
                scan.as_slice(),
                &expected_stream(idx)[..rec.points as usize],
                "{point:?}: channel {c} recovered a non-prefix stream (seed {seed:#x})"
            );
            durable_before[idx] = rec.points;
        }
    }

    // Phase 2 — exactly-once replay: a second fleet over the recovered
    // state replays every batch of every stream. Durable-prefix batches
    // must be rejected (their ack rides the barrier, so even a reject is
    // a durability statement); the rest must land exactly once.
    let (rt2, engine2) = wal_platform(seed.wrapping_add(1) | 1, Arc::clone(&store), &wal_path);
    for (idx, c) in channels.iter().enumerate() {
        for seq in 1..=ROUNDS {
            let accepted = loop {
                if let Ok(p) = rt2
                    .actor_ref::<PhysicalSensorChannel>(c.as_str())
                    .ask_replayable(Ingest::deduped(batch(idx, seq), idx as u64, seq))
                {
                    if let Ok(n) = p.wait_for(Duration::from_secs(10)) {
                        break u64::from(n);
                    }
                }
            };
            if seq * BATCH <= durable_before[idx] {
                assert_eq!(
                    accepted, 0,
                    "{point:?}: channel {c} re-applied durable seq {seq} (seed {seed:#x})"
                );
            }
        }
    }
    rt2.shutdown();
    drop(engine2);

    // Phase 3 — ideal end state from storage alone: every stream is now
    // complete, in order, exactly once.
    let final_ts = TsStore::with_wal(
        Arc::clone(&store),
        TsConfig::default(),
        wal_path.clone(),
        WalConfig::default(),
    )
    .unwrap();
    for (idx, c) in channels.iter().enumerate() {
        let series = format!("shm.channel/{c}");
        assert_eq!(
            final_ts.recover(&series).unwrap().points,
            sent,
            "{point:?}: channel {c} end-state count (seed {seed:#x})"
        );
        assert_eq!(
            final_ts.scan_range(&series, 0, u64::MAX, 0).unwrap(),
            expected_stream(idx),
            "{point:?}: channel {c} end-state stream (seed {seed:#x})"
        );
    }
    drop(final_ts);
    let _ = std::fs::remove_file(&wal_path);
}

fn matrix(point: CrashPoint) {
    for seed in seeds() {
        scenario(point, seed);
    }
}

#[test]
fn crash_before_group_write_loses_nothing_acked() {
    matrix(CrashPoint::BeforeGroupWrite);
}

#[test]
fn crash_mid_group_write_truncates_tear_to_clean_prefix() {
    matrix(CrashPoint::MidGroupWrite);
}

#[test]
fn crash_after_write_before_fsync_drops_unsynced_group_unacked() {
    matrix(CrashPoint::AfterWriteBeforeFsync);
}

#[test]
fn crash_after_fsync_before_ack_keeps_durable_unacked_writes() {
    matrix(CrashPoint::AfterFsyncBeforeAck);
}

#[test]
fn crash_after_ack_preserves_every_acked_group() {
    matrix(CrashPoint::AfterAck);
}

/// The matrix is complete: a compile-time tripwire so a new
/// [`CrashPoint`] variant cannot land without a matrix row.
#[test]
fn matrix_covers_every_crash_point() {
    assert_eq!(CrashPoint::ALL.len(), 5);
}
