//! Secondary indexes as actors.
//!
//! Following the AODB vision the paper builds on (Bernstein et al.,
//! indexing in actor runtimes), an index over actor state is itself
//! maintained by actors: the index is hash-partitioned over `buckets`
//! [`IndexShard`] actors, each owning the postings for the values that
//! hash to it. Maintenance can be *eventual* (fire-and-forget, the common
//! IoT case) or *synchronous* (the caller awaits the acknowledgement).
//!
//! An index maps string values → sets of entity keys, e.g.
//! `breed = "angus" → {cow-3, cow-17}` or `silo-area = "pasture-A" →
//! {sensor-…}`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use aodb_runtime::{
    gather, Actor, ActorContext, Handler, Message, Promise, Runtime, RuntimeHandle, SendError,
};
use aodb_store::StateStore;
use serde::{Deserialize, Serialize};

use crate::persist::{Persisted, WritePolicy};

/// Posting-list mutation applied to a shard.
#[derive(Clone, Debug)]
pub struct IndexUpdate {
    /// Index name (namespace within the shard).
    pub index: String,
    /// Value to remove `entity` from (the entity's previous value).
    pub remove: Option<String>,
    /// Value to add `entity` to (the entity's new value).
    pub add: Option<String>,
    /// The indexed entity key.
    pub entity: String,
}

impl Message for IndexUpdate {
    type Reply = ();
}

/// Point lookup on a shard.
#[derive(Clone, Debug)]
pub struct IndexLookup {
    /// Index name.
    pub index: String,
    /// Value to look up.
    pub value: String,
}

impl Message for IndexLookup {
    type Reply = Vec<String>;
}

/// Full enumeration of a shard's postings for one index (debugging,
/// cross-shard queries).
#[derive(Clone, Debug)]
pub struct IndexDump {
    /// Index name.
    pub index: String,
}

impl Message for IndexDump {
    type Reply = Vec<(String, Vec<String>)>;
}

#[derive(Default, Serialize, Deserialize)]
struct ShardState {
    /// index name → value → posting set.
    postings: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
}

/// One hash partition of a secondary index.
pub struct IndexShard {
    state: Persisted<ShardState>,
}

impl IndexShard {
    /// Registers the shard actor type, persisting postings in `store`.
    pub fn register(rt: &Runtime, store: Arc<dyn StateStore>) {
        rt.register(move |id| IndexShard {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Self::TYPE_NAME,
                &id.key,
                WritePolicy::OnDeactivate,
            ),
        });
    }
}

impl Actor for IndexShard {
    const TYPE_NAME: &'static str = "aodb.index-shard";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<IndexUpdate> for IndexShard {
    fn handle(&mut self, msg: IndexUpdate, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            let index = s.postings.entry(msg.index).or_default();
            if let Some(old) = &msg.remove {
                if let Some(set) = index.get_mut(old) {
                    set.remove(&msg.entity);
                    if set.is_empty() {
                        index.remove(old);
                    }
                }
            }
            if let Some(new) = &msg.add {
                index.entry(new.clone()).or_default().insert(msg.entity);
            }
        });
    }
}

impl Handler<IndexLookup> for IndexShard {
    fn handle(&mut self, msg: IndexLookup, _ctx: &mut ActorContext<'_>) -> Vec<String> {
        self.state
            .get()
            .postings
            .get(&msg.index)
            .and_then(|index| index.get(&msg.value))
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl Handler<IndexDump> for IndexShard {
    fn handle(
        &mut self,
        msg: IndexDump,
        _ctx: &mut ActorContext<'_>,
    ) -> Vec<(String, Vec<String>)> {
        self.state
            .get()
            .postings
            .get(&msg.index)
            .map(|index| {
                index
                    .iter()
                    .map(|(value, set)| (value.clone(), set.iter().cloned().collect()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Maintenance mode for [`IndexClient::update`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IndexMode {
    /// Fire-and-forget: the index converges eventually.
    #[default]
    Eventual,
    /// The returned promise resolves once the shard applied the update.
    Synchronous,
}

/// Client handle for one named index.
#[derive(Clone)]
pub struct IndexClient {
    handle: RuntimeHandle,
    name: String,
    buckets: u32,
}

impl IndexClient {
    /// Creates a handle for index `name` over `buckets` shards.
    ///
    /// All clients of an index must agree on `buckets`; it determines
    /// value→shard routing.
    pub fn new(handle: RuntimeHandle, name: impl Into<String>, buckets: u32) -> Self {
        IndexClient {
            handle,
            name: name.into(),
            buckets: buckets.max(1),
        }
    }

    fn shard_key(&self, value: &str) -> String {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in value.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{}:{}", self.name, hash % self.buckets as u64)
    }

    /// Updates the entity's indexed value. `old == new` still routes both
    /// sides correctly (they may live on different shards).
    ///
    /// In [`IndexMode::Eventual`] the returned promise is already
    /// resolved; in [`IndexMode::Synchronous`] it resolves when every
    /// touched shard acknowledged.
    pub fn update(
        &self,
        entity: &str,
        old: Option<&str>,
        new: Option<&str>,
        mode: IndexMode,
    ) -> Result<Promise<Vec<()>>, SendError> {
        // Group by shard so an old/new pair on one shard is one message
        // (atomic within the shard's turn).
        let mut per_shard: BTreeMap<String, IndexUpdate> = BTreeMap::new();
        if let Some(old) = old {
            per_shard
                .entry(self.shard_key(old))
                .or_insert_with(|| IndexUpdate {
                    index: self.name.clone(),
                    remove: None,
                    add: None,
                    entity: entity.to_string(),
                })
                .remove = Some(old.to_string());
        }
        if let Some(new) = new {
            per_shard
                .entry(self.shard_key(new))
                .or_insert_with(|| IndexUpdate {
                    index: self.name.clone(),
                    remove: None,
                    add: None,
                    entity: entity.to_string(),
                })
                .add = Some(new.to_string());
        }
        match mode {
            IndexMode::Eventual => {
                for (shard, update) in per_shard {
                    self.handle
                        .try_actor_ref::<IndexShard>(shard)?
                        .tell(update)?;
                }
                Ok(aodb_runtime::resolved(Vec::new()))
            }
            IndexMode::Synchronous => {
                let (collector, promise) = gather::<()>(per_shard.len());
                for (shard, update) in per_shard {
                    self.handle
                        .try_actor_ref::<IndexShard>(shard)?
                        .ask_with(update, collector.slot())?;
                }
                Ok(promise)
            }
        }
    }

    /// Looks up the entity keys currently indexed under `value`.
    pub fn lookup(&self, value: &str) -> Result<Promise<Vec<String>>, SendError> {
        self.handle
            .try_actor_ref::<IndexShard>(self.shard_key(value))?
            .ask(IndexLookup {
                index: self.name.clone(),
                value: value.to_string(),
            })
    }

    /// Enumerates all `(value, entities)` postings across every shard.
    #[allow(clippy::type_complexity)]
    pub fn dump(&self) -> Result<Promise<Vec<Vec<(String, Vec<String>)>>>, SendError> {
        let (collector, promise) = gather(self.buckets as usize);
        for bucket in 0..self.buckets {
            let shard = format!("{}:{}", self.name, bucket);
            self.handle.try_actor_ref::<IndexShard>(shard)?.ask_with(
                IndexDump {
                    index: self.name.clone(),
                },
                collector.slot(),
            )?;
        }
        Ok(promise)
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard count.
    pub fn buckets(&self) -> u32 {
        self.buckets
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any index-shard state survives the persistence codec
        /// unchanged.
        #[test]
        fn shard_state_roundtrips(
            entries in proptest::collection::vec(
                (key(), key(), proptest::collection::vec(key(), 0..4)),
                0..8,
            ),
        ) {
            let mut postings: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> =
                BTreeMap::new();
            for (index, value, members) in entries {
                postings
                    .entry(index)
                    .or_default()
                    .entry(value)
                    .or_default()
                    .extend(members);
            }
            assert_codec_roundtrip(&ShardState { postings });
        }
    }
}
