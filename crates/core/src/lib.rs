//! # aodb-core — the actor-oriented database layer
//!
//! This crate turns the bare virtual-actor runtime (`aodb-runtime`) plus
//! the storage substrate (`aodb-store`) into an *actor-oriented database*
//! in the sense of the EDBT 2019 paper: actors enriched with classic DBMS
//! functionality.
//!
//! | Module | Database feature | Paper anchor |
//! |---|---|---|
//! | [`persist`] | Durable actor state with write policies (`EveryChange`, `EveryN`, `OnDeactivate`) | §5 durability discussion |
//! | [`index`] | Hash-partitioned secondary indexes maintained by actors | §1/§7, AODB vision |
//! | [`txn`] | Multi-actor ACID transactions (2PC, non-blocking coordinator) | §4.4 principle |
//! | [`workflow`] | Multi-actor update workflows with retries + idempotence | §4.4 fallback |
//! | [`versioned`] | Versioned non-actor objects with copy-on-transfer provenance | §4.3 principle |
//! | [`query`] | Key registries and scatter/gather multi-actor queries | §2/§6 online queries |
//! | [`reminders`] | Durable periodic callbacks surviving restarts | §6.1 (RDS stores Orleans reminders) |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod index;
pub mod persist;
pub mod query;
pub mod reminders;
#[cfg(test)]
pub(crate) mod test_props;
pub mod txn;
pub mod versioned;
pub mod workflow;

pub use index::{IndexClient, IndexDump, IndexLookup, IndexMode, IndexShard, IndexUpdate};
pub use persist::{state_key, state_key_for, Persisted, PersistentState, RetryPolicy, WritePolicy};
pub use query::{broadcast, CountKeys, KeyRegistry, ListKeys, RegisterKey, UnregisterKey};
pub use reminders::{
    register_reminder, restore_reminders, unregister_reminder, ReminderFired, ReminderSpec,
    ReminderTable,
};
pub use txn::{
    run_transaction, Begin, Decide, Participant, Prepare, TxnCoordinator, TxnId, TxnLock, TxnOp,
    TxnOutcome, Vote,
};
pub use versioned::{TransferRecord, Versioned};
pub use workflow::{
    run_workflow, IdempotenceGuard, StartWorkflow, StepResult, WorkStep, WorkflowEngine,
    WorkflowOutcome,
};

/// The static call topology of every platform-infrastructure actor type:
/// one row per actor, with the outbound edges from
/// [`aodb_runtime::Actor::declared_calls`]. Input to the `aodb-analysis`
/// call-graph extraction.
pub fn call_topology() -> Vec<aodb_runtime::ActorTopology> {
    use aodb_runtime::ActorTopology;
    vec![
        ActorTopology::of::<IndexShard>(),
        ActorTopology::of::<KeyRegistry>(),
        ActorTopology::of::<ReminderTable>(),
        ActorTopology::of::<TxnCoordinator>(),
        ActorTopology::of::<WorkflowEngine>(),
    ]
}
