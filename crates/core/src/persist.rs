//! Persistent actor state: the AODB analogue of Orleans' grain state
//! storage (`WriteStateAsync`, write-on-deactivate, read-on-activate).
//!
//! An actor embeds a [`Persisted<S>`] field wrapping its durable state.
//! `load()` (from `on_activate`) pulls the latest state from the store;
//! mutations go through [`Persisted::mutate`], which applies the configured
//! [`WritePolicy`]; `flush()` (from `on_deactivate`) writes back dirty
//! state. The paper discusses exactly this policy space in Section 5:
//! structural entities want immediate durability, sensor data collects a
//! window of updates before forcing them to storage (200 writes/s to the
//! cloud store otherwise).

use std::sync::Arc;

use aodb_runtime::{ActorId, ActorKey};
use aodb_store::{codec, Key, StateStore, StoreError, StoreResult};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Marker for state types storable by [`Persisted`].
pub trait PersistentState: Serialize + DeserializeOwned + Default + Send + 'static {}

impl<T: Serialize + DeserializeOwned + Default + Send + 'static> PersistentState for T {}

/// When dirty state is written back to the store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WritePolicy {
    /// Write after every mutation (structural entities: organizations,
    /// sensors, projects — the paper's "immediately durable" class).
    EveryChange,
    /// Write after every `n` mutations (windowed sensor ingest).
    EveryN(u32),
    /// Write only when the activation deactivates (the paper's benchmark
    /// configuration: "upload ... only ... when the Orleans silo service
    /// is shut down").
    #[default]
    OnDeactivate,
}

/// Bounded retry/backoff for persistence writes.
///
/// The default stays **single-attempt** — every failed save is recorded,
/// never amplified — matching the paper's "failed cloud write, retry at
/// the next policy trigger" stance. Chaos configurations opt into retries
/// to ride out seeded error bursts; retries never apply to
/// [`StoreError::Codec`] failures (deterministic — retrying cannot help).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per save (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub initial_backoff: std::time::Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: std::time::Duration,
    /// Shared counter bumped once per *retry* (attempts beyond the first),
    /// typically the runtime's `persist_retries` metric.
    pub counter: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Single attempt, no retries (the default).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
            counter: None,
        }
    }

    /// `max_attempts` total attempts with `initial_backoff` doubling up to
    /// 16× between them.
    pub fn attempts(max_attempts: u32, initial_backoff: std::time::Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            initial_backoff,
            max_backoff: initial_backoff * 16,
            counter: None,
        }
    }

    /// Reports retries into `counter` (e.g. the runtime's `persist_retries`
    /// metric).
    pub fn with_counter(mut self, counter: Arc<std::sync::atomic::AtomicU64>) -> Self {
        self.counter = Some(counter);
        self
    }
}

/// Storage key namespace for actor state blobs.
const STATE_NAMESPACE: &str = "actor-state";

/// Builds the storage key for an actor's state blob.
pub fn state_key(type_name: &str, key: &ActorKey) -> Key {
    Key::with_sort(STATE_NAMESPACE, type_name, &key.as_display())
}

/// Builds the storage key from a full [`ActorId`] using the registered
/// type name.
pub fn state_key_for(type_name: &str, id: &ActorId) -> Key {
    state_key(type_name, &id.key)
}

/// A durable state cell embedded in an actor.
pub struct Persisted<S: PersistentState> {
    state: S,
    key: Key,
    store: Arc<dyn StateStore>,
    policy: WritePolicy,
    dirty: bool,
    mutations_since_save: u32,
    /// Save attempts that failed (throttling, I/O); the actor keeps running
    /// on in-memory state, mirroring a failed cloud write with retry left
    /// to the next policy trigger.
    save_errors: u64,
    last_error: Option<StoreError>,
    retry: RetryPolicy,
}

impl<S: PersistentState> Persisted<S> {
    /// Creates the cell with `S::default()` state. Call
    /// [`Persisted::load`] from `on_activate` before first use.
    pub fn new(store: Arc<dyn StateStore>, key: Key, policy: WritePolicy) -> Self {
        Persisted {
            state: S::default(),
            key,
            store,
            policy,
            dirty: false,
            mutations_since_save: 0,
            save_errors: 0,
            last_error: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Installs a bounded retry/backoff policy for saves. The default is
    /// single-attempt; see [`RetryPolicy`].
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Convenience: cell keyed by actor type name + key.
    pub fn for_actor(
        store: Arc<dyn StateStore>,
        type_name: &str,
        key: &ActorKey,
        policy: WritePolicy,
    ) -> Self {
        Persisted::new(store, state_key(type_name, key), policy)
    }

    /// Loads existing state from the store, replacing the in-memory value.
    /// Returns `true` when stored state existed.
    pub fn load(&mut self) -> StoreResult<bool> {
        match self.store.get(&self.key)? {
            Some(bytes) => {
                self.state = codec::decode_state(&bytes)?;
                self.dirty = false;
                self.mutations_since_save = 0;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Like [`Persisted::load`] but records failures instead of
    /// propagating them, for use in `on_activate` hooks that cannot fail.
    pub fn load_or_default(&mut self) -> bool {
        match self.load() {
            Ok(found) => found,
            Err(e) => {
                self.save_errors += 1;
                self.last_error = Some(e);
                false
            }
        }
    }

    /// Read access to the state.
    pub fn get(&self) -> &S {
        &self.state
    }

    /// Mutates the state, then applies the write policy.
    pub fn mutate<R>(&mut self, f: impl FnOnce(&mut S) -> R) -> R {
        let out = f(&mut self.state);
        self.dirty = true;
        self.mutations_since_save += 1;
        self.apply_policy();
        out
    }

    /// Mutable access *without* marking dirty or applying policy; for
    /// transient fields inside otherwise-persistent state. Prefer
    /// [`Persisted::mutate`].
    pub fn get_mut_untracked(&mut self) -> &mut S {
        &mut self.state
    }

    fn apply_policy(&mut self) {
        let should_save = match self.policy {
            WritePolicy::EveryChange => true,
            WritePolicy::EveryN(n) => self.mutations_since_save >= n.max(1),
            WritePolicy::OnDeactivate => false,
        };
        if should_save {
            if let Err(e) = self.save() {
                self.save_errors += 1;
                self.last_error = Some(e);
            }
        }
    }

    /// Forces a write of the current state (Orleans `WriteStateAsync`),
    /// applying the configured [`RetryPolicy`] on transient failures.
    pub fn save(&mut self) -> StoreResult<()> {
        self.save_impl(false)
    }

    fn save_impl(&mut self, deferred: bool) -> StoreResult<()> {
        let bytes = codec::encode_state(&self.state)?;
        let mut backoff = self.retry.initial_backoff;
        let mut attempt = 1u32;
        loop {
            let res = if deferred {
                self.store.put_deferred(&self.key, bytes.clone())
            } else {
                self.store.put(&self.key, bytes.clone())
            };
            match res {
                Ok(()) => {
                    self.dirty = false;
                    self.mutations_since_save = 0;
                    return Ok(());
                }
                // Codec errors are deterministic; retrying cannot help.
                Err(e @ StoreError::Codec(_)) => return Err(e),
                Err(e) => {
                    if attempt >= self.retry.max_attempts {
                        return Err(e);
                    }
                    attempt += 1;
                    if let Some(counter) = &self.retry.counter {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff.min(self.retry.max_backoff));
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
    }

    /// Writes back dirty state, recording (not propagating) failures. The
    /// `on_deactivate` entry point.
    ///
    /// Uses [`StateStore::put_deferred`], the write-coalescing half of the
    /// deactivation sweep: the put skips its individual durability barrier
    /// and the runtime's `on_deactivation_sweep` hook issues one `sync()`
    /// covering the whole batch of flushed actors. On plain stores
    /// `put_deferred` degrades to `put`, so `flush` is never *less*
    /// durable than before — only cheaper when sweeps are wired up.
    pub fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        if let Err(e) = self.save_impl(true) {
            self.save_errors += 1;
            self.last_error = Some(e);
        }
    }

    /// Deletes the stored state (entity removal).
    pub fn clear_storage(&mut self) -> StoreResult<()> {
        self.store.delete(&self.key)?;
        self.dirty = false;
        Ok(())
    }

    /// Whether in-memory state has unsaved mutations.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of failed save/load attempts.
    pub fn save_errors(&self) -> u64 {
        self.save_errors
    }

    /// Last storage error, if any.
    pub fn last_error(&self) -> Option<&StoreError> {
        self.last_error.as_ref()
    }

    /// The storage key of this cell.
    pub fn storage_key(&self) -> &Key {
        &self.key
    }

    /// The configured write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aodb_store::{ExhaustionBehavior, MemStore, ProvisionedConfig, ProvisionedStore};
    use serde::Deserialize;
    use std::time::Duration;

    #[derive(Serialize, Deserialize, Default, PartialEq, Debug)]
    struct Temperature {
        readings: Vec<f64>,
        alerts: u32,
    }

    fn cell(store: &Arc<dyn StateStore>, policy: WritePolicy) -> Persisted<Temperature> {
        Persisted::new(Arc::clone(store), Key::new("test", "t1"), policy)
    }

    #[test]
    fn load_before_any_save_returns_default() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::OnDeactivate);
        assert!(!p.load().unwrap());
        assert_eq!(p.get(), &Temperature::default());
    }

    #[test]
    fn every_change_policy_saves_immediately() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::EveryChange);
        p.mutate(|s| s.readings.push(21.5));
        assert!(!p.is_dirty());

        let mut fresh = cell(&store, WritePolicy::EveryChange);
        assert!(fresh.load().unwrap());
        assert_eq!(fresh.get().readings, vec![21.5]);
    }

    #[test]
    fn on_deactivate_policy_saves_only_on_flush() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::OnDeactivate);
        p.mutate(|s| s.alerts = 3);
        assert!(p.is_dirty());

        let mut fresh = cell(&store, WritePolicy::OnDeactivate);
        assert!(!fresh.load().unwrap(), "nothing saved yet");

        p.flush();
        assert!(!p.is_dirty());
        assert!(fresh.load().unwrap());
        assert_eq!(fresh.get().alerts, 3);
    }

    #[test]
    fn every_n_policy_batches_writes() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::EveryN(5));
        for i in 0..4 {
            p.mutate(|s| s.readings.push(i as f64));
        }
        let mut fresh = cell(&store, WritePolicy::OnDeactivate);
        assert!(!fresh.load().unwrap(), "4 < 5: no write yet");
        p.mutate(|s| s.readings.push(4.0));
        assert!(fresh.load().unwrap(), "5th mutation triggers the write");
        assert_eq!(fresh.get().readings.len(), 5);
    }

    #[test]
    fn flush_is_noop_when_clean() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::OnDeactivate);
        p.flush();
        let mut fresh = cell(&store, WritePolicy::OnDeactivate);
        assert!(!fresh.load().unwrap());
    }

    #[test]
    fn throttled_save_is_recorded_not_fatal() {
        let throttling = ProvisionedStore::new(
            MemStore::new(),
            ProvisionedConfig {
                read_units: 100,
                write_units: 1,
                burst_seconds: 1.0,
                on_exhausted: ExhaustionBehavior::Throttle,
                request_latency: Duration::ZERO,
            },
        );
        let store: Arc<dyn StateStore> = Arc::new(throttling);
        let mut p = cell(&store, WritePolicy::EveryChange);
        // Burn the burst, then keep mutating: saves fail but state advances.
        for i in 0..30 {
            p.mutate(|s| s.readings.push(i as f64));
        }
        assert_eq!(p.get().readings.len(), 30);
        assert!(p.save_errors() > 0);
        assert!(matches!(p.last_error(), Some(StoreError::Throttled)));
    }

    #[test]
    fn clear_storage_removes_blob() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mut p = cell(&store, WritePolicy::EveryChange);
        p.mutate(|s| s.alerts = 1);
        p.clear_storage().unwrap();
        let mut fresh = cell(&store, WritePolicy::OnDeactivate);
        assert!(!fresh.load().unwrap());
    }

    #[test]
    fn retry_policy_rides_out_transient_failures() {
        use aodb_store::ChaosStore;
        use std::sync::atomic::{AtomicU64, Ordering};

        // Fails exactly the first N attempts, then heals.
        struct FlakyUntil {
            inner: MemStore,
            remaining: AtomicU64,
        }
        impl StateStore for FlakyUntil {
            fn get(&self, key: &Key) -> aodb_store::StoreResult<Option<aodb_store::Bytes>> {
                self.inner.get(key)
            }
            fn put(&self, key: &Key, value: aodb_store::Bytes) -> StoreResult<()> {
                if self
                    .remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(StoreError::Io("transient".into()));
                }
                self.inner.put(key, value)
            }
            fn delete(&self, key: &Key) -> StoreResult<()> {
                self.inner.delete(key)
            }
            fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, aodb_store::Bytes)>> {
                self.inner.scan_prefix(prefix)
            }
        }

        let store: Arc<dyn StateStore> = Arc::new(FlakyUntil {
            inner: MemStore::new(),
            remaining: AtomicU64::new(2),
        });
        let retries = Arc::new(AtomicU64::new(0));
        let mut p = cell(&store, WritePolicy::EveryChange).with_retry(
            RetryPolicy::attempts(3, Duration::ZERO).with_counter(Arc::clone(&retries)),
        );
        p.mutate(|s| s.alerts = 7);
        // Two failures absorbed by retries; the third attempt landed.
        assert_eq!(p.save_errors(), 0);
        assert_eq!(retries.load(Ordering::SeqCst), 2);
        let mut fresh = cell(&store, WritePolicy::OnDeactivate);
        assert!(fresh.load().unwrap());
        assert_eq!(fresh.get().alerts, 7);

        // Exhausted retries surface as a recorded error, not a panic, and
        // the attempt count is bounded by the policy.
        let chaos = Arc::new(ChaosStore::manual(MemStore::new()));
        chaos.fail_writes(true);
        let chaos_dyn: Arc<dyn StateStore> = Arc::clone(&chaos) as Arc<dyn StateStore>;
        let mut q: Persisted<Temperature> = Persisted::new(
            Arc::clone(&chaos_dyn),
            Key::new("test", "t2"),
            WritePolicy::EveryChange,
        )
        .with_retry(RetryPolicy::attempts(3, Duration::ZERO));
        q.mutate(|s| s.alerts = 1);
        assert_eq!(q.save_errors(), 1);
        assert_eq!(chaos.write_attempts(), 3, "bounded by max_attempts");
    }

    #[test]
    fn state_keys_isolate_types_and_keys() {
        let k1 = state_key("shm.sensor", &ActorKey::from(1u64));
        let k2 = state_key("shm.sensor", &ActorKey::from(2u64));
        let k3 = state_key("shm.channel", &ActorKey::from(1u64));
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }
}
