//! Multi-actor queries: key registries and scatter/gather broadcasts.
//!
//! AODBs lack full declarative multi-actor querying (the paper is explicit
//! about this, deferring complex analytics to a warehouse); what the online
//! platform needs is (a) knowing *which* actors of a type exist — the
//! runtime directory only tracks currently-active ones — and (b) fanning a
//! query out over a set of actors and gathering the replies. [`KeyRegistry`]
//! actors provide (a) as persistent membership lists; [`broadcast`]
//! provides (b) on top of [`Collector`].

use std::collections::BTreeSet;
use std::sync::Arc;

use aodb_runtime::{
    gather, Actor, ActorContext, Handler, Message, Promise, Recipient, Runtime, SendError,
};
use aodb_store::StateStore;
use serde::{Deserialize, Serialize};

use crate::persist::{Persisted, WritePolicy};

/// Adds a key to the registry.
#[derive(Clone, Debug)]
pub struct RegisterKey(pub String);
impl Message for RegisterKey {
    type Reply = ();
}

/// Removes a key from the registry.
#[derive(Clone, Debug)]
pub struct UnregisterKey(pub String);
impl Message for UnregisterKey {
    type Reply = ();
}

/// Lists all registered keys.
#[derive(Clone, Copy, Debug)]
pub struct ListKeys;
impl Message for ListKeys {
    type Reply = Vec<String>;
}

/// Number of registered keys.
#[derive(Clone, Copy, Debug)]
pub struct CountKeys;
impl Message for CountKeys {
    type Reply = usize;
}

#[derive(Default, Serialize, Deserialize)]
struct RegistryState {
    keys: BTreeSet<String>,
}

/// A persistent membership list, typically one per actor type or per
/// tenant-scoped collection (e.g. `"cows-of:farm-12"`).
pub struct KeyRegistry {
    state: Persisted<RegistryState>,
}

impl KeyRegistry {
    /// Registers the registry actor type backed by `store`.
    pub fn register(rt: &Runtime, store: Arc<dyn StateStore>) {
        rt.register(move |id| KeyRegistry {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Self::TYPE_NAME,
                &id.key,
                WritePolicy::EveryChange,
            ),
        });
    }
}

impl Actor for KeyRegistry {
    const TYPE_NAME: &'static str = "aodb.key-registry";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<RegisterKey> for KeyRegistry {
    fn handle(&mut self, msg: RegisterKey, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.keys.insert(msg.0));
    }
}

impl Handler<UnregisterKey> for KeyRegistry {
    fn handle(&mut self, msg: UnregisterKey, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.keys.remove(&msg.0));
    }
}

impl Handler<ListKeys> for KeyRegistry {
    fn handle(&mut self, _msg: ListKeys, _ctx: &mut ActorContext<'_>) -> Vec<String> {
        self.state.get().keys.iter().cloned().collect()
    }
}

impl Handler<CountKeys> for KeyRegistry {
    fn handle(&mut self, _msg: CountKeys, _ctx: &mut ActorContext<'_>) -> usize {
        self.state.get().keys.len()
    }
}

/// Sends `msg` to every recipient and gathers all replies (unordered).
///
/// External clients `wait()` on the promise; actors pass a collector slot
/// of their own instead — see [`aodb_runtime::Collector`].
pub fn broadcast<M>(
    recipients: &[Recipient<M>],
    msg: M,
) -> Result<Promise<Vec<M::Reply>>, SendError>
where
    M: Message + Clone,
{
    let (collector, promise) = gather(recipients.len());
    for recipient in recipients {
        recipient.ask_with(msg.clone(), collector.slot())?;
    }
    Ok(promise)
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any key-registry state survives the persistence codec
        /// unchanged.
        #[test]
        fn registry_state_roundtrips(
            keys in proptest::collection::vec(key(), 0..8),
        ) {
            assert_codec_roundtrip(&RegistryState {
                keys: keys.into_iter().collect(),
            });
        }
    }
}
