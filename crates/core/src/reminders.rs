//! Durable reminders: persistent periodic callbacks.
//!
//! Orleans distinguishes *timers* (in-memory, die with the activation)
//! from *reminders* (persistent, re-armed after restarts — the paper's
//! setup stores them in RDS as part of "Orleans system storage"). Here a
//! [`ReminderTable`] actor persists reminder registrations, and
//! [`restore_reminders`] re-arms them on a fresh runtime, delivering
//! [`ReminderFired`] messages to the target actors on their period.
//!
//! The SHM platform's periodic aggregate flushes or health pings are the
//! kind of work this exists for.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime, SendError, TimerHandle};
use aodb_store::StateStore;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::persist::{Persisted, WritePolicy};

/// The message a reminder delivers on each firing.
#[derive(Clone, Debug)]
pub struct ReminderFired {
    /// Reminder name (unique within its table).
    pub name: String,
    /// Payload captured at registration.
    pub payload: Value,
}

impl Message for ReminderFired {
    type Reply = ();
}

/// A persisted reminder registration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReminderSpec {
    /// Unique name within the table.
    pub name: String,
    /// Registered type name of the target actor.
    pub target_type: String,
    /// Key of the target actor.
    pub target_key: String,
    /// Firing period in milliseconds.
    pub period_ms: u64,
    /// Payload delivered on each firing.
    pub payload: Value,
}

/// Inserts (or replaces) a reminder registration.
pub struct PutReminder(pub ReminderSpec);
impl Message for PutReminder {
    type Reply = ();
}

/// Removes a registration; replies whether it existed.
pub struct RemoveReminder(pub String);
impl Message for RemoveReminder {
    type Reply = bool;
}

/// Lists all registrations.
#[derive(Clone, Copy)]
pub struct ListReminders;
impl Message for ListReminders {
    type Reply = Vec<ReminderSpec>;
}

#[derive(Default, Serialize, Deserialize)]
struct TableState {
    reminders: Vec<ReminderSpec>,
}

/// The persistent reminder registry actor.
pub struct ReminderTable {
    state: Persisted<TableState>,
}

impl ReminderTable {
    /// Registers the table actor type.
    pub fn register(rt: &Runtime, store: Arc<dyn StateStore>) {
        rt.register(move |id| ReminderTable {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Self::TYPE_NAME,
                &id.key,
                WritePolicy::EveryChange,
            ),
        });
    }
}

impl Actor for ReminderTable {
    const TYPE_NAME: &'static str = "aodb.reminder-table";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<PutReminder> for ReminderTable {
    fn handle(&mut self, msg: PutReminder, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.reminders.retain(|r| r.name != msg.0.name);
            s.reminders.push(msg.0);
        });
    }
}

impl Handler<RemoveReminder> for ReminderTable {
    fn handle(&mut self, msg: RemoveReminder, _ctx: &mut ActorContext<'_>) -> bool {
        self.state.mutate(|s| {
            let before = s.reminders.len();
            s.reminders.retain(|r| r.name != msg.0);
            s.reminders.len() != before
        })
    }
}

impl Handler<ListReminders> for ReminderTable {
    fn handle(&mut self, _msg: ListReminders, _ctx: &mut ActorContext<'_>) -> Vec<ReminderSpec> {
        self.state.get().reminders.clone()
    }
}

fn arm<A>(rt: &Runtime, spec: &ReminderSpec) -> TimerHandle
where
    A: Actor + Handler<ReminderFired>,
{
    let target = rt.actor_ref::<A>(spec.target_key.as_str());
    rt.schedule_interval(
        &target,
        ReminderFired {
            name: spec.name.clone(),
            payload: spec.payload.clone(),
        },
        Duration::from_millis(spec.period_ms.max(1)),
    )
}

/// Registers a durable reminder: persists the spec in `table` and arms it
/// on the current runtime. Returns the (cancellable) timer handle for this
/// runtime's lifetime; after a restart, [`restore_reminders`] re-arms it.
pub fn register_reminder<A>(
    rt: &Runtime,
    table: &str,
    name: &str,
    target_key: &str,
    period: Duration,
    payload: Value,
) -> Result<TimerHandle, SendError>
where
    A: Actor + Handler<ReminderFired>,
{
    let spec = ReminderSpec {
        name: name.to_string(),
        target_type: A::TYPE_NAME.to_string(),
        target_key: target_key.to_string(),
        period_ms: period.as_millis() as u64,
        payload,
    };
    rt.try_actor_ref::<ReminderTable>(table)?
        .tell(PutReminder(spec.clone()))?;
    Ok(arm::<A>(rt, &spec))
}

/// Unregisters a reminder from the table. The caller should also cancel
/// any live [`TimerHandle`] for it on this runtime.
pub fn unregister_reminder(
    rt: &Runtime,
    table: &str,
    name: &str,
) -> Result<aodb_runtime::Promise<bool>, SendError> {
    rt.try_actor_ref::<ReminderTable>(table)?
        .ask(RemoveReminder(name.to_string()))
}

/// Re-arms every reminder in `table` whose target type is `A` (each actor
/// type participating in reminders calls this once at startup, mirroring
/// Orleans' reminder-service bootstrap). Returns the live timer handles.
pub fn restore_reminders<A>(rt: &Runtime, table: &str) -> Result<Vec<TimerHandle>, SendError>
where
    A: Actor + Handler<ReminderFired>,
{
    let specs = rt
        .try_actor_ref::<ReminderTable>(table)?
        .ask(ListReminders)?
        .wait_for(Duration::from_secs(10))
        .map_err(|_| SendError::RuntimeShutdown)?;
    Ok(specs
        .iter()
        .filter(|s| s.target_type == A::TYPE_NAME)
        .map(|s| arm::<A>(rt, s))
        .collect())
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, json_value, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any reminder-table state survives the persistence codec
        /// unchanged — including arbitrary JSON payloads.
        #[test]
        fn table_state_roundtrips(
            reminders in proptest::collection::vec(
                (key(), key(), key(), any::<u64>(), json_value()),
                0..6,
            ),
        ) {
            let reminders = reminders
                .into_iter()
                .map(|(name, target_type, target_key, period_ms, payload)| ReminderSpec {
                    name,
                    target_type,
                    target_key,
                    period_ms,
                    payload,
                })
                .collect();
            assert_codec_roundtrip(&TableState { reminders });
        }
    }
}
