//! Shared proptest strategies and the codec round-trip assertion for the
//! persisted-state tests (the `codec_tests` modules next to each state
//! type).

use proptest::prelude::*;
use serde_json::Value;

/// Encodes with the store codec, decodes, and compares canonically
/// (`serde_json::Value` is `BTreeMap`-backed, so the comparison is
/// field-order-insensitive but misses nothing).
pub(crate) fn assert_codec_roundtrip<T>(state: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let bytes = aodb_store::codec::encode_state(state).expect("state must encode");
    let back: T = aodb_store::codec::decode_state(&bytes).expect("state must decode");
    assert_eq!(
        serde_json::to_value(state).expect("canonical form"),
        serde_json::to_value(&back).expect("canonical form"),
        "state drifted across the persistence codec"
    );
}

/// Actor-key-shaped strings, including the empty string.
pub(crate) fn key() -> impl Strategy<Value = String> {
    "[a-z0-9/_-]{0,12}"
}

/// Arbitrary (shallow) JSON payloads: every scalar kind plus one level
/// of array and object nesting — the shapes reminder payloads take.
pub(crate) fn json_value() -> impl Strategy<Value = Value> {
    let scalar = || {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(|n| serde_json::to_value(&n).expect("number")),
            (-1e9f64..1e9).prop_map(|f| serde_json::to_value(&f).expect("number")),
            key().prop_map(Value::String),
        ]
    };
    prop_oneof![
        scalar(),
        proptest::collection::vec(scalar(), 0..4).prop_map(Value::Array),
        proptest::collection::vec((key(), scalar()), 0..4)
            .prop_map(|fields| Value::Object(fields.into_iter().collect())),
    ]
}
