//! Multi-actor ACID transactions via two-phase commit.
//!
//! The paper's fourth modeling principle (Section 4.4): *"Employ
//! transactions to update data across actors consistently"* — e.g. selling
//! a cow must atomically update the `Cow` actor and both `Farmer` actors.
//! Orleans was growing distributed transactions at the time; here we
//! implement the classic presumed-abort 2PC as actors:
//!
//! * A [`TxnCoordinator`] actor drives prepare → decide without ever
//!   blocking a turn: votes and acks come back through [`Collector`]s that
//!   feed continuation messages to the coordinator.
//! * Participants are any actors handling [`Prepare`] and [`Decide`];
//!   the [`TxnLock`] helper gives them correct lock/vote/apply behaviour.
//! * Lock conflicts vote **No** immediately (no lock waiting), so
//!   transactions never deadlock; contended transactions abort and the
//!   caller retries — the standard optimistic pattern.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use aodb_runtime::{
    Actor, ActorContext, ActorRef, Collector, Handler, Message, Promise, Recipient, ReplyTo,
    SendError,
};
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Globally unique transaction identifier.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TxnId {
    /// Key of the coordinating actor.
    pub coordinator: String,
    /// Sequence number within that coordinator.
    pub seq: u64,
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.coordinator, self.seq)
    }
}

/// Operation payload carried to a participant during prepare. The schema
/// is application-defined JSON, keeping the protocol uniform across actor
/// types.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnOp(pub Value);

/// Phase-1 message: participant must lock and validate.
pub struct Prepare {
    /// Transaction identity.
    pub txn: TxnId,
    /// The operation this participant would apply on commit.
    pub op: TxnOp,
}

impl Message for Prepare {
    type Reply = Vote;
}

/// A participant's phase-1 vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Locked and validated; will apply on commit.
    Yes,
    /// Refused (lock conflict or validation failure); transaction aborts.
    No(String),
}

/// Phase-2 message: apply (`commit == true`) or discard the prepared
/// operation. Idempotent: deciding an unknown transaction is a no-op.
pub struct Decide {
    /// Transaction identity.
    pub txn: TxnId,
    /// Commit or abort.
    pub commit: bool,
}

impl Message for Decide {
    type Reply = ();
}

/// Type-erased handle to one transaction participant.
#[derive(Clone)]
pub struct Participant {
    prepare: Recipient<Prepare>,
    decide: Recipient<Decide>,
}

impl Participant {
    /// Builds a participant handle from a typed actor reference.
    pub fn of<A>(actor: &ActorRef<A>) -> Participant
    where
        A: Actor + Handler<Prepare> + Handler<Decide>,
    {
        Participant {
            prepare: actor.recipient(),
            decide: actor.recipient(),
        }
    }
}

/// Final transaction outcome delivered to the initiator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All participants prepared and applied.
    Committed,
    /// Aborted; the string explains why (first No vote, or timeout).
    Aborted(String),
}

/// Starts a transaction. `ops` pairs each participant with the operation
/// it should apply. The promise resolves after phase 2 completes at every
/// participant.
pub fn run_transaction(
    coordinator: &ActorRef<TxnCoordinator>,
    ops: Vec<(Participant, TxnOp)>,
    timeout: Duration,
) -> Result<Promise<TxnOutcome>, SendError> {
    let (done, promise) = ReplyTo::promise();
    coordinator.tell(Begin { ops, done, timeout })?;
    Ok(promise)
}

// ------------------------------------------------------- coordinator actor

/// Client request starting a transaction.
pub struct Begin {
    /// Participants and their operations.
    pub ops: Vec<(Participant, TxnOp)>,
    /// Where the outcome goes.
    pub done: ReplyTo<TxnOutcome>,
    /// Abort the transaction if votes do not arrive within this budget.
    pub timeout: Duration,
}

impl Message for Begin {
    type Reply = ();
}

struct VotesIn {
    seq: u64,
    votes: Vec<Vote>,
}
impl Message for VotesIn {
    type Reply = ();
}

struct AcksIn {
    seq: u64,
}
impl Message for AcksIn {
    type Reply = ();
}

struct TxnTimeout {
    seq: u64,
}
impl Message for TxnTimeout {
    type Reply = ();
}

struct PendingTxn {
    participants: Vec<Participant>,
    done: Option<ReplyTo<TxnOutcome>>,
    outcome: Option<TxnOutcome>,
}

/// The 2PC coordinator. Stateless across transactions (presumed abort):
/// a coordinator crash before decision implicitly aborts via participant
/// timeouts, so no coordinator log is kept.
#[derive(Default)]
pub struct TxnCoordinator {
    next_seq: u64,
    pending: HashMap<u64, PendingTxn>,
}

impl TxnCoordinator {
    /// Registers the coordinator type with a runtime.
    pub fn register(rt: &aodb_runtime::Runtime) {
        rt.register(|_id| TxnCoordinator::default());
    }

    fn decide(
        &mut self,
        seq: u64,
        commit: bool,
        reason: Option<String>,
        ctx: &mut ActorContext<'_>,
    ) {
        let Some(pending) = self.pending.get_mut(&seq) else {
            return;
        };
        if pending.outcome.is_some() {
            return; // already decided (timeout raced with votes)
        }
        pending.outcome = Some(if commit {
            TxnOutcome::Committed
        } else {
            TxnOutcome::Aborted(reason.unwrap_or_else(|| "aborted".into()))
        });
        let me = ctx.actor_ref::<TxnCoordinator>(ctx.key().clone());
        let acks = Collector::new(pending.participants.len(), move |_acks: Vec<()>| {
            let _ = me.tell(AcksIn { seq });
        });
        let txn = TxnId {
            coordinator: ctx.key().to_string(),
            seq,
        };
        for p in &pending.participants {
            let _ = p.decide.ask_with(
                Decide {
                    txn: txn.clone(),
                    commit,
                },
                acks.slot(),
            );
        }
    }
}

impl Actor for TxnCoordinator {
    const TYPE_NAME: &'static str = "aodb.txn-coordinator";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Prepare/Decide go to caller-supplied participant recipients —
        // the concrete actor types are not known statically.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send_any()];
        CALLS
    }
}

impl Handler<Begin> for TxnCoordinator {
    fn handle(&mut self, msg: Begin, ctx: &mut ActorContext<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let txn = TxnId {
            coordinator: ctx.key().to_string(),
            seq,
        };

        let me = ctx.actor_ref::<TxnCoordinator>(ctx.key().clone());
        let votes = Collector::new(msg.ops.len(), move |votes: Vec<Vote>| {
            let _ = me.tell(VotesIn { seq, votes });
        });
        for (participant, op) in &msg.ops {
            let _ = participant.prepare.ask_with(
                Prepare {
                    txn: txn.clone(),
                    op: op.clone(),
                },
                votes.slot(),
            );
        }
        self.pending.insert(
            seq,
            PendingTxn {
                participants: msg.ops.into_iter().map(|(p, _)| p).collect(),
                done: Some(msg.done),
                outcome: None,
            },
        );
        ctx.notify_self_after::<TxnCoordinator, TxnTimeout>(TxnTimeout { seq }, msg.timeout);
    }
}

impl Handler<VotesIn> for TxnCoordinator {
    fn handle(&mut self, msg: VotesIn, ctx: &mut ActorContext<'_>) {
        let veto = msg.votes.iter().find_map(|v| match v {
            Vote::Yes => None,
            Vote::No(reason) => Some(reason.clone()),
        });
        self.decide(msg.seq, veto.is_none(), veto, ctx);
    }
}

impl Handler<AcksIn> for TxnCoordinator {
    fn handle(&mut self, msg: AcksIn, _ctx: &mut ActorContext<'_>) {
        if let Some(mut pending) = self.pending.remove(&msg.seq) {
            let outcome = pending
                .outcome
                .take()
                .unwrap_or_else(|| TxnOutcome::Aborted("acks arrived without decision".into()));
            if let Some(done) = pending.done.take() {
                done.deliver(outcome);
            }
        }
    }
}

impl Handler<TxnTimeout> for TxnCoordinator {
    fn handle(&mut self, msg: TxnTimeout, ctx: &mut ActorContext<'_>) {
        // Only bites if the transaction is still undecided.
        self.decide(msg.seq, false, Some("transaction timed out".into()), ctx);
    }
}

// ------------------------------------------------------- participant side

/// Per-participant transaction lock: one prepared transaction at a time.
///
/// Embed one `TxnLock<P>` in each transactional actor, where `P` is the
/// decoded pending operation. The actor:
///
/// 1. on [`Prepare`]: validates the op, then [`TxnLock::try_prepare`] —
///    vote [`Vote::Yes`] on success, [`Vote::No`] on conflict/invalid;
/// 2. on [`Decide`]: [`TxnLock::decide`] — applies the returned payload
///    when it yields one.
#[derive(Default, Debug, Serialize, Deserialize)]
pub struct TxnLock<P> {
    holder: Option<(TxnId, P)>,
}

impl<P> TxnLock<P> {
    /// Fresh, unlocked.
    pub fn new() -> Self {
        TxnLock { holder: None }
    }

    /// Attempts to lock for `txn` with pending payload. Re-preparing the
    /// same transaction replaces the payload (message retry).
    pub fn try_prepare(&mut self, txn: TxnId, pending: P) -> Vote {
        match &self.holder {
            Some((held, _)) if *held != txn => Vote::No(format!("locked by transaction {held}")),
            _ => {
                self.holder = Some((txn, pending));
                Vote::Yes
            }
        }
    }

    /// Processes phase 2. Returns `Some(payload)` exactly when `txn` held
    /// the lock **and** the decision is commit; the caller applies it.
    /// Unknown transactions are ignored (idempotence).
    pub fn decide(&mut self, txn: &TxnId, commit: bool) -> Option<P> {
        match &self.holder {
            Some((held, _)) if held == txn => {
                let (_, payload) = self.holder.take().expect("holder checked");
                commit.then_some(payload)
            }
            _ => None,
        }
    }

    /// Whether a transaction currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.holder.is_some()
    }
}
