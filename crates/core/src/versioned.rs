//! Versioned non-actor objects.
//!
//! The paper's third modeling principle (Section 4.3): frequently accessed
//! *inanimate* entities (meat cuts, meat products) can be modeled as
//! non-actor objects encapsulated in the responsible actor's state instead
//! of as actors. State mutation across the supply chain is captured by
//! **object versions**: on transfer, the object is *copied* from the
//! sending actor to the receiving actor, which owns a new version it can
//! update locally. Reads become local state access (no messaging), at the
//! cost of copy overhead and controlled redundancy.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// One transfer edge in a version chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Responsible actor before the transfer (display form).
    pub from: String,
    /// Responsible actor after the transfer.
    pub to: String,
    /// Version number created by the transfer.
    pub version: u32,
    /// Application timestamp (ms) of the hand-over.
    pub at_ms: u64,
}

/// A versioned copy of an inanimate entity, living inside some actor's
/// state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Versioned<T> {
    /// Stable identity of the real-world entity (e.g. a GS1 code): shared
    /// by all versions across all actors.
    pub entity: String,
    /// Monotone version number; bumped on every transfer.
    pub version: u32,
    /// The actor currently responsible for this version.
    pub owner: String,
    /// Provenance: every transfer this entity went through, oldest first.
    pub history: Vec<TransferRecord>,
    /// The entity data itself; the owning actor mutates it freely.
    pub payload: T,
}

impl<T> Versioned<T> {
    /// Creates version 0, owned by `owner`.
    pub fn new(entity: impl Into<String>, owner: impl Into<String>, payload: T) -> Self {
        Versioned {
            entity: entity.into(),
            version: 0,
            owner: owner.into(),
            history: Vec::new(),
            payload,
        }
    }

    /// Produces the next version for `new_owner`, recording provenance.
    /// The source keeps its (now historical) version; the returned copy is
    /// what crosses the actor boundary.
    pub fn transfer_to(&self, new_owner: impl Into<String>, at_ms: u64) -> Self
    where
        T: Clone,
    {
        let new_owner = new_owner.into();
        let mut history = self.history.clone();
        history.push(TransferRecord {
            from: self.owner.clone(),
            to: new_owner.clone(),
            version: self.version + 1,
            at_ms,
        });
        Versioned {
            entity: self.entity.clone(),
            version: self.version + 1,
            owner: new_owner,
            history,
            payload: self.payload.clone(),
        }
    }

    /// Every actor that has ever been responsible, in order (origin first,
    /// current owner last). This is the tracing walk consumers ask for.
    pub fn provenance(&self) -> Vec<String> {
        let mut chain = Vec::with_capacity(self.history.len() + 1);
        match self.history.first() {
            Some(first) => chain.push(first.from.clone()),
            None => {
                chain.push(self.owner.clone());
                return chain;
            }
        }
        chain.extend(self.history.iter().map(|t| t.to.clone()));
        chain
    }
}

impl<T: Serialize + DeserializeOwned> Versioned<T> {
    /// Serializes for crossing an actor boundary inside a message.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("versioned object serializes")
    }

    /// Deserializes a copy received from another actor.
    pub fn from_json(value: &serde_json::Value) -> Result<Self, serde_json::Error> {
        serde_json::from_value(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct Cut {
        weight_kg: f64,
    }

    #[test]
    fn new_object_is_version_zero() {
        let v = Versioned::new("cut-1", "slaughterhouse:7", Cut { weight_kg: 12.0 });
        assert_eq!(v.version, 0);
        assert_eq!(v.provenance(), vec!["slaughterhouse:7"]);
    }

    #[test]
    fn transfer_bumps_version_and_records_history() {
        let v0 = Versioned::new("cut-1", "sh:1", Cut { weight_kg: 12.0 });
        let v1 = v0.transfer_to("dist:2", 1000);
        let v2 = v1.transfer_to("retail:3", 2000);
        assert_eq!(v2.version, 2);
        assert_eq!(v2.owner, "retail:3");
        assert_eq!(v2.provenance(), vec!["sh:1", "dist:2", "retail:3"]);
        // The source version is untouched (it is a copy semantics model).
        assert_eq!(v0.version, 0);
        assert_eq!(v1.owner, "dist:2");
    }

    #[test]
    fn payload_mutation_is_local_to_a_version() {
        let v0 = Versioned::new("cut-1", "sh:1", Cut { weight_kg: 12.0 });
        let mut v1 = v0.transfer_to("dist:2", 5);
        v1.payload.weight_kg = 11.5; // trimming during transport
        assert_eq!(v0.payload.weight_kg, 12.0);
        assert_eq!(v1.payload.weight_kg, 11.5);
    }

    #[test]
    fn json_roundtrip() {
        let v = Versioned::new("cut-9", "sh:1", Cut { weight_kg: 3.25 }).transfer_to("d:1", 7);
        let back: Versioned<Cut> = Versioned::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }
}
