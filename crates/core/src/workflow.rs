//! Asynchronous multi-actor update workflows.
//!
//! The paper's fallback for cross-actor constraint maintenance when
//! transactions are unavailable (Section 4.4): *"design a multi-actor
//! workflow for updates"* that drives every affected actor to a consistent
//! state eventually. The [`WorkflowEngine`] actor executes a sequence of
//! steps against participant actors with bounded retries, exponential
//! backoff, and idempotence tokens, and persists per-workflow progress so a
//! resubmitted workflow resumes where it left off instead of re-running
//! completed steps.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{
    Actor, ActorContext, ActorRef, Handler, Message, Promise, Recipient, ReplyTo, SendError,
};
use aodb_store::StateStore;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::persist::{Persisted, WritePolicy};

/// One unit of work sent to a participant actor.
pub struct WorkStep {
    /// Workflow instance id.
    pub workflow: String,
    /// Zero-based step index within the workflow.
    pub step: u32,
    /// Idempotence token: `"{workflow}/{step}"`. Participants must treat a
    /// token they have already applied as an immediate success.
    pub idempotence: String,
    /// Application-defined step payload.
    pub payload: Value,
}

impl Message for WorkStep {
    type Reply = StepResult;
}

/// Participant's verdict on one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepResult {
    /// Applied (or previously applied — idempotent success).
    Done,
    /// Transient failure; the engine retries with backoff.
    Retry(String),
    /// Permanent failure; the workflow fails at this step.
    Failed(String),
}

/// Final outcome delivered to the submitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkflowOutcome {
    /// Every step applied.
    Completed,
    /// The workflow stopped permanently.
    Failed {
        /// Index of the failing step.
        step: u32,
        /// Participant-provided reason.
        reason: String,
    },
}

/// Submission message for the engine.
pub struct StartWorkflow {
    /// Workflow instance id. Resubmitting an id resumes after its last
    /// completed step.
    pub id: String,
    /// Ordered steps: each pairs a participant with its payload.
    pub steps: Vec<(Recipient<WorkStep>, Value)>,
    /// Outcome sink.
    pub done: ReplyTo<WorkflowOutcome>,
    /// Per-step retry budget.
    pub max_retries: u32,
    /// Base backoff; attempt `k` waits `backoff × k`.
    pub backoff: Duration,
}

impl Message for StartWorkflow {
    type Reply = ();
}

struct StepDone {
    id: String,
    step: u32,
    result: StepResult,
}
impl Message for StepDone {
    type Reply = ();
}

struct RetryStep {
    id: String,
    step: u32,
}
impl Message for RetryStep {
    type Reply = ();
}

struct ActiveWorkflow {
    steps: Vec<(Recipient<WorkStep>, Value)>,
    next: u32,
    attempts: u32,
    max_retries: u32,
    backoff: Duration,
    done: Option<ReplyTo<WorkflowOutcome>>,
}

/// Durable progress: workflow id → number of completed steps.
#[derive(Default, Serialize, Deserialize)]
struct EngineState {
    completed: BTreeMap<String, u32>,
}

/// The workflow engine actor.
pub struct WorkflowEngine {
    progress: Persisted<EngineState>,
    active: BTreeMap<String, ActiveWorkflow>,
}

impl WorkflowEngine {
    /// Registers the engine type, persisting progress in `store`.
    pub fn register(rt: &aodb_runtime::Runtime, store: Arc<dyn StateStore>) {
        rt.register(move |id| WorkflowEngine {
            progress: Persisted::for_actor(
                Arc::clone(&store),
                Self::TYPE_NAME,
                &id.key,
                WritePolicy::EveryChange,
            ),
            active: BTreeMap::new(),
        });
    }

    fn dispatch_step(&mut self, id: &str, ctx: &mut ActorContext<'_>) {
        let Some(wf) = self.active.get(id) else {
            return;
        };
        let step = wf.next;
        if step as usize >= wf.steps.len() {
            self.finish(id, WorkflowOutcome::Completed);
            return;
        }
        let (recipient, payload) = &wf.steps[step as usize];
        let me = ctx.actor_ref::<WorkflowEngine>(ctx.key().clone());
        let id_owned = id.to_string();
        let reply = ReplyTo::Callback(Box::new(move |result: StepResult| {
            let _ = me.tell(StepDone {
                id: id_owned,
                step,
                result,
            });
        }));
        let send = recipient.ask_with(
            WorkStep {
                workflow: id.to_string(),
                step,
                idempotence: format!("{id}/{step}"),
                payload: payload.clone(),
            },
            reply,
        );
        if let Err(e) = send {
            // Participant unreachable: treat as transient and go through
            // the retry machinery.
            let me = ctx.actor_ref::<WorkflowEngine>(ctx.key().clone());
            let _ = me.tell(StepDone {
                id: id.to_string(),
                step,
                result: StepResult::Retry(format!("dispatch failed: {e}")),
            });
        }
    }

    fn finish(&mut self, id: &str, outcome: WorkflowOutcome) {
        if let Some(mut wf) = self.active.remove(id) {
            if let Some(done) = wf.done.take() {
                done.deliver(outcome);
            }
        }
    }
}

impl Actor for WorkflowEngine {
    const TYPE_NAME: &'static str = "aodb.workflow-engine";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Workflow steps go to caller-supplied step recipients — the
        // concrete actor types are not known statically.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send_any()];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.progress.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.progress.flush();
    }
}

impl Handler<StartWorkflow> for WorkflowEngine {
    fn handle(&mut self, msg: StartWorkflow, ctx: &mut ActorContext<'_>) {
        if self.active.contains_key(&msg.id) {
            msg.done.deliver(WorkflowOutcome::Failed {
                step: 0,
                reason: format!("workflow `{}` already running", msg.id),
            });
            return;
        }
        // Resume support: skip steps already recorded as completed.
        let start = self
            .progress
            .get()
            .completed
            .get(&msg.id)
            .copied()
            .unwrap_or(0)
            .min(msg.steps.len() as u32);
        self.active.insert(
            msg.id.clone(),
            ActiveWorkflow {
                steps: msg.steps,
                next: start,
                attempts: 0,
                max_retries: msg.max_retries,
                backoff: msg.backoff,
                done: Some(msg.done),
            },
        );
        self.dispatch_step(&msg.id, ctx);
    }
}

impl Handler<StepDone> for WorkflowEngine {
    fn handle(&mut self, msg: StepDone, ctx: &mut ActorContext<'_>) {
        let Some(wf) = self.active.get_mut(&msg.id) else {
            return;
        };
        if wf.next != msg.step {
            return; // stale completion from a superseded attempt
        }
        match msg.result {
            StepResult::Done => {
                wf.next += 1;
                wf.attempts = 0;
                let completed = wf.next;
                self.progress
                    .mutate(|s| *s.completed.entry(msg.id.clone()).or_insert(0) = completed);
                self.dispatch_step(&msg.id, ctx);
            }
            StepResult::Retry(reason) => {
                wf.attempts += 1;
                if wf.attempts > wf.max_retries {
                    let step = wf.next;
                    self.finish(
                        &msg.id,
                        WorkflowOutcome::Failed {
                            step,
                            reason: format!("retry budget exhausted: {reason}"),
                        },
                    );
                } else {
                    let delay = wf.backoff * wf.attempts;
                    ctx.notify_self_after::<WorkflowEngine, RetryStep>(
                        RetryStep {
                            id: msg.id,
                            step: msg.step,
                        },
                        delay,
                    );
                }
            }
            StepResult::Failed(reason) => {
                let step = wf.next;
                self.finish(&msg.id, WorkflowOutcome::Failed { step, reason });
            }
        }
    }
}

impl Handler<RetryStep> for WorkflowEngine {
    fn handle(&mut self, msg: RetryStep, ctx: &mut ActorContext<'_>) {
        if self
            .active
            .get(&msg.id)
            .is_some_and(|wf| wf.next == msg.step)
        {
            self.dispatch_step(&msg.id, ctx);
        }
    }
}

/// Submits a workflow and returns the outcome promise.
pub fn run_workflow(
    engine: &ActorRef<WorkflowEngine>,
    id: impl Into<String>,
    steps: Vec<(Recipient<WorkStep>, Value)>,
    max_retries: u32,
    backoff: Duration,
) -> Result<Promise<WorkflowOutcome>, SendError> {
    let (done, promise) = ReplyTo::promise();
    engine.tell(StartWorkflow {
        id: id.into(),
        steps,
        done,
        max_retries,
        backoff,
    })?;
    Ok(promise)
}

/// Participant-side idempotence guard: remembers applied tokens.
///
/// `apply` runs the closure only for unseen tokens, recording the token
/// either way and reporting [`StepResult::Done`] for duplicates, which is
/// what makes engine retries safe.
///
/// The token set is a `BTreeSet` so the guard serializes in a canonical
/// order: two equal guards always produce byte-identical state blobs,
/// which keeps persisted-state comparisons (and replay fingerprints)
/// deterministic.
#[derive(Default, Debug, Serialize, Deserialize)]
pub struct IdempotenceGuard {
    seen: std::collections::BTreeSet<String>,
}

impl IdempotenceGuard {
    /// Fresh guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` unless `token` was already applied.
    pub fn apply(&mut self, token: &str, f: impl FnOnce() -> StepResult) -> StepResult {
        if self.seen.contains(token) {
            return StepResult::Done;
        }
        let result = f();
        if result == StepResult::Done {
            self.seen.insert(token.to_string());
        }
        result
    }

    /// Records `token` and reports whether it was fresh. Use when the
    /// side-effect cannot run inside an [`IdempotenceGuard::apply`]
    /// closure for borrow reasons:
    ///
    /// ```ignore
    /// if state.guard.first_time(&msg.idempotence) {
    ///     apply_side_effect();
    /// }
    /// StepResult::Done
    /// ```
    pub fn first_time(&mut self, token: &str) -> bool {
        self.seen.insert(token.to_string())
    }

    /// Number of applied tokens.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no token has been applied.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any engine state survives the persistence codec unchanged.
        #[test]
        fn engine_state_roundtrips(
            completed in proptest::collection::vec((key(), any::<u32>()), 0..6),
        ) {
            assert_codec_roundtrip(&EngineState {
                completed: completed.into_iter().collect(),
            });
        }

        /// A guard that has seen any token set round-trips, and the
        /// decoded copy still rejects exactly the seen tokens.
        #[test]
        fn idempotence_guard_roundtrips(
            tokens in proptest::collection::vec(key(), 0..6),
        ) {
            let mut guard = IdempotenceGuard::new();
            for t in &tokens {
                guard.first_time(t);
            }
            assert_codec_roundtrip(&guard);
            let bytes = aodb_store::codec::encode_state(&guard).unwrap();
            let mut back: IdempotenceGuard =
                aodb_store::codec::decode_state(&bytes).unwrap();
            for t in &tokens {
                prop_assert!(!back.first_time(t), "decoded guard forgot {t:?}");
            }
        }
    }
}
