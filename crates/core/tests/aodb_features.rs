//! Integration tests for the AODB layer: persistent actors, two-phase
//! commit across actors, multi-actor workflows, secondary indexes, and key
//! registries — all running on a real multi-worker runtime.

use std::sync::Arc;
use std::time::Duration;

use aodb_core::{
    broadcast, run_transaction, run_workflow, CountKeys, Decide, IdempotenceGuard, IndexClient,
    IndexMode, IndexShard, KeyRegistry, ListKeys, Participant, Persisted, Prepare, RegisterKey,
    StepResult, TxnCoordinator, TxnLock, TxnOp, TxnOutcome, Vote, WorkStep, WorkflowEngine,
    WorkflowOutcome, WritePolicy,
};
use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};
use aodb_store::{MemStore, StateStore};
use serde::{Deserialize, Serialize};
use serde_json::json;

// ----------------------------------------------------------- test fixture

/// A bank-account-like actor: persistent balance + transaction lock.
/// Stands in for the paper's Farmer/Cow ownership updates.
struct Account {
    state: Persisted<AccountState>,
    lock: TxnLock<i64>,
}

#[derive(Default, Serialize, Deserialize)]
struct AccountState {
    balance: i64,
    applied: IdempotenceGuard,
}

impl Actor for Account {
    const TYPE_NAME: &'static str = "test.account";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

struct Deposit(i64);
impl Message for Deposit {
    type Reply = i64;
}
impl Handler<Deposit> for Account {
    fn handle(&mut self, msg: Deposit, _ctx: &mut ActorContext<'_>) -> i64 {
        self.state.mutate(|s| {
            s.balance += msg.0;
            s.balance
        })
    }
}

#[derive(Clone)]
struct Balance;
impl Message for Balance {
    type Reply = i64;
}
impl Handler<Balance> for Account {
    fn handle(&mut self, _msg: Balance, _ctx: &mut ActorContext<'_>) -> i64 {
        self.state.get().balance
    }
}

struct Kill;
impl Message for Kill {
    type Reply = ();
}
impl Handler<Kill> for Account {
    fn handle(&mut self, _msg: Kill, ctx: &mut ActorContext<'_>) {
        ctx.deactivate();
    }
}

impl Handler<Prepare> for Account {
    fn handle(&mut self, msg: Prepare, _ctx: &mut ActorContext<'_>) -> Vote {
        let delta = match msg.op.0.get("delta").and_then(|v| v.as_i64()) {
            Some(d) => d,
            None => return Vote::No("malformed op: missing delta".into()),
        };
        if self.state.get().balance + delta < 0 {
            return Vote::No("insufficient funds".into());
        }
        self.lock.try_prepare(msg.txn, delta)
    }
}

impl Handler<Decide> for Account {
    fn handle(&mut self, msg: Decide, _ctx: &mut ActorContext<'_>) {
        if let Some(delta) = self.lock.decide(&msg.txn, msg.commit) {
            self.state.mutate(|s| s.balance += delta);
        }
    }
}

/// Workflow participant behaviour: apply a delta exactly once per
/// idempotence token; `permanent_failure` in the payload injects a
/// permanent rejection.
impl Handler<WorkStep> for Account {
    fn handle(&mut self, msg: WorkStep, _ctx: &mut ActorContext<'_>) -> StepResult {
        let delta = msg
            .payload
            .get("delta")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let permanent = msg
            .payload
            .get("permanent_failure")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        if permanent {
            return StepResult::Failed("permanently rejected".into());
        }
        let fresh = self
            .state
            .mutate(|s| s.applied.first_time(&msg.idempotence));
        if fresh {
            self.state.mutate(|s| s.balance += delta);
        }
        StepResult::Done
    }
}

/// A workflow participant that reports transient failure the first
/// `fail_first` times it sees a token, then succeeds — exercising the
/// engine's retry/backoff machinery.
struct FlakyWorker {
    fail_first: u32,
    attempts: std::collections::HashMap<String, u32>,
    applied: Vec<String>,
}

impl Actor for FlakyWorker {
    const TYPE_NAME: &'static str = "test.flaky";
}

impl Handler<WorkStep> for FlakyWorker {
    fn handle(&mut self, msg: WorkStep, _ctx: &mut ActorContext<'_>) -> StepResult {
        let attempts = self.attempts.entry(msg.idempotence.clone()).or_insert(0);
        *attempts += 1;
        if *attempts <= self.fail_first {
            StepResult::Retry(format!("transient glitch #{attempts}"))
        } else {
            self.applied.push(msg.idempotence);
            StepResult::Done
        }
    }
}

#[derive(Clone)]
struct AppliedCount;
impl Message for AppliedCount {
    type Reply = usize;
}
impl Handler<AppliedCount> for FlakyWorker {
    fn handle(&mut self, _msg: AppliedCount, _ctx: &mut ActorContext<'_>) -> usize {
        self.applied.len()
    }
}

fn setup(store: &Arc<dyn StateStore>) -> Runtime {
    let rt = Runtime::single(4);
    {
        let store = Arc::clone(store);
        rt.register(move |id| Account {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Account::TYPE_NAME,
                &id.key,
                WritePolicy::EveryChange,
            ),
            lock: TxnLock::new(),
        });
    }
    TxnCoordinator::register(&rt);
    WorkflowEngine::register(&rt, Arc::clone(store));
    IndexShard::register(&rt, Arc::clone(store));
    KeyRegistry::register(&rt, Arc::clone(store));
    rt
}

// ------------------------------------------------------------ persistence

#[test]
fn persistent_actor_state_survives_deactivation() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let acct = rt.actor_ref::<Account>("alice");
    assert_eq!(acct.call(Deposit(120)).unwrap(), 120);
    acct.call(Kill).unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));
    // Reactivation loads the persisted balance.
    assert_eq!(acct.call(Balance).unwrap(), 120);
    rt.shutdown();
}

#[test]
fn persistent_actor_state_survives_runtime_restart() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    {
        let rt = setup(&store);
        rt.actor_ref::<Account>("bob").call(Deposit(55)).unwrap();
        rt.shutdown(); // flushes every activation
    }
    let rt = setup(&store);
    assert_eq!(rt.actor_ref::<Account>("bob").call(Balance).unwrap(), 55);
    rt.shutdown();
}

// ------------------------------------------------------------ transactions

fn transfer_op(delta: i64) -> TxnOp {
    TxnOp(json!({ "delta": delta }))
}

#[test]
fn two_phase_commit_transfers_atomically() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("a");
    let b = rt.actor_ref::<Account>("b");
    a.call(Deposit(100)).unwrap();

    let coord = rt.actor_ref::<TxnCoordinator>("coord-1");
    let outcome = run_transaction(
        &coord,
        vec![
            (Participant::of(&a), transfer_op(-40)),
            (Participant::of(&b), transfer_op(40)),
        ],
        Duration::from_secs(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    assert_eq!(outcome, TxnOutcome::Committed);
    assert_eq!(a.call(Balance).unwrap(), 60);
    assert_eq!(b.call(Balance).unwrap(), 40);
    rt.shutdown();
}

#[test]
fn transaction_aborts_on_no_vote_and_nothing_applies() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("poor");
    let b = rt.actor_ref::<Account>("rich");
    a.call(Deposit(10)).unwrap();

    let coord = rt.actor_ref::<TxnCoordinator>("coord-2");
    let outcome = run_transaction(
        &coord,
        vec![
            (Participant::of(&a), transfer_op(-40)), // would go negative
            (Participant::of(&b), transfer_op(40)),
        ],
        Duration::from_secs(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    match outcome {
        TxnOutcome::Aborted(reason) => assert!(reason.contains("insufficient")),
        other => panic!("expected abort, got {other:?}"),
    }
    assert_eq!(a.call(Balance).unwrap(), 10);
    assert_eq!(b.call(Balance).unwrap(), 0);
    rt.shutdown();
}

#[test]
fn conflicting_transactions_do_not_deadlock() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("x");
    let b = rt.actor_ref::<Account>("y");
    a.call(Deposit(1000)).unwrap();
    b.call(Deposit(1000)).unwrap();

    // Fire 20 concurrent transfers over the same two accounts through two
    // coordinators; every one must terminate (commit or abort), and money
    // must be conserved.
    let mut promises = Vec::new();
    for i in 0..20 {
        let coord = rt.actor_ref::<TxnCoordinator>(format!("coord-c{}", i % 2));
        let (from, to) = if i % 2 == 0 { (&a, &b) } else { (&b, &a) };
        promises.push(
            run_transaction(
                &coord,
                vec![
                    (Participant::of(from), transfer_op(-10)),
                    (Participant::of(to), transfer_op(10)),
                ],
                Duration::from_secs(5),
            )
            .unwrap(),
        );
    }
    let mut committed = 0;
    for p in promises {
        match p.wait_for(Duration::from_secs(10)).unwrap() {
            TxnOutcome::Committed => committed += 1,
            TxnOutcome::Aborted(_) => {}
        }
    }
    assert!(committed >= 1, "at least some transfers must commit");
    let total = a.call(Balance).unwrap() + b.call(Balance).unwrap();
    assert_eq!(total, 2000, "2PC must conserve the total balance");
    rt.shutdown();
}

/// A participant that never votes (its Prepare handler panics, losing the
/// reply): the coordinator's timeout must abort the transaction.
struct BlackHole;
impl Actor for BlackHole {
    const TYPE_NAME: &'static str = "test.blackhole";
}
impl Handler<Prepare> for BlackHole {
    fn handle(&mut self, _msg: Prepare, _ctx: &mut ActorContext<'_>) -> Vote {
        panic!("swallowing the prepare");
    }
}
impl Handler<Decide> for BlackHole {
    fn handle(&mut self, _msg: Decide, _ctx: &mut ActorContext<'_>) {}
}

#[test]
fn transaction_times_out_when_participant_never_votes() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    rt.register(|_id| BlackHole);
    let a = rt.actor_ref::<Account>("victim");
    a.call(Deposit(50)).unwrap();
    let hole = rt.actor_ref::<BlackHole>("hole");

    let coord = rt.actor_ref::<TxnCoordinator>("coord-t");
    let outcome = run_transaction(
        &coord,
        vec![
            (Participant::of(&a), transfer_op(-10)),
            (Participant::of(&hole), transfer_op(10)),
        ],
        Duration::from_millis(200),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    match outcome {
        TxnOutcome::Aborted(reason) => assert!(reason.contains("timed out"), "{reason}"),
        other => panic!("expected timeout abort, got {other:?}"),
    }
    // The prepared participant must have been released and rolled back.
    assert_eq!(a.call(Balance).unwrap(), 50);
    rt.shutdown();
}

// --------------------------------------------------------------- workflows

#[test]
fn workflow_applies_all_steps_in_order() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("wf-a");
    let b = rt.actor_ref::<Account>("wf-b");
    let engine = rt.actor_ref::<WorkflowEngine>("engine");

    let outcome = run_workflow(
        &engine,
        "transfer-1",
        vec![
            (a.recipient(), json!({ "delta": -30 })),
            (b.recipient(), json!({ "delta": 30 })),
        ],
        3,
        Duration::from_millis(10),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    assert_eq!(outcome, WorkflowOutcome::Completed);
    assert_eq!(a.call(Balance).unwrap(), -30);
    assert_eq!(b.call(Balance).unwrap(), 30);
    rt.shutdown();
}

#[test]
fn workflow_retries_transient_failures_with_backoff() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    rt.register(|_id| FlakyWorker {
        fail_first: 2,
        attempts: Default::default(),
        applied: Vec::new(),
    });
    let flaky = rt.actor_ref::<FlakyWorker>("glitchy");
    let sink = rt.actor_ref::<Account>("after-flaky");
    let engine = rt.actor_ref::<WorkflowEngine>("engine-retry");

    let outcome = run_workflow(
        &engine,
        "bumpy",
        vec![
            (flaky.recipient(), json!({})),
            (sink.recipient(), json!({ "delta": 9 })),
        ],
        5,
        Duration::from_millis(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(10))
    .unwrap();

    assert_eq!(outcome, WorkflowOutcome::Completed);
    assert_eq!(flaky.call(AppliedCount).unwrap(), 1, "applied exactly once");
    assert_eq!(sink.call(Balance).unwrap(), 9);
    rt.shutdown();
}

#[test]
fn workflow_exhausts_retry_budget() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    rt.register(|_id| FlakyWorker {
        fail_first: 100, // never recovers within budget
        attempts: Default::default(),
        applied: Vec::new(),
    });
    let flaky = rt.actor_ref::<FlakyWorker>("hopeless");
    let engine = rt.actor_ref::<WorkflowEngine>("engine-budget");

    let outcome = run_workflow(
        &engine,
        "lost-cause",
        vec![(flaky.recipient(), json!({}))],
        3,
        Duration::from_millis(2),
    )
    .unwrap()
    .wait_for(Duration::from_secs(10))
    .unwrap();

    match outcome {
        WorkflowOutcome::Failed { step, reason } => {
            assert_eq!(step, 0);
            assert!(reason.contains("retry budget"), "{reason}");
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
    rt.shutdown();
}

#[test]
fn workflow_fails_permanently_at_failing_step() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("wff-a");
    let b = rt.actor_ref::<Account>("wff-b");
    let engine = rt.actor_ref::<WorkflowEngine>("engine-f");

    let outcome = run_workflow(
        &engine,
        "doomed",
        vec![
            (a.recipient(), json!({ "delta": 5 })),
            (b.recipient(), json!({ "permanent_failure": true })),
        ],
        2,
        Duration::from_millis(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    match outcome {
        WorkflowOutcome::Failed { step, reason } => {
            assert_eq!(step, 1);
            assert!(reason.contains("permanently"));
        }
        other => panic!("expected failure, got {other:?}"),
    }
    // Step 0 applied (workflows are not atomic — that is the point of the
    // paper's contrast with transactions).
    assert_eq!(a.call(Balance).unwrap(), 5);
    rt.shutdown();
}

#[test]
fn workflow_resume_skips_completed_steps() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let a = rt.actor_ref::<Account>("res-a");
    let b = rt.actor_ref::<Account>("res-b");
    let engine = rt.actor_ref::<WorkflowEngine>("engine-r");

    // First run completes both steps.
    let outcome = run_workflow(
        &engine,
        "resumable",
        vec![
            (a.recipient(), json!({ "delta": 7 })),
            (b.recipient(), json!({ "delta": 7 })),
        ],
        1,
        Duration::from_millis(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();
    assert_eq!(outcome, WorkflowOutcome::Completed);

    // Resubmission of the same id: progress says "2 completed" → no step
    // re-runs (and participants would dedup by idempotence token anyway).
    let outcome = run_workflow(
        &engine,
        "resumable",
        vec![
            (a.recipient(), json!({ "delta": 7 })),
            (b.recipient(), json!({ "delta": 7 })),
        ],
        1,
        Duration::from_millis(5),
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();
    assert_eq!(outcome, WorkflowOutcome::Completed);
    assert_eq!(a.call(Balance).unwrap(), 7, "step must not double-apply");
    assert_eq!(b.call(Balance).unwrap(), 7);
    rt.shutdown();
}

#[test]
fn idempotence_guard_dedups() {
    let mut guard = IdempotenceGuard::new();
    let mut runs = 0;
    for _ in 0..3 {
        let r = guard.apply("wf/0", || {
            runs += 1;
            StepResult::Done
        });
        assert_eq!(r, StepResult::Done);
    }
    assert_eq!(runs, 1);
    assert_eq!(guard.len(), 1);
}

#[test]
fn idempotence_guard_does_not_record_failures() {
    let mut guard = IdempotenceGuard::new();
    let r = guard.apply("wf/1", || StepResult::Retry("later".into()));
    assert_eq!(r, StepResult::Retry("later".into()));
    // A retry of the same token runs again.
    let r = guard.apply("wf/1", || StepResult::Done);
    assert_eq!(r, StepResult::Done);
}

// ------------------------------------------------------------------ index

#[test]
fn index_update_and_lookup() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let idx = IndexClient::new(rt.handle(), "breed", 4);

    idx.update("cow-1", None, Some("angus"), IndexMode::Synchronous)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    idx.update("cow-2", None, Some("angus"), IndexMode::Synchronous)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    idx.update("cow-3", None, Some("hereford"), IndexMode::Synchronous)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();

    let mut angus = idx
        .lookup("angus")
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    angus.sort();
    assert_eq!(angus, vec!["cow-1", "cow-2"]);
    rt.shutdown();
}

#[test]
fn index_value_change_moves_entity() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let idx = IndexClient::new(rt.handle(), "pasture", 8);

    idx.update("cow-9", None, Some("north"), IndexMode::Synchronous)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    idx.update(
        "cow-9",
        Some("north"),
        Some("south"),
        IndexMode::Synchronous,
    )
    .unwrap()
    .wait_for(Duration::from_secs(5))
    .unwrap();

    assert!(idx.lookup("north").unwrap().wait().unwrap().is_empty());
    assert_eq!(idx.lookup("south").unwrap().wait().unwrap(), vec!["cow-9"]);
    rt.shutdown();
}

#[test]
fn index_survives_restart() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    {
        let rt = setup(&store);
        let idx = IndexClient::new(rt.handle(), "owner", 2);
        idx.update("cow-5", None, Some("farm-1"), IndexMode::Synchronous)
            .unwrap()
            .wait_for(Duration::from_secs(5))
            .unwrap();
        rt.shutdown();
    }
    let rt = setup(&store);
    let idx = IndexClient::new(rt.handle(), "owner", 2);
    assert_eq!(idx.lookup("farm-1").unwrap().wait().unwrap(), vec!["cow-5"]);
    rt.shutdown();
}

#[test]
fn index_dump_covers_all_shards() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let idx = IndexClient::new(rt.handle(), "status", 4);
    for i in 0..20 {
        idx.update(
            &format!("e{i}"),
            None,
            Some(if i % 2 == 0 { "ok" } else { "warn" }),
            IndexMode::Synchronous,
        )
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    }
    let shards = idx
        .dump()
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    let total: usize = shards
        .iter()
        .flat_map(|postings| postings.iter().map(|(_, es)| es.len()))
        .sum();
    assert_eq!(total, 20);
    rt.shutdown();
}

// --------------------------------------------------------------- registry

#[test]
fn key_registry_lists_and_persists() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    {
        let rt = setup(&store);
        let reg = rt.actor_ref::<KeyRegistry>("cows-of:farm-1");
        reg.call(RegisterKey("cow-1".into())).unwrap();
        reg.call(RegisterKey("cow-2".into())).unwrap();
        reg.call(RegisterKey("cow-1".into())).unwrap(); // duplicate ok
        assert_eq!(reg.call(CountKeys).unwrap(), 2);
        rt.shutdown();
    }
    let rt = setup(&store);
    let reg = rt.actor_ref::<KeyRegistry>("cows-of:farm-1");
    assert_eq!(
        reg.call(ListKeys).unwrap(),
        vec!["cow-1".to_string(), "cow-2".to_string()]
    );
    rt.shutdown();
}

#[test]
fn broadcast_gathers_from_heterogeneous_keys() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = setup(&store);
    let mut recipients = Vec::new();
    for i in 0..10u64 {
        let acct = rt.actor_ref::<Account>(format!("bc-{i}"));
        acct.call(Deposit(i as i64)).unwrap();
        recipients.push(acct.recipient::<Balance>());
    }
    let mut balances = broadcast(&recipients, Balance)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    balances.sort_unstable();
    assert_eq!(balances, (0..10).collect::<Vec<i64>>());
    rt.shutdown();
}
