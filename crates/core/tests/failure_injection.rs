//! Failure-injection tests: a store that fails on command, driven through
//! the persistence layer and the platform machinery built on it. The
//! paper's platform must keep serving when the cloud store misbehaves
//! (DynamoDB throttling is a *normal* operating condition, not an
//! outage) — these tests pin that behaviour down.
//!
//! The fault source is [`ChaosStore`] in manual mode (the library-grade
//! replacement for the hand-rolled `FaultyStore` this file used to carry).

use std::sync::Arc;
use std::time::Duration;

use aodb_core::{Persisted, WritePolicy};
use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};
use aodb_store::{ChaosStore, MemStore, StateStore};

type FaultyStore = ChaosStore<MemStore>;

struct Counter {
    state: Persisted<u64>,
}

impl Actor for Counter {
    const TYPE_NAME: &'static str = "test.faulty-counter";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

struct Bump;
impl Message for Bump {
    type Reply = u64;
}
impl Handler<Bump> for Counter {
    fn handle(&mut self, _msg: Bump, _ctx: &mut ActorContext<'_>) -> u64 {
        self.state.mutate(|v| {
            *v += 1;
            *v
        })
    }
}

struct Errors;
impl Message for Errors {
    type Reply = u64;
}
impl Handler<Errors> for Counter {
    fn handle(&mut self, _msg: Errors, _ctx: &mut ActorContext<'_>) -> u64 {
        self.state.save_errors()
    }
}

struct Kill;
impl Message for Kill {
    type Reply = ();
}
impl Handler<Kill> for Counter {
    fn handle(&mut self, _msg: Kill, ctx: &mut ActorContext<'_>) {
        ctx.deactivate();
    }
}

fn setup(faulty: &Arc<FaultyStore>) -> Runtime {
    let rt = Runtime::single(2);
    {
        let store: Arc<dyn StateStore> = Arc::clone(faulty) as Arc<dyn StateStore>;
        rt.register(move |id| Counter {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Counter::TYPE_NAME,
                &id.key,
                WritePolicy::EveryChange,
            ),
        });
    }
    rt
}

#[test]
fn actor_keeps_serving_while_writes_fail() {
    let faulty = Arc::new(ChaosStore::manual(MemStore::new()));
    let rt = setup(&faulty);
    let actor = rt.actor_ref::<Counter>("w");
    assert_eq!(actor.call(Bump).unwrap(), 1);

    // The store goes dark for writes: the actor keeps mutating in memory
    // and records the failures instead of crashing or losing requests.
    faulty.fail_writes(true);
    for i in 2..=10 {
        assert_eq!(actor.call(Bump).unwrap(), i);
    }
    assert_eq!(actor.call(Errors).unwrap(), 9);

    // Store heals: the next mutation persists the *current* state.
    faulty.fail_writes(false);
    assert_eq!(actor.call(Bump).unwrap(), 11);
    actor.call(Kill).unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));
    // Reactivation reads 11 back: no window of the outage was lost at the
    // end, because EveryChange re-writes full state.
    assert_eq!(actor.call(Errors).unwrap(), 0);
    assert_eq!(actor.call(Bump).unwrap(), 12);
    rt.shutdown();
}

#[test]
fn outage_spanning_deactivation_loses_only_unflushed_window() {
    let faulty = Arc::new(ChaosStore::manual(MemStore::new()));
    let rt = setup(&faulty);
    let actor = rt.actor_ref::<Counter>("d");
    assert_eq!(actor.call(Bump).unwrap(), 1); // persisted: 1

    faulty.fail_writes(true);
    assert_eq!(actor.call(Bump).unwrap(), 2); // in-memory only
    actor.call(Kill).unwrap(); // flush also fails during the outage
    assert!(rt.quiesce(Duration::from_secs(5)));
    faulty.fail_writes(false);

    // The documented semantics of a full-outage deactivation: state rolls
    // back to the last durable write.
    assert_eq!(actor.call(Bump).unwrap(), 2);
    rt.shutdown();
}

#[test]
fn activation_with_failing_reads_starts_from_default() {
    let faulty = Arc::new(ChaosStore::manual(MemStore::new()));
    {
        let rt = setup(&faulty);
        rt.actor_ref::<Counter>("r").call(Bump).unwrap();
        rt.shutdown();
    }
    faulty.fail_reads(true);
    let rt = setup(&faulty);
    let actor = rt.actor_ref::<Counter>("r");
    // load_or_default records the failure and serves from defaults rather
    // than refusing activation (availability over freshness).
    assert_eq!(actor.call(Bump).unwrap(), 1);
    assert!(actor.call(Errors).unwrap() >= 1);
    rt.shutdown();
}

#[test]
fn write_failures_do_not_amplify_attempts() {
    // One mutation = one write attempt, even while failing (no internal
    // hot retry loop that would hammer a throttled store).
    let faulty = Arc::new(ChaosStore::manual(MemStore::new()));
    let rt = setup(&faulty);
    let actor = rt.actor_ref::<Counter>("a");
    actor.call(Bump).unwrap();
    let baseline = faulty.write_attempts();
    faulty.fail_writes(true);
    for _ in 0..20 {
        actor.call(Bump).unwrap();
    }
    let attempts = faulty.write_attempts() - baseline;
    assert_eq!(attempts, 20);
    rt.shutdown();
}
