//! Property-based tests for the AODB layer's pure data structures:
//! versioned objects, transaction locks, and idempotence guards.

use aodb_core::{IdempotenceGuard, StepResult, TxnId, TxnLock, Versioned};
use proptest::prelude::*;

fn txn_id(seq: u64) -> TxnId {
    TxnId {
        coordinator: "c".into(),
        seq,
    }
}

proptest! {
    /// A transfer chain of any length yields version == number of
    /// transfers, provenance of length transfers + 1 starting at the
    /// origin and ending at the current owner.
    #[test]
    fn versioned_chain_invariants(owners in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut v = Versioned::new("entity", owners[0].clone(), 42u32);
        for (i, owner) in owners.iter().enumerate().skip(1) {
            v = v.transfer_to(owner.clone(), i as u64);
        }
        prop_assert_eq!(v.version as usize, owners.len() - 1);
        prop_assert_eq!(&v.owner, owners.last().unwrap());
        let provenance = v.provenance();
        prop_assert_eq!(provenance.len(), owners.len());
        prop_assert_eq!(&provenance, &owners);
        // History timestamps are the ones we supplied, in order.
        let ts: Vec<u64> = v.history.iter().map(|t| t.at_ms).collect();
        prop_assert_eq!(ts, (1..owners.len() as u64).collect::<Vec<_>>());
    }

    /// JSON round-trips preserve versioned objects exactly.
    #[test]
    fn versioned_json_roundtrip(
        owners in proptest::collection::vec("[a-z]{1,6}", 1..6),
        payload in any::<i64>(),
    ) {
        let mut v = Versioned::new("e", owners[0].clone(), payload);
        for owner in owners.iter().skip(1) {
            v = v.transfer_to(owner.clone(), 1);
        }
        let back: Versioned<i64> = Versioned::from_json(&v.to_json()).unwrap();
        prop_assert_eq!(back, v);
    }

    /// TxnLock: under any interleaving of prepares and decisions, at most
    /// one transaction's payload is ever applied per acquisition, and a
    /// commit only applies the payload of the transaction that holds the
    /// lock.
    #[test]
    fn txn_lock_safety(ops in proptest::collection::vec((0u64..4, any::<bool>(), any::<bool>()), 0..40)) {
        let mut lock: TxnLock<u64> = TxnLock::new();
        let mut holder: Option<u64> = None;
        for (seq, is_prepare, commit) in ops {
            if is_prepare {
                let vote = lock.try_prepare(txn_id(seq), seq * 10);
                match holder {
                    None => {
                        prop_assert_eq!(vote, aodb_core::Vote::Yes);
                        holder = Some(seq);
                    }
                    Some(h) if h == seq => prop_assert_eq!(vote, aodb_core::Vote::Yes),
                    Some(_) => prop_assert!(matches!(vote, aodb_core::Vote::No(_))),
                }
            } else {
                let applied = lock.decide(&txn_id(seq), commit);
                match holder {
                    Some(h) if h == seq => {
                        if commit {
                            prop_assert_eq!(applied, Some(seq * 10));
                        } else {
                            prop_assert_eq!(applied, None);
                        }
                        holder = None;
                    }
                    _ => prop_assert_eq!(applied, None),
                }
            }
            prop_assert_eq!(lock.is_locked(), holder.is_some());
        }
    }

    /// IdempotenceGuard: any sequence of tokens applies each distinct
    /// token exactly once, regardless of duplication pattern.
    #[test]
    fn idempotence_guard_applies_once(tokens in proptest::collection::vec("[a-d]{1,2}", 0..50)) {
        let mut guard = IdempotenceGuard::new();
        let mut applied = Vec::new();
        for token in &tokens {
            let mut ran = false;
            let result = guard.apply(token, || {
                ran = true;
                StepResult::Done
            });
            prop_assert_eq!(result, StepResult::Done);
            if ran {
                applied.push(token.clone());
            }
        }
        let mut distinct: Vec<String> = tokens.clone();
        distinct.sort();
        distinct.dedup();
        let mut applied_sorted = applied.clone();
        applied_sorted.sort();
        prop_assert_eq!(applied_sorted, distinct);
        prop_assert_eq!(guard.len(), applied.len());
    }

    /// `first_time` agrees with a set-based model.
    #[test]
    fn first_time_matches_set_model(tokens in proptest::collection::vec("[a-c]{1,2}", 0..40)) {
        let mut guard = IdempotenceGuard::new();
        let mut model = std::collections::HashSet::new();
        for token in &tokens {
            prop_assert_eq!(guard.first_time(token), model.insert(token.clone()));
        }
    }
}
