//! Durable-reminder tests: firing, cancellation, unregistration, and —
//! the point of reminders over timers — survival across runtime restarts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_core::{
    register_reminder, restore_reminders, unregister_reminder, ReminderFired, ReminderTable,
};
use aodb_runtime::{Actor, ActorContext, Handler, Runtime};
use aodb_store::{MemStore, StateStore};
use serde_json::json;

struct Pinged {
    fires: Arc<AtomicU64>,
    last_payload: Option<serde_json::Value>,
}

impl Actor for Pinged {
    const TYPE_NAME: &'static str = "test.pinged";
}

impl Handler<ReminderFired> for Pinged {
    fn handle(&mut self, msg: ReminderFired, _ctx: &mut ActorContext<'_>) {
        self.fires.fetch_add(1, Ordering::SeqCst);
        self.last_payload = Some(msg.payload);
    }
}

fn setup(store: &Arc<dyn StateStore>, fires: &Arc<AtomicU64>) -> Runtime {
    let rt = Runtime::single(2);
    ReminderTable::register(&rt, Arc::clone(store));
    {
        let fires = Arc::clone(fires);
        rt.register(move |_id| Pinged {
            fires: Arc::clone(&fires),
            last_payload: None,
        });
    }
    rt
}

fn wait_for_fires(fires: &Arc<AtomicU64>, at_least: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while fires.load(Ordering::SeqCst) < at_least {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    true
}

#[test]
fn reminder_fires_periodically_with_payload() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let fires = Arc::new(AtomicU64::new(0));
    let rt = setup(&store, &fires);
    let _handle = register_reminder::<Pinged>(
        &rt,
        "reminders",
        "health-check",
        "node-1",
        Duration::from_millis(15),
        json!({"check": "health"}),
    )
    .unwrap();
    assert!(wait_for_fires(&fires, 3), "reminder never fired 3 times");
    rt.shutdown();
}

#[test]
fn cancelling_the_handle_stops_firing() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let fires = Arc::new(AtomicU64::new(0));
    let rt = setup(&store, &fires);
    let handle = register_reminder::<Pinged>(
        &rt,
        "reminders",
        "short-lived",
        "node-2",
        Duration::from_millis(10),
        json!(null),
    )
    .unwrap();
    assert!(wait_for_fires(&fires, 2));
    handle.cancel();
    std::thread::sleep(Duration::from_millis(50));
    let after = fires.load(Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        fires.load(Ordering::SeqCst) <= after + 1,
        "reminder kept firing after cancel"
    );
    rt.shutdown();
}

#[test]
fn reminders_survive_runtime_restart() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let fires = Arc::new(AtomicU64::new(0));
    {
        let rt = setup(&store, &fires);
        register_reminder::<Pinged>(
            &rt,
            "reminders",
            "durable-ping",
            "node-3",
            Duration::from_millis(10),
            json!({"gen": 1}),
        )
        .unwrap();
        assert!(wait_for_fires(&fires, 1));
        rt.shutdown(); // timers die with the runtime…
    }
    fires.store(0, Ordering::SeqCst);

    // …but the registration survived in the store. A fresh runtime
    // restores and the reminder fires again.
    let rt = setup(&store, &fires);
    let handles = restore_reminders::<Pinged>(&rt, "reminders").unwrap();
    assert_eq!(handles.len(), 1);
    assert!(wait_for_fires(&fires, 2), "restored reminder never fired");
    rt.shutdown();
}

#[test]
fn unregistered_reminders_are_not_restored() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let fires = Arc::new(AtomicU64::new(0));
    {
        let rt = setup(&store, &fires);
        let handle = register_reminder::<Pinged>(
            &rt,
            "reminders",
            "doomed",
            "node-4",
            Duration::from_millis(10),
            json!(null),
        )
        .unwrap();
        handle.cancel();
        assert!(unregister_reminder(&rt, "reminders", "doomed")
            .unwrap()
            .wait_for(Duration::from_secs(5))
            .unwrap());
        rt.shutdown();
    }
    let rt = setup(&store, &fires);
    let handles = restore_reminders::<Pinged>(&rt, "reminders").unwrap();
    assert!(handles.is_empty());
    rt.shutdown();
}

#[test]
fn restore_filters_by_target_type() {
    struct Other;
    impl Actor for Other {
        const TYPE_NAME: &'static str = "test.other";
    }
    impl Handler<ReminderFired> for Other {
        fn handle(&mut self, _msg: ReminderFired, _ctx: &mut ActorContext<'_>) {}
    }

    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let fires = Arc::new(AtomicU64::new(0));
    let rt = setup(&store, &fires);
    rt.register(|_id| Other);
    let h1 = register_reminder::<Pinged>(
        &rt,
        "reminders",
        "for-pinged",
        "k",
        Duration::from_secs(30),
        json!(null),
    )
    .unwrap();
    let h2 = register_reminder::<Other>(
        &rt,
        "reminders",
        "for-other",
        "k",
        Duration::from_secs(30),
        json!(null),
    )
    .unwrap();
    h1.cancel();
    h2.cancel();
    assert_eq!(
        restore_reminders::<Pinged>(&rt, "reminders").unwrap().len(),
        1
    );
    assert_eq!(
        restore_reminders::<Other>(&rt, "reminders").unwrap().len(),
        1
    );
    rt.shutdown();
}
