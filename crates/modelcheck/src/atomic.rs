//! Atomic shims: every operation is a scheduling point inside a model
//! execution (and is observed sequentially consistently there — exclusive
//! virtual-thread execution erases weaker orderings, a documented soundness
//! limit). Outside a model they are the plain `std` atomics.

use std::sync::atomic::Ordering;

use crate::explorer;

fn point() {
    if let Some((ex, vid)) = explorer::sched_ctx() {
        explorer::schedule_point(&ex, vid);
    }
}

macro_rules! int_atomic {
    ($name:ident, $real:ty, $prim:ty) => {
        /// Instrumented integer atomic; see the module docs.
        #[derive(Debug, Default)]
        pub struct $name($real);

        impl $name {
            /// Creates a new atomic.
            pub const fn new(v: $prim) -> Self {
                Self(<$real>::new(v))
            }

            /// Loads the value.
            pub fn load(&self, o: Ordering) -> $prim {
                point();
                self.0.load(o)
            }

            /// Stores `v`.
            pub fn store(&self, v: $prim, o: Ordering) {
                point();
                self.0.store(v, o)
            }

            /// Swaps in `v`, returning the previous value.
            pub fn swap(&self, v: $prim, o: Ordering) -> $prim {
                point();
                self.0.swap(v, o)
            }

            /// Adds `v`, returning the previous value.
            pub fn fetch_add(&self, v: $prim, o: Ordering) -> $prim {
                point();
                self.0.fetch_add(v, o)
            }

            /// Subtracts `v`, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, o: Ordering) -> $prim {
                point();
                self.0.fetch_sub(v, o)
            }

            /// Stores the maximum of the current value and `v`.
            pub fn fetch_max(&self, v: $prim, o: Ordering) -> $prim {
                point();
                self.0.fetch_max(v, o)
            }

            /// Stores the minimum of the current value and `v`.
            pub fn fetch_min(&self, v: $prim, o: Ordering) -> $prim {
                point();
                self.0.fetch_min(v, o)
            }

            /// Compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                point();
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange (never fails spuriously here).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                point();
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Returns a mutable reference to the value.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.0.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.0.into_inner()
            }
        }
    };
}

int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// Instrumented boolean atomic; see the module docs.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// Creates a new atomic.
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Loads the value.
    pub fn load(&self, o: Ordering) -> bool {
        point();
        self.0.load(o)
    }

    /// Stores `v`.
    pub fn store(&self, v: bool, o: Ordering) {
        point();
        self.0.store(v, o)
    }

    /// Swaps in `v`, returning the previous value.
    pub fn swap(&self, v: bool, o: Ordering) -> bool {
        point();
        self.0.swap(v, o)
    }

    /// Compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        point();
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Logical-or with `v`, returning the previous value.
    pub fn fetch_or(&self, v: bool, o: Ordering) -> bool {
        point();
        self.0.fetch_or(v, o)
    }

    /// Logical-and with `v`, returning the previous value.
    pub fn fetch_and(&self, v: bool, o: Ordering) -> bool {
        point();
        self.0.fetch_and(v, o)
    }
}
