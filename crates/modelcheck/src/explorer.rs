//! The schedule-controlled exploration engine.
//!
//! A *model* is a closure that spawns [`crate::thread`] virtual threads and
//! exercises instrumented primitives ([`crate::sync`], [`crate::atomic`]).
//! The explorer runs the closure many times; within one execution only a
//! single virtual thread runs at a time, and at every synchronization
//! operation the running thread hands control to the explorer, which picks
//! the next thread to run from the *enabled* set. The sequence of picks is
//! driven either by a bounded-preemption depth-first search over the
//! schedule tree (CHESS-style) or by a seeded random walk.
//!
//! Virtual threads are real OS threads (recycled through a small pool), but
//! they are strictly co-routined: a thread off turn parks on the execution's
//! condvar, so model code observes sequentially-consistent interleavings
//! chosen by the explorer, never by the OS.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Panic payload used to unwind virtual threads when an execution is torn
/// down after a failure. Never escapes the pool worker.
pub(crate) struct ModelAbort;

// ---------------------------------------------------------------------------
// Per-object lazy ids
// ---------------------------------------------------------------------------

static NEXT_OBJ_ID: AtomicUsize = AtomicUsize::new(1);

/// Process-global lazily-assigned object id, usable from `const fn new`.
pub(crate) struct LazyId(AtomicUsize);

impl LazyId {
    pub(crate) const fn new() -> Self {
        LazyId(AtomicUsize::new(0))
    }

    pub(crate) fn get(&self) -> usize {
        let v = self.0.load(Ordering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// What a blocked virtual thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Wait {
    /// Mutex acquisition (object id).
    Mutex(usize),
    /// RwLock shared acquisition (object id).
    RwRead(usize),
    /// RwLock exclusive acquisition (object id).
    RwWrite(usize),
    /// Condvar wait (condvar object id).
    Condvar(usize),
    /// `thread::park`.
    Park,
    /// Join on another virtual thread (vid).
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Ready,
    Blocked(Wait),
    Exited,
}

struct TState {
    run: Run,
    /// Blocked wait is timed: the scheduler may elect to fire the timeout.
    timed: bool,
    /// Set when the scheduler woke this thread by firing its timeout.
    timed_out: bool,
    /// Park token (sticky unpark).
    token: bool,
}

impl TState {
    fn ready() -> Self {
        TState {
            run: Run::Ready,
            timed: false,
            timed_out: false,
            token: false,
        }
    }
}

#[derive(Default)]
struct MxState {
    locked: bool,
}

#[derive(Default)]
struct RwState {
    writer: bool,
    readers: usize,
}

#[derive(Default)]
struct CvState {
    waiters: Vec<usize>,
}

/// One scheduling decision: position chosen among `allowed` candidates.
#[derive(Clone, Copy)]
struct Decision {
    pos: usize,
    allowed: usize,
    /// Previously-running thread was enabled here (so pos > 0 preempts it).
    prev_enabled: bool,
    /// Preemption count before this decision.
    pre_before: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Mode {
    Dfs,
    Random,
}

struct Ctl {
    mode: Mode,
    /// Replay prefix: forced candidate positions for the first decisions.
    forced: Vec<usize>,
    rng: u64,
    bound: u32,
}

pub(crate) struct Exec {
    threads: Vec<TState>,
    current: usize,
    live: usize,
    steps: u64,
    max_steps: u64,
    preemptions: u32,
    mutexes: HashMap<usize, MxState>,
    rws: HashMap<usize, RwState>,
    cvs: HashMap<usize, CvState>,
    decisions: Vec<Decision>,
    ctl: Ctl,
    failure: Option<String>,
    done: bool,
}

pub(crate) struct ExecShared {
    m: Mutex<Exec>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<ExecShared>, usize)>> = const { RefCell::new(None) };
}

/// The current virtual-thread context, if this OS thread is a vthread of a
/// live model execution. `None` means "run on the real primitives".
pub(crate) fn ctx() -> Option<(Arc<ExecShared>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Context for *acquisition-side* scheduling operations. `None` while the
/// calling thread is unwinding: destructors that run during a panic (a
/// caught committer panic, or the ModelAbort teardown) must not take
/// scheduling decisions — a decision can itself panic, and a second panic
/// inside a destructor aborts the process. Acquisitions therefore fall
/// back to the real primitives. Release-side operations (unlock, notify,
/// unpark) still reach the model through [`ctx`] so lock state stays
/// consistent and model waiters are woken; they skip only the yield (the
/// unwind runs as one atomic step until normal code resumes).
pub(crate) fn sched_ctx() -> Option<(Arc<ExecShared>, usize)> {
    if std::thread::panicking() {
        None
    } else {
        ctx()
    }
}

fn set_ctx(v: Option<(Arc<ExecShared>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Exec {
    fn enabled(&self, t: usize) -> bool {
        match self.threads[t].run {
            Run::Ready => true,
            Run::Blocked(_) => self.threads[t].timed,
            Run::Exited => false,
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
    }

    fn wait_dump(&self) -> String {
        let mut parts = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if let Run::Blocked(w) = t.run {
                parts.push(format!("t{i}={w:?}"));
            }
        }
        parts.join(", ")
    }

    /// Pick the next thread to run. Sets `failure` on deadlock or when the
    /// step budget is exhausted, `done` when every thread has exited.
    fn pick(&mut self) {
        if self.failure.is_some() || self.done {
            return;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(format!(
                "step budget exceeded ({} scheduling points) — livelock or runaway model",
                self.max_steps
            ));
            return;
        }
        let prev = self.current;
        let enabled: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.enabled(t))
            .collect();
        if enabled.is_empty() {
            if self.live > 0 {
                self.fail(format!(
                    "deadlock: {} live thread(s), none enabled [{}]",
                    self.live,
                    self.wait_dump()
                ));
            } else {
                self.done = true;
            }
            return;
        }
        let prev_enabled = enabled.contains(&prev);
        let mut cand: Vec<usize> = Vec::with_capacity(enabled.len());
        if prev_enabled {
            cand.push(prev);
            cand.extend(enabled.iter().copied().filter(|&t| t != prev));
            if self.preemptions >= self.ctl.bound {
                cand.truncate(1);
            }
        } else {
            cand = enabled;
        }
        let depth = self.decisions.len();
        let pos = if depth < self.ctl.forced.len() {
            self.ctl.forced[depth].min(cand.len() - 1)
        } else {
            match self.ctl.mode {
                Mode::Dfs => 0,
                Mode::Random => (splitmix(&mut self.ctl.rng) as usize) % cand.len(),
            }
        };
        let chosen = cand[pos];
        self.decisions.push(Decision {
            pos,
            allowed: cand.len(),
            prev_enabled,
            pre_before: self.preemptions,
        });
        if prev_enabled && chosen != prev {
            self.preemptions += 1;
        }
        // Firing a timeout wakes the thread as "timed out".
        let ts = &mut self.threads[chosen];
        if let Run::Blocked(w) = ts.run {
            debug_assert!(ts.timed);
            ts.run = Run::Ready;
            ts.timed = false;
            ts.timed_out = true;
            if let Wait::Condvar(cv) = w {
                if let Some(cvs) = self.cvs.get_mut(&cv) {
                    cvs.waiters.retain(|&t| t != chosen);
                }
            }
        }
        self.current = chosen;
    }

    fn wake(&mut self, t: usize) {
        let ts = &mut self.threads[t];
        if matches!(ts.run, Run::Blocked(_)) {
            ts.run = Run::Ready;
            ts.timed = false;
        }
    }

    fn wake_waiters_of(&mut self, pred: impl Fn(Wait) -> bool) {
        for t in 0..self.threads.len() {
            if let Run::Blocked(w) = self.threads[t].run {
                if pred(w) {
                    self.wake(t);
                }
            }
        }
    }
}

/// Run a scheduling decision and block until it is this thread's turn again.
/// Panics with [`ModelAbort`] when the execution has failed.
fn yield_turn<'a>(
    shared: &'a ExecShared,
    mut g: MutexGuard<'a, Exec>,
    vid: usize,
) -> MutexGuard<'a, Exec> {
    g.pick();
    shared.cv.notify_all();
    loop {
        if g.failure.is_some() {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        if g.current == vid && matches!(g.threads[vid].run, Run::Ready) {
            return g;
        }
        g = shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

fn lock_exec(shared: &ExecShared) -> MutexGuard<'_, Exec> {
    shared.m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Operations invoked by the instrumented primitives (crate::sync / thread)
// ---------------------------------------------------------------------------

/// A plain scheduling point (atomics, yields, spawn sites).
pub(crate) fn schedule_point(shared: &ExecShared, vid: usize) {
    let g = lock_exec(shared);
    drop(yield_turn(shared, g, vid));
}

pub(crate) fn mutex_lock(shared: &ExecShared, vid: usize, id: usize) {
    schedule_point(shared, vid);
    let mut g = lock_exec(shared);
    loop {
        let mx = g.mutexes.entry(id).or_default();
        if !mx.locked {
            mx.locked = true;
            return;
        }
        g.threads[vid].run = Run::Blocked(Wait::Mutex(id));
        g = yield_turn(shared, g, vid);
    }
}

pub(crate) fn mutex_try_lock(shared: &ExecShared, vid: usize, id: usize) -> bool {
    schedule_point(shared, vid);
    let mut g = lock_exec(shared);
    let mx = g.mutexes.entry(id).or_default();
    if mx.locked {
        false
    } else {
        mx.locked = true;
        true
    }
}

pub(crate) fn mutex_unlock(shared: &ExecShared, vid: usize, id: usize) {
    let mut g = lock_exec(shared);
    if g.failure.is_some() || g.done {
        return; // teardown: guards dropped during unwind
    }
    g.mutexes.entry(id).or_default().locked = false;
    g.wake_waiters_of(|w| w == Wait::Mutex(id));
    if std::thread::panicking() {
        // Unwinding release: state updated and waiters woken above; take
        // no scheduling decision (see `sched_ctx`).
        drop(g);
        shared.cv.notify_all();
        return;
    }
    drop(yield_turn(shared, g, vid));
}

pub(crate) fn rw_lock(shared: &ExecShared, vid: usize, id: usize, write: bool) {
    schedule_point(shared, vid);
    let mut g = lock_exec(shared);
    loop {
        let rw = g.rws.entry(id).or_default();
        if write {
            if !rw.writer && rw.readers == 0 {
                rw.writer = true;
                return;
            }
            g.threads[vid].run = Run::Blocked(Wait::RwWrite(id));
        } else {
            if !rw.writer {
                rw.readers += 1;
                return;
            }
            g.threads[vid].run = Run::Blocked(Wait::RwRead(id));
        }
        g = yield_turn(shared, g, vid);
    }
}

pub(crate) fn rw_try_lock(shared: &ExecShared, vid: usize, id: usize, write: bool) -> bool {
    schedule_point(shared, vid);
    let mut g = lock_exec(shared);
    let rw = g.rws.entry(id).or_default();
    if write {
        if rw.writer || rw.readers > 0 {
            return false;
        }
        rw.writer = true;
    } else {
        if rw.writer {
            return false;
        }
        rw.readers += 1;
    }
    true
}

pub(crate) fn rw_unlock(shared: &ExecShared, vid: usize, id: usize, write: bool) {
    let mut g = lock_exec(shared);
    if g.failure.is_some() || g.done {
        return;
    }
    {
        let rw = g.rws.entry(id).or_default();
        if write {
            rw.writer = false;
        } else {
            rw.readers = rw.readers.saturating_sub(1);
        }
    }
    g.wake_waiters_of(|w| w == Wait::RwRead(id) || w == Wait::RwWrite(id));
    if std::thread::panicking() {
        // Unwinding release: state updated and waiters woken above; take
        // no scheduling decision (see `sched_ctx`).
        drop(g);
        shared.cv.notify_all();
        return;
    }
    drop(yield_turn(shared, g, vid));
}

/// Condvar wait. The caller has already dropped the real guard and released
/// the model mutex is done here; returns `true` when woken by timeout.
pub(crate) fn condvar_wait(
    shared: &ExecShared,
    vid: usize,
    cv_id: usize,
    mx_id: usize,
    timed: bool,
) -> bool {
    let mut g = lock_exec(shared);
    g.cvs.entry(cv_id).or_default().waiters.push(vid);
    g.threads[vid].run = Run::Blocked(Wait::Condvar(cv_id));
    g.threads[vid].timed = timed;
    // Release the associated mutex (wait's atomic unlock half).
    g.mutexes.entry(mx_id).or_default().locked = false;
    g.wake_waiters_of(|w| w == Wait::Mutex(mx_id));
    let mut g = yield_turn(shared, g, vid);
    let to = g.threads[vid].timed_out;
    g.threads[vid].timed_out = false;
    to
}

pub(crate) fn condvar_notify(shared: &ExecShared, vid: usize, cv_id: usize, all: bool) {
    let mut g = lock_exec(shared);
    if g.failure.is_some() || g.done {
        return;
    }
    let woken: Vec<usize> = {
        let cvs = g.cvs.entry(cv_id).or_default();
        if all {
            std::mem::take(&mut cvs.waiters)
        } else if cvs.waiters.is_empty() {
            Vec::new()
        } else {
            vec![cvs.waiters.remove(0)]
        }
    };
    for t in woken {
        g.wake(t);
    }
    if std::thread::panicking() {
        // Unwinding release: state updated and waiters woken above; take
        // no scheduling decision (see `sched_ctx`).
        drop(g);
        shared.cv.notify_all();
        return;
    }
    drop(yield_turn(shared, g, vid));
}

/// `thread::park` / `park_timeout`.
pub(crate) fn park(shared: &ExecShared, vid: usize, timed: bool) {
    let mut g = lock_exec(shared);
    if g.threads[vid].token {
        g.threads[vid].token = false;
    } else {
        g.threads[vid].run = Run::Blocked(Wait::Park);
        g.threads[vid].timed = timed;
    }
    let mut g = yield_turn(shared, g, vid);
    g.threads[vid].timed_out = false;
}

/// `Thread::unpark` on vthread `target`. `vid` is the calling vthread, or
/// `None` when a non-model thread holds a handle to a model thread (the
/// token is still delivered, without a scheduling decision).
pub(crate) fn unpark(shared: &ExecShared, vid: Option<usize>, target: usize) {
    let mut g = lock_exec(shared);
    if g.failure.is_some() || g.done {
        return;
    }
    if matches!(g.threads[target].run, Run::Blocked(Wait::Park)) {
        g.wake(target);
    } else {
        g.threads[target].token = true;
    }
    match vid {
        Some(vid) if !std::thread::panicking() => drop(yield_turn(shared, g, vid)),
        _ => {
            // Non-model caller, or an unwinding one: deliver the token
            // without a scheduling decision.
            drop(g);
            shared.cv.notify_all();
        }
    }
}

pub(crate) fn join(shared: &ExecShared, vid: usize, target: usize) {
    schedule_point(shared, vid);
    let mut g = lock_exec(shared);
    while !matches!(g.threads[target].run, Run::Exited) {
        g.threads[vid].run = Run::Blocked(Wait::Join(target));
        g = yield_turn(shared, g, vid);
    }
}

// ---------------------------------------------------------------------------
// Virtual-thread spawning and the worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: mpsc::Sender<Job>,
    rx: Mutex<mpsc::Receiver<Job>>,
    idle: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel();
        Pool {
            tx,
            rx: Mutex::new(rx),
            idle: AtomicUsize::new(0),
        }
    })
}

fn dispatch(job: Job) {
    let p = pool();
    // Reserve an idle worker for this job, or spawn a fresh one. The
    // reservation must be an atomic decrement, not a `== 0` check: a
    // vthread job occupies its worker for the whole execution (it blocks
    // inside the job waiting for turns), so two dispatches that both saw
    // the same single idle worker would strand the second job in the
    // channel with nobody left to run it — an OS-level deadlock that no
    // model schedule can ever resolve.
    let reserved = p
        .idle
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
        .is_ok();
    if !reserved {
        std::thread::Builder::new()
            .name("modelcheck-vthread".into())
            .spawn(|| {
                let p = pool();
                loop {
                    let job = {
                        let rx = p.rx.lock().unwrap_or_else(|e| e.into_inner());
                        rx.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => return,
                    }
                    // Only count ourselves idle once the job is fully
                    // done; the dispatcher owns the decrement.
                    p.idle.fetch_add(1, Ordering::AcqRel);
                }
            })
            .expect("spawn modelcheck pool worker");
    }
    p.tx.send(job).expect("modelcheck pool receiver alive");
}

/// Register a new vthread running `f` and hand it to the pool. Takes a
/// scheduling decision (the spawn is a visible operation).
pub(crate) fn spawn_vthread(
    shared: &Arc<ExecShared>,
    parent: usize,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> usize {
    let mut g = lock_exec(shared);
    g.threads.push(TState::ready());
    g.live += 1;
    let vid = g.threads.len() - 1;
    drop(g);
    let sh = Arc::clone(shared);
    dispatch(Box::new(move || run_vthread(sh, vid, f)));
    let g = lock_exec(shared);
    drop(yield_turn(shared, g, parent));
    vid
}

fn run_vthread(shared: Arc<ExecShared>, vid: usize, f: Box<dyn FnOnce() + Send + 'static>) {
    set_ctx(Some((Arc::clone(&shared), vid)));
    // Wait for our first turn.
    let start_ok = {
        let mut g = lock_exec(&shared);
        loop {
            if g.failure.is_some() {
                break false;
            }
            if g.current == vid && matches!(g.threads[vid].run, Run::Ready) {
                break true;
            }
            g = shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    };
    if start_ok {
        let r = catch_unwind(AssertUnwindSafe(f));
        let mut g = lock_exec(&shared);
        g.threads[vid].run = Run::Exited;
        g.live -= 1;
        match r {
            Ok(()) => {
                g.wake_waiters_of(|w| w == Wait::Join(vid));
                if g.live == 0 {
                    g.done = true;
                } else {
                    g.pick();
                }
            }
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_none() {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "virtual thread panicked".into());
                    g.fail(format!("thread t{vid} panicked: {msg}"));
                }
                // On ModelAbort the failure is already recorded.
            }
        }
        shared.cv.notify_all();
    }
    set_ctx(None);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Exploration statistics returned by [`model_report`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct executions (schedules) run.
    pub schedules: u64,
    /// The bounded-DFS tree was fully explored within the budget.
    pub exhausted: bool,
    /// Exploration mode that ran ("dfs", "random", or "replay").
    pub mode: &'static str,
    /// Seed used for random mode (0 in DFS mode).
    pub seed: u64,
}

struct Config {
    mode: Mode,
    max_schedules: u64,
    budget_ms: u64,
    seed: u64,
    bound: u32,
    max_steps: u64,
    min_schedules: u64,
    replay: Option<(String, Vec<usize>)>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config() -> Config {
    let mode = match std::env::var("MODEL_MODE").as_deref() {
        Ok("random") => Mode::Random,
        _ => Mode::Dfs,
    };
    let replay = std::env::var("MODEL_SCHEDULE").ok().and_then(|s| {
        let (name, trace) = s.split_once(':')?;
        let positions = if trace.is_empty() {
            Vec::new()
        } else {
            trace
                .split('.')
                .map(|p| p.parse().ok())
                .collect::<Option<Vec<usize>>>()?
        };
        Some((name.to_string(), positions))
    });
    Config {
        mode,
        max_schedules: env_u64("MODEL_SCHEDULES", 2_000),
        budget_ms: env_u64("MODEL_BUDGET_MS", 10_000),
        seed: env_u64("MODEL_SEED", 0x5eed_cafe),
        bound: env_u64("MODEL_PREEMPTIONS", 2) as u32,
        max_steps: env_u64("MODEL_MAX_STEPS", 100_000),
        min_schedules: env_u64("MODEL_MIN_SCHEDULES", 0),
        replay,
    }
}

/// Given a finished execution's decisions, produce the forced prefix of the
/// next DFS schedule, or `None` when the bounded tree is exhausted.
fn next_forced(decisions: &[Decision], bound: u32) -> Option<Vec<usize>> {
    for d in (0..decisions.len()).rev() {
        let dec = decisions[d];
        if dec.pos + 1 < dec.allowed && (!dec.prev_enabled || dec.pre_before < bound) {
            let mut forced: Vec<usize> = decisions[..d].iter().map(|x| x.pos).collect();
            forced.push(dec.pos + 1);
            return Some(forced);
        }
    }
    None
}

fn new_exec(ctl: Ctl, max_steps: u64) -> Arc<ExecShared> {
    Arc::new(ExecShared {
        m: Mutex::new(Exec {
            threads: Vec::new(),
            current: 0,
            live: 0,
            steps: 0,
            max_steps,
            preemptions: 0,
            mutexes: HashMap::new(),
            rws: HashMap::new(),
            cvs: HashMap::new(),
            decisions: Vec::new(),
            ctl,
            failure: None,
            done: false,
        }),
        cv: Condvar::new(),
    })
}

/// Run one execution of the model body; returns `(decisions, failure)`.
fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    ctl: Ctl,
    max_steps: u64,
) -> (Vec<Decision>, Option<String>) {
    let shared = new_exec(ctl, max_steps);
    {
        let mut g = lock_exec(&shared);
        g.threads.push(TState::ready());
        g.live = 1;
        g.current = 0;
    }
    let body = Arc::clone(f);
    let sh = Arc::clone(&shared);
    dispatch(Box::new(move || {
        run_vthread(sh, 0, Box::new(move || body()))
    }));
    let mut g = lock_exec(&shared);
    loop {
        if g.done || g.failure.is_some() {
            break;
        }
        g = shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    // Give unwinding vthreads a moment to observe failure; they park only on
    // our condvar so the notify in report/exit paths has released them.
    (std::mem::take(&mut g.decisions), g.failure.take())
}

fn fail_with_trace(name: &str, decisions: &[Decision], msg: &str, extra: &str) -> ! {
    let trace: Vec<String> = decisions.iter().map(|d| d.pos.to_string()).collect();
    panic!(
        "model `{name}` failed: {msg}\n  replay with: MODEL_SCHEDULE={name}:{}\n{extra}",
        trace.join(".")
    );
}

/// Explore `name`, panicking (with a replayable `MODEL_SCHEDULE=` line) on
/// any invariant violation, deadlock, or vthread panic. Returns exploration
/// statistics.
pub fn model_report(name: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
    assert!(
        ctx().is_none(),
        "model() may not be called from inside a model execution"
    );
    let cfg = config();
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(f);

    // Pinned replay of a single schedule takes priority over exploration.
    if let Some((target, positions)) = &cfg.replay {
        if target == name {
            let ctl = Ctl {
                mode: Mode::Dfs,
                forced: positions.clone(),
                rng: 0,
                bound: u32::MAX, // the pinned trace dictates everything
            };
            let (decisions, failure) = run_once(&body, ctl, cfg.max_steps);
            if let Some(msg) = failure {
                fail_with_trace(name, &decisions, &msg, "(pinned replay)");
            }
            return Report {
                schedules: 1,
                exhausted: false,
                mode: "replay",
                seed: 0,
            };
        }
    }

    let start = Instant::now();
    let mut forced: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut exhausted = false;
    let mut seed_stream = cfg.seed;
    while schedules < cfg.max_schedules && start.elapsed().as_millis() < u128::from(cfg.budget_ms) {
        let ctl = Ctl {
            mode: cfg.mode,
            forced: std::mem::take(&mut forced),
            rng: splitmix(&mut seed_stream),
            bound: cfg.bound,
        };
        let (decisions, failure) = run_once(&body, ctl, cfg.max_steps);
        schedules += 1;
        if let Some(msg) = failure {
            let extra = format!(
                "  (mode={:?} seed={:#x} schedule #{schedules})",
                cfg.mode, cfg.seed
            );
            fail_with_trace(name, &decisions, &msg, &extra);
        }
        match cfg.mode {
            Mode::Dfs => match next_forced(&decisions, cfg.bound) {
                Some(next) => forced = next,
                None => {
                    exhausted = true;
                    break;
                }
            },
            Mode::Random => {}
        }
    }
    let report = Report {
        schedules,
        exhausted,
        mode: if cfg.mode == Mode::Dfs {
            "dfs"
        } else {
            "random"
        },
        seed: cfg.seed,
    };
    println!(
        "model {name}: {} schedules explored (mode={}, seed={:#x}, exhausted={}, bound={}, {:?})",
        report.schedules,
        report.mode,
        report.seed,
        report.exhausted,
        cfg.bound,
        start.elapsed()
    );
    if cfg.min_schedules > 0 && !exhausted && schedules < cfg.min_schedules {
        panic!(
            "model `{name}` explored only {schedules} schedules (< MODEL_MIN_SCHEDULES={}) without exhausting the tree",
            cfg.min_schedules
        );
    }
    report
}

/// Explore `name` with env-driven configuration; panic on any failure.
pub fn model(name: &str, f: impl Fn() + Send + Sync + 'static) {
    let _ = model_report(name, f);
}
