//! `modelcheck` — a deterministic schedule-controlled concurrency model
//! checker in the style of loom/CHESS, built for this workspace's vendored
//! sync primitives.
//!
//! A model is a closure spawning [`thread`] virtual threads that exercise
//! [`sync`] / [`atomic`] primitives. [`model`] runs the closure under many
//! interleavings — bounded-preemption DFS over the schedule tree by default,
//! or a seeded random walk — with only one virtual thread running at a time,
//! so every interleaving is deterministic and replayable. Deadlocks (no
//! enabled thread), assertion failures, and panics inside model threads all
//! fail the run with a `MODEL_SCHEDULE=name:…` line that pins the exact
//! schedule for replay.
//!
//! Environment knobs: `MODEL_MODE` (`dfs`|`random`), `MODEL_SCHEDULES`,
//! `MODEL_BUDGET_MS`, `MODEL_SEED`, `MODEL_PREEMPTIONS`, `MODEL_MAX_STEPS`,
//! `MODEL_MIN_SCHEDULES`, `MODEL_SCHEDULE` (pinned replay). See DESIGN.md
//! §16 for the soundness limits (sequentially-consistent atomics, FIFO
//! notify, preemption bound).
//!
//! The primitives fall back transparently to their real `std` counterparts
//! on threads that are not part of a model execution, so crates may be
//! compiled with their `model` feature everywhere (test builds unify
//! features) without behavioral change outside models.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod explorer;

pub mod atomic;
pub mod sync;
pub mod thread;

pub use explorer::{model, model_report, Report};

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn expect_failure(f: impl FnOnce() + Send) -> String {
        let err = catch_unwind(AssertUnwindSafe(f)).expect_err("model should fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn finds_lost_update_race() {
        // Classic read-modify-write race through a non-atomic protocol:
        // both threads load, then both store load+1. DFS must find the
        // interleaving where one update is lost.
        let msg = expect_failure(|| {
            model("lost_update", || {
                let c = Arc::new(atomic::AtomicU64::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            let v = c.load(Ordering::SeqCst);
                            c.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(msg.contains("MODEL_SCHEDULE=lost_update:"), "got: {msg}");
        assert!(msg.contains("lost update"), "got: {msg}");
    }

    #[test]
    fn mutex_protects_counter() {
        // With a mutex the same pattern has no failing schedule.
        let report = model_report("guarded_update", || {
            let c = Arc::new(sync::Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let mut g = c.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*c.lock(), 2);
        });
        assert!(report.schedules > 1, "expected exploration, got {report:?}");
    }

    #[test]
    fn detects_ab_ba_deadlock() {
        let msg = expect_failure(|| {
            model("ab_ba", || {
                let a = Arc::new(sync::Mutex::new(()));
                let b = Arc::new(sync::Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h1 = thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let h2 = thread::spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                });
                h1.join().unwrap();
                h2.join().unwrap();
            });
        });
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn detects_lost_wakeup() {
        // Waiter checks the flag *before* taking the lock decision into
        // account: signal may fire between check and wait -> lost wakeup,
        // surfacing as a deadlock (waiter never notified again).
        let msg = expect_failure(|| {
            model("lost_wakeup", || {
                let m = Arc::new(sync::Mutex::new(false));
                let cv = Arc::new(sync::Condvar::new());
                let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
                let waiter = thread::spawn(move || {
                    let ready = { *m2.lock() };
                    if !ready {
                        // BUG: re-taking the lock after the check races the
                        // signaller; wait unconditionally.
                        let g = m2.lock();
                        let _g = cv2.wait(g);
                    }
                });
                {
                    *m.lock() = true;
                    cv.notify_one();
                }
                waiter.join().unwrap();
            });
        });
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn condvar_predicate_loop_is_safe() {
        model("cv_predicate", || {
            let m = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let waiter = thread::spawn(move || {
                let mut g = m2.lock();
                while !*g {
                    g = cv2.wait(g);
                }
            });
            {
                *m.lock() = true;
                cv.notify_one();
            }
            waiter.join().unwrap();
        });
    }

    #[test]
    fn timed_wait_can_fire_instead_of_notify() {
        // The explorer must be able to fire the timeout before the notify
        // arrives; count both outcomes over the exploration.
        use std::sync::atomic::AtomicU64 as StdU64;
        let timeouts = Arc::new(StdU64::new(0));
        let wakes = Arc::new(StdU64::new(0));
        let (t2, w2) = (Arc::clone(&timeouts), Arc::clone(&wakes));
        model("timed_wait", move || {
            let m = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let (t3, w3) = (Arc::clone(&t2), Arc::clone(&w2));
            let waiter = thread::spawn(move || {
                let g = m2.lock();
                let (_g, timed_out) = cv2.wait_for(g, std::time::Duration::from_millis(1));
                if timed_out {
                    t3.fetch_add(1, Ordering::Relaxed);
                } else {
                    w3.fetch_add(1, Ordering::Relaxed);
                }
            });
            {
                let _g = m.lock();
                cv.notify_one();
            }
            waiter.join().unwrap();
        });
        assert!(
            timeouts.load(Ordering::Relaxed) > 0,
            "timeout branch never explored"
        );
        assert!(
            wakes.load(Ordering::Relaxed) > 0,
            "notify branch never explored"
        );
    }

    #[test]
    fn park_unpark_token_is_sticky() {
        model("park_token", || {
            let h = thread::spawn(|| {
                thread::park();
            });
            h.thread().unpark();
            h.join().unwrap();
        });
    }

    #[test]
    fn replay_env_reproduces_failure() {
        // First find a failing schedule, then replay it via MODEL_SCHEDULE
        // and require the same invariant violation on the first execution.
        let msg = expect_failure(|| {
            model("replay_probe", || {
                let c = Arc::new(atomic::AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let h = thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                h.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        let line = msg
            .lines()
            .find(|l| l.contains("MODEL_SCHEDULE="))
            .expect("failure prints a schedule");
        let sched = line.trim().trim_start_matches("replay with: ");
        let trace = sched.trim_start_matches("MODEL_SCHEDULE=").to_string();
        // Env vars are process-global; this test is the only MODEL_SCHEDULE
        // writer in the suite and removes it before returning.
        std::env::set_var("MODEL_SCHEDULE", &trace);
        let replay_msg = expect_failure(|| {
            model("replay_probe", || {
                let c = Arc::new(atomic::AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let h = thread::spawn(move || {
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst);
                });
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
                h.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        std::env::remove_var("MODEL_SCHEDULE");
        assert!(replay_msg.contains("pinned replay"), "got: {replay_msg}");
        assert!(replay_msg.contains("lost update"), "got: {replay_msg}");
    }
}
