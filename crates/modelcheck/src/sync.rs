//! Instrumented `Mutex` / `RwLock` / `Condvar` with the same API surface as
//! the vendored `parking_lot` shim (non-poisoning, `wait` consumes the
//! guard, `wait_for` returns `(guard, timed_out)`).
//!
//! Every operation first checks whether the calling OS thread is a virtual
//! thread of a live model execution. If not (production code, ordinary
//! tests), the primitive behaves exactly like the plain shim on top of
//! `std::sync` — zero behavioral difference, one thread-local read of
//! overhead. Inside a model execution every acquire/release/wait/notify is
//! routed through the [`crate::explorer`], which decides the interleaving.
//!
//! Model objects must stay *closed*: a primitive touched by a virtual
//! thread must not be concurrently touched by non-model threads.

use std::fmt;
use std::sync::{self, Arc};
use std::time::Duration;

use crate::explorer::{self, ExecShared, LazyId};

type Ctx = (Arc<ExecShared>, usize);

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API, routed
/// through the explorer inside model executions.
pub struct Mutex<T: ?Sized> {
    id: LazyId,
    real: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: LazyId::new(),
            real: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.real.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn real_lock(&self) -> sync::MutexGuard<'_, T> {
        self.real.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match explorer::sched_ctx() {
            None => MutexGuard {
                real: Some(self.real_lock()),
                lock: self,
                model: None,
            },
            Some((ex, vid)) => {
                explorer::mutex_lock(&ex, vid, self.id.get());
                let real = match self.real.try_lock() {
                    Ok(g) => g,
                    // A vthread that panicked while holding the lock poisons
                    // it; the model never poisons, so strip it here too.
                    Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        panic!("model mutex integrity: real lock held")
                    }
                };
                MutexGuard {
                    real: Some(real),
                    lock: self,
                    model: Some((ex, vid)),
                }
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match explorer::sched_ctx() {
            None => match self.real.try_lock() {
                Ok(g) => Some(MutexGuard {
                    real: Some(g),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    real: Some(e.into_inner()),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((ex, vid)) => {
                if explorer::mutex_try_lock(&ex, vid, self.id.get()) {
                    let real = match self.real.try_lock() {
                        Ok(g) => g,
                        // A vthread that panicked while holding the lock poisons
                        // it; the model never poisons, so strip it here too.
                        Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                        Err(sync::TryLockError::WouldBlock) => {
                            panic!("model mutex integrity: real lock held")
                        }
                    };
                    Some(MutexGuard {
                        real: Some(real),
                        lock: self,
                        model: Some((ex, vid)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.real.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases through the explorer inside models.
pub struct MutexGuard<'a, T: ?Sized> {
    real: Option<sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    model: Option<Ctx>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Take the guard apart without running `Drop` (condvar handoff).
    fn into_parts(mut self) -> (sync::MutexGuard<'a, T>, &'a Mutex<T>, Option<Ctx>) {
        let real = self.real.take().expect("guard intact");
        let lock = self.lock;
        let model = self.model.take();
        std::mem::forget(self);
        (real, lock, model)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard intact")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard intact")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the explorer: the next
        // scheduled thread may immediately try_lock it.
        drop(self.real.take());
        if let Some((ex, vid)) = self.model.take() {
            explorer::mutex_unlock(&ex, vid, self.lock.id.get());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable for use with [`Mutex`]. `wait` consumes and returns
/// the guard (`std::sync::Condvar` style), like the vendored shim.
pub struct Condvar {
    id: LazyId,
    real: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            id: LazyId::new(),
            real: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Some((ex, vid)) = explorer::ctx() {
            explorer::condvar_notify(&ex, vid, self.id.get(), false);
        }
        self.real.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((ex, vid)) = explorer::ctx() {
            explorer::condvar_notify(&ex, vid, self.id.get(), true);
        }
        self.real.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified; reacquires
    /// the lock before returning. Spurious wakeups are possible — always
    /// wait in a predicate loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (real, lock, model) = guard.into_parts();
        match model {
            None => {
                let real = self.real.wait(real).unwrap_or_else(|e| e.into_inner());
                MutexGuard {
                    real: Some(real),
                    lock,
                    model: None,
                }
            }
            Some((ex, vid)) => {
                drop(real);
                explorer::condvar_wait(&ex, vid, self.id.get(), lock.id.get(), false);
                Self::model_relock(lock, ex, vid)
            }
        }
    }

    /// Like [`Condvar::wait`] with a timeout; the boolean is `true` when
    /// the wait timed out rather than being notified. Inside a model the
    /// timeout is virtual: the explorer may fire it at any decision point.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (real, lock, model) = guard.into_parts();
        match model {
            None => match self.real.wait_timeout(real, timeout) {
                Ok((g, r)) => (
                    MutexGuard {
                        real: Some(g),
                        lock,
                        model: None,
                    },
                    r.timed_out(),
                ),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (
                        MutexGuard {
                            real: Some(g),
                            lock,
                            model: None,
                        },
                        r.timed_out(),
                    )
                }
            },
            Some((ex, vid)) => {
                drop(real);
                let timed_out =
                    explorer::condvar_wait(&ex, vid, self.id.get(), lock.id.get(), true);
                (Self::model_relock(lock, ex, vid), timed_out)
            }
        }
    }

    fn model_relock<T>(lock: &Mutex<T>, ex: Arc<ExecShared>, vid: usize) -> MutexGuard<'_, T> {
        explorer::mutex_lock(&ex, vid, lock.id.get());
        let real = match lock.real.try_lock() {
            Ok(g) => g,
            // See `Mutex::lock`: poison is stripped, only contention is a bug.
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => {
                panic!("model mutex integrity: real lock held")
            }
        };
        MutexGuard {
            real: Some(real),
            lock,
            model: Some((ex, vid)),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with `parking_lot`'s non-poisoning API, routed
/// through the explorer inside model executions.
pub struct RwLock<T: ?Sized> {
    id: LazyId,
    real: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            id: LazyId::new(),
            real: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.real.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match explorer::sched_ctx() {
            None => {
                let real = self.real.read().unwrap_or_else(|e| e.into_inner());
                RwLockReadGuard {
                    real: Some(real),
                    lock: self,
                    model: None,
                }
            }
            Some((ex, vid)) => {
                explorer::rw_lock(&ex, vid, self.id.get(), false);
                let real = match self.real.try_read() {
                    Ok(g) => g,
                    // See `Mutex::lock`: strip poison, only contention is a bug.
                    Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        panic!("model rwlock integrity: writer held")
                    }
                };
                RwLockReadGuard {
                    real: Some(real),
                    lock: self,
                    model: Some((ex, vid)),
                }
            }
        }
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match explorer::sched_ctx() {
            None => {
                let real = self.real.write().unwrap_or_else(|e| e.into_inner());
                RwLockWriteGuard {
                    real: Some(real),
                    lock: self,
                    model: None,
                }
            }
            Some((ex, vid)) => {
                explorer::rw_lock(&ex, vid, self.id.get(), true);
                let real = match self.real.try_write() {
                    Ok(g) => g,
                    // See `Mutex::lock`: strip poison, only contention is a bug.
                    Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        panic!("model rwlock integrity: lock held")
                    }
                };
                RwLockWriteGuard {
                    real: Some(real),
                    lock: self,
                    model: Some((ex, vid)),
                }
            }
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match explorer::sched_ctx() {
            None => match self.real.try_read() {
                Ok(g) => Some(RwLockReadGuard {
                    real: Some(g),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                    real: Some(e.into_inner()),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((ex, vid)) => {
                if explorer::rw_try_lock(&ex, vid, self.id.get(), false) {
                    let real = match self.real.try_read() {
                        Ok(g) => g,
                        // See `Mutex::lock`: strip poison, only contention is a bug.
                        Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                        Err(sync::TryLockError::WouldBlock) => {
                            panic!("model rwlock integrity: writer held")
                        }
                    };
                    Some(RwLockReadGuard {
                        real: Some(real),
                        lock: self,
                        model: Some((ex, vid)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match explorer::sched_ctx() {
            None => match self.real.try_write() {
                Ok(g) => Some(RwLockWriteGuard {
                    real: Some(g),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                    real: Some(e.into_inner()),
                    lock: self,
                    model: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
            Some((ex, vid)) => {
                if explorer::rw_try_lock(&ex, vid, self.id.get(), true) {
                    let real = match self.real.try_write() {
                        Ok(g) => g,
                        // See `Mutex::lock`: strip poison, only contention is a bug.
                        Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
                        Err(sync::TryLockError::WouldBlock) => {
                            panic!("model rwlock integrity: lock held")
                        }
                    };
                    Some(RwLockWriteGuard {
                        real: Some(real),
                        lock: self,
                        model: Some((ex, vid)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.real.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    real: Option<sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
    model: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard intact")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.real.take());
        if let Some((ex, vid)) = self.model.take() {
            explorer::rw_unlock(&ex, vid, self.lock.id.get(), false);
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    real: Option<sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
    model: Option<Ctx>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard intact")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard intact")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.real.take());
        if let Some((ex, vid)) = self.model.take() {
            explorer::rw_unlock(&ex, vid, self.lock.id.get(), true);
        }
    }
}
