//! Thread spawn/park shims. Outside a model execution these defer to
//! `std::thread`; inside one, spawn creates a virtual thread under the
//! explorer and park/unpark become modeled operations with std's sticky
//! token semantics.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::explorer::{self, ExecShared};

/// A handle to a thread, usable for `unpark`.
#[derive(Clone)]
pub struct Thread(Imp);

#[derive(Clone)]
enum Imp {
    Real(std::thread::Thread),
    Model { ex: Arc<ExecShared>, vid: usize },
}

impl Thread {
    /// Atomically makes a token available and wakes the thread if parked.
    pub fn unpark(&self) {
        match &self.0 {
            Imp::Real(t) => t.unpark(),
            Imp::Model { ex, vid } => {
                let caller = explorer::ctx().map(|(_, v)| v);
                explorer::unpark(ex, caller, *vid);
            }
        }
    }
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Imp::Real(t) => t.fmt(f),
            Imp::Model { vid, .. } => write!(f, "ModelThread(t{vid})"),
        }
    }
}

/// Handle to the calling thread.
pub fn current() -> Thread {
    match explorer::ctx() {
        None => Thread(Imp::Real(std::thread::current())),
        Some((ex, vid)) => Thread(Imp::Model { ex, vid }),
    }
}

/// Blocks the calling thread until a token is available.
pub fn park() {
    match explorer::sched_ctx() {
        None => std::thread::park(),
        Some((ex, vid)) => explorer::park(&ex, vid, false),
    }
}

/// Like [`park`] with a timeout. Inside a model the timeout is virtual: the
/// explorer may fire it at any decision point.
pub fn park_timeout(dur: Duration) {
    match explorer::sched_ctx() {
        None => std::thread::park_timeout(dur),
        Some((ex, vid)) => explorer::park(&ex, vid, true),
    }
}

/// Sleep. Inside a model this is a plain scheduling point (virtual time).
pub fn sleep(dur: Duration) {
    match explorer::sched_ctx() {
        None => std::thread::sleep(dur),
        Some((ex, vid)) => explorer::schedule_point(&ex, vid),
    }
}

/// Yield. Inside a model this is a scheduling point.
pub fn yield_now() {
    match explorer::sched_ctx() {
        None => std::thread::yield_now(),
        Some((ex, vid)) => explorer::schedule_point(&ex, vid),
    }
}

/// An owned handle to join a spawned thread.
pub struct JoinHandle<T>(JImp<T>);

enum JImp<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        ex: Arc<ExecShared>,
        target: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result. Inside a model
    /// a panicking thread fails the whole execution, so `Err` is only
    /// produced on the real path.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            JImp::Real(h) => h.join(),
            JImp::Model { ex, target, result } => {
                if std::thread::panicking() {
                    // Unwinding join (e.g. a model-owned handle dropped
                    // during ModelAbort teardown): take the result if the
                    // thread already finished, otherwise report it lost
                    // rather than take a scheduling decision mid-unwind.
                    return result
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .ok_or_else(|| {
                            Box::new("model thread joined during unwind")
                                as Box<dyn std::any::Any + Send>
                        });
                }
                let vid = explorer::ctx()
                    .map(|(_, v)| v)
                    .expect("model JoinHandle joined outside its execution");
                explorer::join(&ex, vid, target);
                let v = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread left a result");
                Ok(v)
            }
        }
    }

    /// Handle to the underlying thread.
    pub fn thread(&self) -> Thread {
        match &self.0 {
            JImp::Real(h) => Thread(Imp::Real(h.thread().clone())),
            JImp::Model { ex, target, .. } => Thread(Imp::Model {
                ex: Arc::clone(ex),
                vid: *target,
            }),
        }
    }
}

/// Spawns a new thread (virtual inside a model execution).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match explorer::ctx() {
        None => JoinHandle(JImp::Real(std::thread::spawn(f))),
        Some((ex, vid)) => {
            let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let target = explorer::spawn_vthread(
                &ex,
                vid,
                Box::new(move || {
                    let v = f();
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                }),
            );
            JoinHandle(JImp::Model { ex, target, result })
        }
    }
}

/// Thread factory mirroring `std::thread::Builder` (name only).
#[derive(Default, Debug)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Builder { name: None }
    }

    /// Names the thread (ignored inside model executions).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match explorer::ctx() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(JImp::Real(h)))
            }
            Some(_) => Ok(spawn(f)),
        }
    }
}
