//! Model suite for the activation mailbox state machine
//! (`Idle → Scheduled → Retired`), driving the real runtime type:
//!
//! * **exactly-one schedule token** — of N concurrent pushers hitting an
//!   idle mailbox, exactly one observes `EnqueuedNeedsSchedule` (two
//!   would double-schedule the activation and break the
//!   single-threaded-per-activation guarantee; zero would strand the
//!   queue). The `debug_assert`s inside `drain_batch`/`finish_turn`
//!   double as invariant checks: a violated turn protocol panics the
//!   vthread and fails the model.
//! * **conservation under push vs drain vs deactivation** — every
//!   envelope is either drained by exactly one turn or handed back by a
//!   retired mailbox; the janitor's `try_retire` can win only against an
//!   idle, empty mailbox.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize as StdUsize, Ordering};
use std::sync::Arc;

use aodb_runtime::model_api::{inert_envelope, Mailbox, PushOutcome, TurnOutcome};
use modelcheck::{model, model_report, thread};

/// Runs turn slices until the mailbox drains, returning how many
/// envelopes this ownership of the schedule token consumed.
fn run_turns(mb: &Mailbox) -> usize {
    let mut processed = 0;
    loop {
        let mut out = VecDeque::new();
        mb.drain_batch(4, &mut out);
        processed += out.len();
        match mb.finish_turn(false) {
            TurnOutcome::Drained => return processed,
            TurnOutcome::MorePending => continue,
            TurnOutcome::RetiredForDeactivation => {
                unreachable!("finish_turn(false) cannot retire")
            }
        }
    }
}

#[test]
fn concurrent_pushes_schedule_exactly_once() {
    let report = model_report("mailbox_push_race", || {
        // Construction hands the creator the schedule token; consume the
        // synthetic activation turn to reach a genuinely idle mailbox.
        let mb = Arc::new(Mailbox::new_scheduled_with(inert_envelope()));
        assert_eq!(run_turns(&mb), 1);

        let needs_schedule = Arc::new(StdUsize::new(0));
        let pushers: Vec<_> = (0..2)
            .map(|_| {
                let mb = Arc::clone(&mb);
                let needs_schedule = Arc::clone(&needs_schedule);
                thread::spawn(move || match mb.push(inert_envelope()) {
                    PushOutcome::EnqueuedNeedsSchedule => {
                        needs_schedule.fetch_add(1, Ordering::SeqCst);
                    }
                    PushOutcome::Enqueued => {}
                    PushOutcome::Retired(_) => panic!("mailbox retired itself"),
                })
            })
            .collect();
        for h in pushers {
            h.join().unwrap();
        }
        assert_eq!(
            needs_schedule.load(Ordering::SeqCst),
            1,
            "idle mailbox must hand out exactly one schedule token"
        );
        // The winner's token is live: one drain consumes both envelopes.
        assert_eq!(run_turns(&mb), 2);
    });
    assert!(report.schedules > 1, "no exploration happened: {report:?}");
}

#[test]
fn envelopes_conserved_across_push_drain_and_retire() {
    // Cross-schedule branch counters: the janitor must actually win some
    // schedules, and the retired hand-back path must actually be taken.
    let janitor_wins = Arc::new(StdUsize::new(0));
    let handed_back = Arc::new(StdUsize::new(0));
    let (jw, hb) = (Arc::clone(&janitor_wins), Arc::clone(&handed_back));
    model("mailbox_conservation", move || {
        let mb = Arc::new(Mailbox::new_scheduled_with(inert_envelope()));
        // Initial worker: owns the construction-time schedule token.
        let worker = {
            let mb = Arc::clone(&mb);
            thread::spawn(move || run_turns(&mb))
        };
        // Pusher: adds one envelope, and runs the turn itself iff the
        // push won the schedule token. A retired mailbox hands the
        // envelope back (the real dispatcher would re-activate).
        let pusher = {
            let mb = Arc::clone(&mb);
            let hb = Arc::clone(&hb);
            thread::spawn(move || match mb.push(inert_envelope()) {
                PushOutcome::EnqueuedNeedsSchedule => (run_turns(&mb), 0),
                PushOutcome::Enqueued => (0, 0),
                PushOutcome::Retired(_env) => {
                    hb.fetch_add(1, Ordering::Relaxed);
                    (0, 1)
                }
            })
        };
        // Janitor: deactivates iff the mailbox is idle and empty.
        let janitor = {
            let mb = Arc::clone(&mb);
            let jw = Arc::clone(&jw);
            thread::spawn(move || {
                let won = mb.try_retire();
                if won {
                    jw.fetch_add(1, Ordering::Relaxed);
                }
                won
            })
        };
        let by_worker = worker.join().unwrap();
        let (by_pusher, returned) = pusher.join().unwrap();
        let retired = janitor.join().unwrap();
        // Conservation: the activation envelope and the pushed envelope
        // each drained by exactly one turn, or handed back once.
        assert_eq!(
            by_worker + by_pusher + returned,
            2,
            "envelope lost or double-drained \
             (worker={by_worker} pusher={by_pusher} returned={returned})"
        );
        // Quiescent end state: retired by the janitor, or retirable now.
        if !retired {
            assert!(mb.try_retire(), "quiescent mailbox must be retirable");
        }
        assert!(mb.is_retired());
    });
    assert!(
        janitor_wins.load(Ordering::Relaxed) > 0,
        "no schedule let the janitor retire an idle mailbox"
    );
    assert!(
        handed_back.load(Ordering::Relaxed) > 0,
        "no schedule exercised the retired hand-back path"
    );
}
