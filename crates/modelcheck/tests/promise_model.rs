//! Model suite for the promise / `ReplyTo` resolution protocol:
//!
//! * **exactly-one resolution** — a reply is delivered once, aborted
//!   once, or lost to a dropped sink; no interleaving produces two
//!   outcomes or zero (a waiter that never resolves is a deadlock the
//!   checker reports).
//! * **timeout race** — `wait_for`'s virtual timeout can fire at any
//!   decision point, racing the resolver; both the delivered and the
//!   timed-out branch must actually be explored.
//! * **gather** — concurrent slot deliveries complete the collector
//!   exactly once, and a dropped slot surfaces as `Lost`, not a hang.

use std::sync::atomic::{AtomicUsize as StdUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{gather, PromiseError, ReplyTo};
use modelcheck::{model, model_report, thread};

#[test]
fn delivery_races_waiter_timeout() {
    // Cross-schedule branch counters (std atomics, invisible to the
    // explorer): every run resolves exactly one way, and across the
    // exploration both ways must happen.
    let delivered = Arc::new(StdUsize::new(0));
    let timed_out = Arc::new(StdUsize::new(0));
    let (d, t) = (Arc::clone(&delivered), Arc::clone(&timed_out));
    let report = model_report("promise_timeout_race", move || {
        let (reply, promise) = ReplyTo::promise();
        let resolver = thread::spawn(move || {
            reply.deliver(42u32);
        });
        match promise.wait_for(Duration::from_millis(1)) {
            Ok(v) => {
                assert_eq!(v, 42, "delivered value corrupted");
                d.fetch_add(1, Ordering::Relaxed);
            }
            Err(PromiseError::Timeout) => {
                t.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("unexpected resolution: {e:?}"),
        }
        resolver.join().unwrap();
    });
    assert!(report.schedules > 1, "no exploration happened: {report:?}");
    assert!(
        delivered.load(Ordering::Relaxed) > 0,
        "delivery branch never explored"
    );
    assert!(
        timed_out.load(Ordering::Relaxed) > 0,
        "timeout branch never explored"
    );
}

#[test]
fn abort_and_drop_resolve_the_waiter() {
    // Explicit abort: the waiter sees exactly the aborted error.
    model("promise_abort", || {
        let (reply, promise) = ReplyTo::<u32>::promise();
        let resolver = thread::spawn(move || {
            reply.abort(PromiseError::Lost);
        });
        // A stranded waiter would deadlock the model; the only legal
        // outcome of an aborted reply is its error.
        assert!(matches!(promise.wait(), Err(PromiseError::Lost)));
        resolver.join().unwrap();
    });
    // Implicit drop: a sink dropped without resolving must still wake the
    // waiter (`Lost`), never leak the `ReplyTo` into a hang.
    model("promise_dropped_sink", || {
        let (reply, promise) = ReplyTo::<u32>::promise();
        let resolver = thread::spawn(move || {
            drop(reply);
        });
        assert!(matches!(promise.wait(), Err(PromiseError::Lost)));
        resolver.join().unwrap();
    });
}

#[test]
fn gather_completes_exactly_once() {
    model("promise_gather", || {
        let (collector, promise) = gather::<u32>(2);
        let a = {
            let slot = collector.slot();
            thread::spawn(move || slot.deliver(1))
        };
        let b = {
            let slot = collector.slot();
            thread::spawn(move || slot.deliver(2))
        };
        drop(collector);
        let mut values = promise.wait().expect("both slots delivered");
        values.sort_unstable();
        assert_eq!(values, vec![1, 2], "gather lost or duplicated a delivery");
        a.join().unwrap();
        b.join().unwrap();
    });
}

#[test]
fn gather_dropped_slot_is_lost_not_hung() {
    model("promise_gather_dropped_slot", || {
        let (collector, promise) = gather::<u32>(2);
        let delivers = {
            let slot = collector.slot();
            thread::spawn(move || slot.deliver(7))
        };
        let drops = {
            let slot = collector.slot();
            thread::spawn(move || drop(slot))
        };
        drop(collector);
        // One slot died unresolved: the gather can never complete, and
        // the only legal outcome is `Lost` — a hang is a deadlock the
        // checker reports.
        assert!(matches!(promise.wait(), Err(PromiseError::Lost)));
        delivers.join().unwrap();
        drops.join().unwrap();
    });
}
