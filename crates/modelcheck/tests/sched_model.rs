//! Model suite for the work-stealing scheduler substrate (`RunQueues` +
//! `IdleSet`), driving the real runtime types through the real parking
//! protocol:
//!
//! * **no lost wakeup** — a worker that found no work registers in the
//!   idle set, re-checks every queue, and only then parks; a producer
//!   pushes first and wakes after. If any interleaving could strand a
//!   worker with work queued, the checker reports it as a deadlock.
//! * **exactly-once execution** — local pop vs steal-half vs injector
//!   never loses or duplicates a task under any interleaving.
//!
//! Cross-schedule counters (plain `std` atomics, invisible to the
//! explorer) prove the interesting branches — a real park/unpark cycle, a
//! successful steal — were actually explored, not just vacuously absent.

use std::sync::atomic::{AtomicBool as StdBool, AtomicUsize as StdUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use aodb_runtime::model_api::{IdleSet, RunQueues, TaskSource};
use modelcheck::{model, model_report, thread};

#[test]
fn parking_protocol_loses_no_wakeup() {
    const TASKS: usize = 2;
    // Counts schedules in which a worker genuinely parked and was woken;
    // shared across schedules, so plain std atomics (not model-visible).
    let park_cycles = Arc::new(StdUsize::new(0));
    let pc = Arc::clone(&park_cycles);
    let report = model_report("sched_park_wakeup", move || {
        let rq = Arc::new(RunQueues::<usize>::new(2));
        let idle = Arc::new(IdleSet::new(2));
        let executed = Arc::new(StdUsize::new(0));
        let done = Arc::new(StdBool::new(false));
        let record = Arc::new(StdMutex::new(Vec::new()));
        let workers: Vec<_> = (0..2usize)
            .map(|w| {
                let rq = Arc::clone(&rq);
                let idle = Arc::clone(&idle);
                let executed = Arc::clone(&executed);
                let done = Arc::clone(&done);
                let record = Arc::clone(&record);
                let pc = Arc::clone(&pc);
                thread::spawn(move || {
                    idle.register_thread(w);
                    loop {
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Some((t, _src)) = rq.find_task(w, false) {
                            record.lock().unwrap_or_else(|e| e.into_inner()).push(t);
                            if executed.fetch_add(1, Ordering::SeqCst) + 1 == TASKS {
                                done.store(true, Ordering::SeqCst);
                                idle.wake_all();
                            }
                            continue;
                        }
                        // The real protocol: register, re-check, then park.
                        idle.prepare_park(w);
                        if done.load(Ordering::SeqCst) || rq.has_work(w) {
                            idle.cancel_park(w);
                            continue;
                        }
                        idle.park_current();
                        idle.cancel_park(w);
                        pc.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Producer side of the handshake: push, then wake.
        for t in 0..TASKS {
            rq.push_injector(t);
            idle.wake_one();
        }
        for h in workers {
            h.join().unwrap();
        }
        let mut seen = record.lock().unwrap_or_else(|e| e.into_inner()).clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1], "task lost or double-executed");
    });
    assert!(report.schedules > 1, "no exploration happened: {report:?}");
    assert!(
        park_cycles.load(Ordering::Relaxed) > 0,
        "no schedule exercised a real park/unpark cycle"
    );
}

#[test]
fn steal_never_loses_or_duplicates() {
    let steals = Arc::new(StdUsize::new(0));
    let st = Arc::clone(&steals);
    model("sched_steal_exactly_once", move || {
        let rq = Arc::new(RunQueues::<usize>::new(2));
        let record = Arc::new(StdMutex::new(Vec::new()));
        // The owner seeds its own LIFO deque, then pops it dry — racing
        // the thief's steal-half the whole way down.
        let owner = {
            let rq = Arc::clone(&rq);
            let record = Arc::clone(&record);
            thread::spawn(move || {
                rq.push_local(0, 10);
                rq.push_local(0, 11);
                while let Some((t, _src)) = rq.find_task(0, false) {
                    record.lock().unwrap_or_else(|e| e.into_inner()).push(t);
                }
            })
        };
        let thief = {
            let rq = Arc::clone(&rq);
            let record = Arc::clone(&record);
            let st = Arc::clone(&st);
            thread::spawn(move || {
                for _ in 0..2 {
                    if let Some((t, src)) = rq.find_task(1, false) {
                        record.lock().unwrap_or_else(|e| e.into_inner()).push(t);
                        if src == TaskSource::Steal {
                            st.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        };
        owner.join().unwrap();
        thief.join().unwrap();
        // Conservation: executed plus whatever is still queued is exactly
        // the seeded set, each task exactly once.
        let mut seen = record.lock().unwrap_or_else(|e| e.into_inner()).clone();
        seen.extend(rq.drain_all());
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11], "steal lost or duplicated a task");
    });
    assert!(
        steals.load(Ordering::Relaxed) > 0,
        "no schedule exercised a successful steal"
    );
}
