//! Model suite for the store's group-commit WAL.
//!
//! The real `GroupWal` runs under the checker over [`MemMedia`], whose
//! explicit durability watermark (`durable()` = the fsync-covered prefix)
//! stands in for the page cache: everything the committer wrote but did
//! not sync would be lost with the process. The invariants are the
//! group-commit contract itself:
//!
//! * **ack ⇒ durable** — a submitter whose ticket resolved `Ok` finds its
//!   payload inside the durable prefix, under *every* interleaving of
//!   submitters, committer, and crash injection;
//! * **barrier ordering** — `sync()` resolves only after every frame
//!   queued before it (in-flight originals included) is durable;
//! * **crashes never ack lost frames** — with an armed `CrashPlan`, an
//!   `Ok` ack still implies durability, and every waiter resolves.
//!
//! The teeth test flips `ack_before_fsync_for_test` and requires the
//! checker to *find* the contract violation and print a replayable
//! `MODEL_SCHEDULE` line — proving the suite has discriminating power.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdU64, Ordering};
use std::sync::Arc;

use aodb_store::{Bytes, CrashPlan, CrashPoint, FsyncPolicy, GroupWal, MemMedia, WalConfig};
use modelcheck::{model, model_report, thread};

/// True when `payload` occurs as a contiguous byte run inside `haystack`
/// (payloads below are distinct sentinels, so containment ⇔ the frame's
/// record made it into the prefix).
fn contains(haystack: &[u8], payload: &[u8]) -> bool {
    haystack.windows(payload.len()).any(|w| w == payload)
}

#[test]
fn acked_frames_are_durable_under_all_schedules() {
    let report = model_report("wal_ack_durability", || {
        let media = MemMedia::new();
        let wal = Arc::new(GroupWal::open_with_media(media.clone(), WalConfig::default()).unwrap());
        let submitters: Vec<_> = (0..2u8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let media = media.clone();
                let payload: &'static [u8] = if t == 0 { b"frame-zero" } else { b"frame-one!" };
                thread::spawn(move || {
                    let ticket = wal.submit(Bytes::from_static(payload));
                    if ticket.wait().is_ok() {
                        // The ack just resolved; the fsync must already
                        // have covered this frame.
                        assert!(
                            contains(&media.durable(), payload),
                            "acked frame not durable"
                        );
                    }
                })
            })
            .collect();
        for h in submitters {
            h.join().unwrap();
        }
        drop(wal); // joins the committer through the model scheduler
    });
    assert!(report.schedules > 1, "no exploration happened: {report:?}");
}

#[test]
fn barrier_resolves_behind_inflight_originals() {
    model("wal_barrier_ordering", || {
        // OnDemand: plain acks mean only "written", so the barrier is
        // the sole source of durability — exactly the edge under test.
        let config = WalConfig {
            fsync_policy: FsyncPolicy::OnDemand,
            ..WalConfig::default()
        };
        let media = MemMedia::new();
        let wal = Arc::new(GroupWal::open_with_media(media.clone(), config).unwrap());

        // A concurrent submitter keeps the committer busy with an
        // in-flight original the barrier must order behind when it lands
        // first in the queue.
        let noise = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                let _ = wal.submit(Bytes::from_static(b"noise-frame")).wait();
            })
        };

        let ticket = wal.submit(Bytes::from_static(b"ordered-frame"));
        wal.sync().unwrap();
        // Queue order: ordered-frame precedes the barrier, so the forced
        // fsync covers it no matter how groups were cut.
        assert!(
            contains(&media.durable(), b"ordered-frame"),
            "barrier resolved before an earlier frame was durable"
        );
        ticket.wait().unwrap();
        noise.join().unwrap();
        drop(wal);
    });
}

#[test]
fn injected_crash_never_acks_lost_frames() {
    // Two representative boundaries: before anything reached the media,
    // and the durable-but-unacked direction.
    for point in [
        CrashPoint::BeforeGroupWrite,
        CrashPoint::AfterFsyncBeforeAck,
    ] {
        let name: &'static str = match point {
            CrashPoint::BeforeGroupWrite => "wal_crash_before_write",
            _ => "wal_crash_after_fsync",
        };
        model(name, move || {
            let media = MemMedia::new();
            let wal =
                Arc::new(GroupWal::open_with_media(media.clone(), WalConfig::default()).unwrap());
            wal.arm_crash(CrashPlan { point, at_group: 0 });
            let submitters: Vec<_> = (0..2u8)
                .map(|t| {
                    let wal = Arc::clone(&wal);
                    let media = media.clone();
                    let payload: &'static [u8] = if t == 0 {
                        b"crash-frame-a"
                    } else {
                        b"crash-frame-b"
                    };
                    thread::spawn(move || {
                        // Every waiter must resolve (no hang — a hang is
                        // a deadlock the checker reports), and an Ok ack
                        // must still mean durable.
                        if wal.submit(Bytes::from_static(payload)).wait().is_ok() {
                            assert!(
                                contains(&media.durable(), payload),
                                "crash acked a lost frame"
                            );
                        }
                    })
                })
                .collect();
            for h in submitters {
                h.join().unwrap();
            }
            drop(wal);
        });
    }
}

#[test]
fn committer_panic_wakes_every_waiter() {
    model("wal_committer_panic", || {
        let media = MemMedia::new();
        let wal = Arc::new(GroupWal::open_with_media(media, WalConfig::default()).unwrap());
        wal.arm_panic(0);
        let submitters: Vec<_> = (0..2u8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let payload: &'static [u8] = if t == 0 { b"doomed-a" } else { b"doomed-b" };
                thread::spawn(move || {
                    // The armed panic fires on the first non-empty group,
                    // so no frame can ever be acked; the only legal
                    // outcome is an error — a stranded waiter deadlocks
                    // the model and fails the run.
                    assert!(
                        wal.submit(Bytes::from_static(payload)).wait().is_err(),
                        "ack resolved from a group the committer died on"
                    );
                })
            })
            .collect();
        for h in submitters {
            h.join().unwrap();
        }
        drop(wal);
    });
}

#[test]
fn teeth_ack_before_fsync_is_caught_with_replayable_schedule() {
    // Seeded bug: the committer acks before the group fsync. The checker
    // must find a schedule where a submitter observes its Ok ack while
    // the frame is still outside the durable prefix, and hand back a
    // pinned MODEL_SCHEDULE for replay.
    let violations = Arc::new(StdU64::new(0));
    let v2 = Arc::clone(&violations);
    let err = catch_unwind(AssertUnwindSafe(move || {
        model("wal_teeth_ack_early", move || {
            let media = MemMedia::new();
            let wal =
                Arc::new(GroupWal::open_with_media(media.clone(), WalConfig::default()).unwrap());
            wal.ack_before_fsync_for_test();
            let v3 = Arc::clone(&v2);
            let submitter = {
                let wal = Arc::clone(&wal);
                let media = media.clone();
                thread::spawn(move || {
                    if wal
                        .submit(Bytes::from_static(b"teeth-frame"))
                        .wait()
                        .is_ok()
                        && !contains(&media.durable(), b"teeth-frame")
                    {
                        v3.fetch_add(1, Ordering::Relaxed);
                        panic!("ack-before-fsync: acked frame not durable");
                    }
                })
            };
            submitter.join().unwrap();
            drop(wal);
        });
    }))
    .expect_err("the seeded ack-before-fsync bug must be found");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("MODEL_SCHEDULE=wal_teeth_ack_early:"),
        "failure must carry a replayable schedule, got: {msg}"
    );
    assert!(
        violations.load(Ordering::Relaxed) > 0,
        "failure did not come from the durability assert: {msg}"
    );
}
