//! The actor programming model: [`Actor`], [`Message`], [`Handler`], and the
//! per-turn [`ActorContext`].
//!
//! Actors are the unit of modularity in an actor-oriented database: they
//! encapsulate private state and interact only through asynchronous
//! messages. The runtime guarantees *turn-based* execution — at most one
//! message handler runs for a given activation at any time — which is the
//! property that lets application state live in plain (non-`Sync`) Rust
//! structs with no further synchronization.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use crate::envelope::Envelope;
use crate::error::SendError;
use crate::identity::{ActorId, ActorKey, Origin, SiloId};
use crate::promise::ReplyTo;
use crate::runtime::{ActorRef, Recipient, RuntimeCore};

/// A virtual actor type.
///
/// Implementations hold the actor's encapsulated state as plain fields.
/// The runtime constructs instances on demand through the factory passed to
/// [`crate::RuntimeBuilder::register`], calls [`Actor::on_activate`] before
/// the first message, and [`Actor::on_deactivate`] when the activation is
/// reclaimed (idle timeout, explicit request, or shutdown) — the hook where
/// persistent actors flush state to storage.
pub trait Actor: Sized + Send + 'static {
    /// Unique registered name of this actor type (e.g. `"shm.channel"`).
    const TYPE_NAME: &'static str;

    /// Statically declared outbound edges: every actor type this one
    /// sends messages to from inside its turns (handlers and lifecycle
    /// hooks), and whether each edge is a blocking
    /// [`CallKind::Call`](crate::CallKind) or an asynchronous
    /// [`CallKind::Send`](crate::CallKind).
    ///
    /// The declarations are the input to the `aodb-analysis` call-graph
    /// extraction (which statically rejects synchronous-call cycles —
    /// they deadlock under turn-based execution), and in debug builds the
    /// runtime panics when a turn dispatches to an actor type not listed
    /// here. Self-sends need no declaration. The default is no outbound
    /// edges, which suits leaf actors.
    fn declared_calls() -> &'static [crate::CallDecl] {
        &[]
    }

    /// Runs once, as the first turn of a fresh activation.
    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {}

    /// Runs when the activation is reclaimed. State that must survive goes
    /// to the state store here (Orleans' write-on-deactivate policy).
    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {}
}

/// A message understood by one or more actor types.
pub trait Message: Send + 'static {
    /// The reply produced by handling this message. Use `()` for one-way
    /// notifications.
    type Reply: Send + 'static;
}

/// Handling of message `M` by actor `A`.
pub trait Handler<M: Message>: Actor {
    /// Processes one message as a single turn. Returning the reply value
    /// completes the request; the runtime routes it to the caller's
    /// [`ReplyTo`] sink.
    fn handle(&mut self, msg: M, ctx: &mut ActorContext<'_>) -> M::Reply;
}

/// Object-safe view of an activation's actor instance, so the scheduler can
/// store heterogeneous actors and run lifecycle hooks without knowing the
/// concrete type.
pub(crate) trait AnyActor: Send {
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn activate(&mut self, ctx: &mut ActorContext<'_>);
    fn deactivate(&mut self, ctx: &mut ActorContext<'_>);
}

impl<A: Actor> AnyActor for A {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn activate(&mut self, ctx: &mut ActorContext<'_>) {
        Actor::on_activate(self, ctx);
    }

    fn deactivate(&mut self, ctx: &mut ActorContext<'_>) {
        Actor::on_deactivate(self, ctx);
    }
}

/// Per-turn execution context handed to every handler and lifecycle hook.
///
/// The context is how an actor reaches the rest of the system: it mints
/// references to other actors (messages sent through them originate from
/// this silo, so co-located targets are delivered without simulated network
/// latency), requests its own deactivation, and schedules timers.
pub struct ActorContext<'a> {
    pub(crate) core: &'a Arc<RuntimeCore>,
    pub(crate) id: &'a ActorId,
    pub(crate) silo: SiloId,
    pub(crate) deactivate_requested: bool,
    /// The current turn's reply sink, stashed here (type-erased) by the
    /// envelope before the handler runs so the handler can *take* it via
    /// [`ActorContext::defer_reply`] and resolve it after the turn — the
    /// seam that lets an ingest ack ride a group-commit WAL callback
    /// instead of blocking the turn on an fsync.
    pub(crate) reply_slot: Option<Box<dyn Any + Send>>,
}

impl<'a> ActorContext<'a> {
    pub(crate) fn new(core: &'a Arc<RuntimeCore>, id: &'a ActorId, silo: SiloId) -> Self {
        ActorContext {
            core,
            id,
            silo,
            deactivate_requested: false,
            reply_slot: None,
        }
    }

    /// Identity of the actor currently executing.
    pub fn actor_id(&self) -> &ActorId {
        self.id
    }

    /// Key of the actor currently executing.
    pub fn key(&self) -> &ActorKey {
        &self.id.key
    }

    /// The silo this activation lives on.
    pub fn silo(&self) -> SiloId {
        self.silo
    }

    /// Milliseconds since the runtime started — the sanctioned time
    /// source for actor code.
    ///
    /// Turn determinism (DESIGN.md §12) forbids `Instant::now()` /
    /// `SystemTime::now()` inside handlers: replaying a history must
    /// observe the same clock reads, and a runtime-owned clock is the
    /// single point where a future deterministic-replay mode can
    /// substitute recorded timestamps. The `ambient-clock` lint enforces
    /// this; route handler time reads through here.
    pub fn now(&self) -> u64 {
        self.core.now_ms()
    }

    /// Returns a typed reference to actor `key` of type `A`.
    ///
    /// # Panics
    /// Panics if `A` was never registered — that is a wiring bug, not a
    /// runtime condition. Use [`ActorContext::try_actor_ref`] to probe.
    pub fn actor_ref<A: Actor>(&self, key: impl Into<ActorKey>) -> ActorRef<A> {
        self.try_actor_ref(key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`ActorContext::actor_ref`].
    pub fn try_actor_ref<A: Actor>(
        &self,
        key: impl Into<ActorKey>,
    ) -> Result<ActorRef<A>, SendError> {
        self.core
            .typed_ref::<A>(key.into(), Origin::Silo(self.silo))
    }

    /// Type-erased recipient for message `M` (see [`Recipient`]).
    pub fn recipient<A: Actor + Handler<M>, M: Message>(
        &self,
        key: impl Into<ActorKey>,
    ) -> Result<Recipient<M>, SendError> {
        Ok(self.try_actor_ref::<A>(key)?.recipient())
    }

    /// Takes ownership of the current turn's reply sink, deferring the
    /// reply past the end of the turn.
    ///
    /// Normally the runtime delivers the handler's return value to the
    /// caller the moment the turn finishes. A handler that calls
    /// `defer_reply` receives the [`ReplyTo`] itself and the runtime
    /// *discards* the returned value — the actor now owns the ack and
    /// resolves (or drops) it from wherever the real completion happens,
    /// e.g. a group-commit WAL durability callback. The taken sink may
    /// outlive the turn and be resolved from any thread.
    ///
    /// A one-way message still yields `Some(ReplyTo::Ignore)` — deferred
    /// delivery into it is a no-op, so handlers need no special case.
    /// Returns `None` when the turn has no sink of type `R`: the reply
    /// was already taken this turn, this is a lifecycle turn, or `R`
    /// does not match the message's declared `Reply` type (the slot is
    /// left intact in that last case).
    pub fn defer_reply<R: Send + 'static>(&mut self) -> Option<ReplyTo<R>> {
        let slot = self.reply_slot.take()?;
        match slot.downcast::<ReplyTo<R>>() {
            Ok(reply) => Some(*reply),
            Err(other) => {
                // Wrong type requested — put the sink back so the turn
                // still replies normally.
                self.reply_slot = Some(other);
                None
            }
        }
    }

    /// Requests deactivation of this activation once its mailbox drains.
    ///
    /// Mirrors Orleans' `DeactivateOnIdle`: the request takes effect at the
    /// end of a turn with an empty mailbox, at which point
    /// [`Actor::on_deactivate`] runs and the activation is dropped. The next
    /// message to this identity transparently creates a fresh activation.
    pub fn deactivate(&mut self) {
        self.deactivate_requested = true;
    }

    /// Schedules `msg` to be delivered to this actor after `delay`.
    ///
    /// The delivery counts as a local message (no simulated network hop).
    pub fn notify_self_after<A, M>(&self, msg: M, delay: Duration)
    where
        A: Actor + Handler<M>,
        M: Message,
    {
        let env = Envelope::of::<A, M>(msg, ReplyTo::Ignore);
        self.core.schedule_delayed(self.id.clone(), env, delay);
    }
}
