//! Seeded chaos injection: fault plans, network-fault dice, and crash
//! schedules.
//!
//! A [`FaultPlan`] is the single artifact that describes an entire chaos
//! run: which message faults the simulated network injects (drop /
//! duplicate / delay — reorder falls out of unequal delays), and when which
//! silo crashes and restarts. Every decision derives from one `u64` seed
//! through a counter-keyed [`mix64`] hash, so the *schedule* is a pure
//! function of the seed: [`FaultPlan::from_seed`] called twice with the
//! same arguments yields identical plans ([`FaultPlan::fingerprint`] makes
//! that checkable in one comparison), which is what lets a test print its
//! seed on failure and replay the exact same fault schedule.
//!
//! Per-message dice are keyed on a global message counter. With a
//! deterministic driver (one client thread issuing a fixed sequence) the
//! faulted *positions* in the message stream reproduce exactly; under
//! multi-threaded load the schedule of fault kinds and rates still
//! reproduces, while which concrete message draws which fault follows the
//! thread interleaving. DESIGN.md §10 spells out this boundary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::identity::SiloId;

/// SplitMix64 finalizer: a high-quality 64-bit mix used to derive all
/// chaos decisions from (seed, counter) pairs. Public so test harnesses
/// can derive sub-seeds the same way the runtime does.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Message-fault rates applied at the simulated network boundary (hops
/// that pay latency under the runtime's [`NetConfig`](crate::NetConfig);
/// silo-local deliveries are never faulted — in-process memory moves
/// cannot be lost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosNetConfig {
    /// Per-mille probability a message is dropped. The sender's promise
    /// (if any) resolves as [`PromiseError::Lost`](crate::PromiseError).
    pub drop_per_mille: u16,
    /// Per-mille probability a message is delivered twice. Only envelopes
    /// sent via the `*_replayable` APIs can actually duplicate (the
    /// message must be `Clone`); others deliver once.
    pub duplicate_per_mille: u16,
    /// Per-mille probability a message is charged extra latency, which
    /// also reorders it against messages sent after it.
    pub delay_per_mille: u16,
    /// Upper bound of the injected extra latency.
    pub max_extra_delay: Duration,
}

impl Default for ChaosNetConfig {
    fn default() -> Self {
        ChaosNetConfig {
            drop_per_mille: 10,
            duplicate_per_mille: 20,
            delay_per_mille: 100,
            max_extra_delay: Duration::from_millis(2),
        }
    }
}

/// One scheduled silo crash, with an optional restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// When (after runtime start) the silo is killed.
    pub at: Duration,
    /// Which silo dies.
    pub silo: SiloId,
    /// Delay between the kill and the restart; `None` leaves it dead.
    pub restart_after: Option<Duration>,
}

/// A complete, seed-derived description of one chaos run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed every decision in this plan (and the per-message dice of
    /// the run it drives) derives from.
    pub seed: u64,
    /// Network-boundary message faults, if enabled.
    pub net: Option<ChaosNetConfig>,
    /// Scheduled silo crashes.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for per-message dice.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            net: None,
            crashes: Vec::new(),
        }
    }

    /// Enables network message faults.
    pub fn with_net(mut self, net: ChaosNetConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Schedules a permanent silo kill at `at`.
    pub fn crash_at(mut self, at: Duration, silo: SiloId) -> Self {
        self.crashes.push(CrashEvent {
            at,
            silo,
            restart_after: None,
        });
        self
    }

    /// Schedules a silo kill at `at` followed by a restart `restart_after`
    /// later.
    pub fn crash_restart_at(mut self, at: Duration, silo: SiloId, restart_after: Duration) -> Self {
        self.crashes.push(CrashEvent {
            at,
            silo,
            restart_after: Some(restart_after),
        });
        self
    }

    /// Derives a full plan from a seed: moderate network-fault rates and
    /// one or two crash/restart events inside `horizon`, never killing
    /// silo 0 (the conventional client-affinity silo) so the cluster keeps
    /// a surviving silo to reactivate onto. Pure in its arguments — equal
    /// inputs yield an identical plan, which is the replay guarantee.
    pub fn from_seed(seed: u64, silos: usize, horizon: Duration) -> FaultPlan {
        let mut plan = FaultPlan::new(seed).with_net(ChaosNetConfig {
            drop_per_mille: (mix64(seed ^ 1) % 30) as u16,
            duplicate_per_mille: (mix64(seed ^ 2) % 50) as u16,
            delay_per_mille: (mix64(seed ^ 3) % 200) as u16,
            max_extra_delay: Duration::from_micros(500 + mix64(seed ^ 4) % 4_500),
        });
        if silos > 1 {
            let h = horizon.as_micros().max(4) as u64;
            let crashes = 1 + (mix64(seed ^ 5) % 2) as usize;
            for i in 0..crashes as u64 {
                let at = Duration::from_micros(h / 4 + mix64(seed ^ (6 + i)) % (h / 2).max(1));
                let victim = SiloId(1 + (mix64(seed ^ (16 + i)) % (silos as u64 - 1)) as u32);
                let restart =
                    Duration::from_micros(h / 8 + mix64(seed ^ (32 + i)) % (h / 4).max(1));
                plan = plan.crash_restart_at(at, victim, restart);
            }
        }
        plan
    }

    /// Order-sensitive hash of every field: two runs injected the same
    /// fault schedule iff their fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = mix64(self.seed);
        let mut fold = |v: u64| acc = mix64(acc ^ v);
        match &self.net {
            None => fold(0),
            Some(n) => {
                fold(1);
                fold(n.drop_per_mille as u64);
                fold(n.duplicate_per_mille as u64);
                fold(n.delay_per_mille as u64);
                fold(n.max_extra_delay.as_nanos() as u64);
            }
        }
        for c in &self.crashes {
            fold(c.at.as_nanos() as u64);
            fold(c.silo.index() as u64 + 1);
            fold(match c.restart_after {
                None => 0,
                Some(d) => d.as_nanos() as u64 | 1,
            });
        }
        acc
    }
}

/// Counters of injected network faults, shared with the runtime core.
#[derive(Default)]
pub(crate) struct ChaosNetStats {
    pub dropped: AtomicU64,
    pub duplicated: AtomicU64,
    pub delayed: AtomicU64,
}

/// Point-in-time copy of the injected-fault counters
/// ([`Runtime::chaos_stats`](crate::Runtime::chaos_stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosNetStatsSnapshot {
    /// Messages dropped at the network boundary.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages charged extra latency (and thereby reordered).
    pub delayed: u64,
}

/// Per-message fault decision.
pub(crate) enum NetFault {
    Deliver,
    Drop,
    Duplicate,
    Delay(Duration),
}

/// The live dice: seed + message counter + stats.
pub(crate) struct ChaosRuntime {
    cfg: ChaosNetConfig,
    seed: u64,
    counter: AtomicU64,
    pub stats: ChaosNetStats,
}

impl ChaosRuntime {
    pub fn new(seed: u64, cfg: ChaosNetConfig) -> Self {
        ChaosRuntime {
            cfg,
            seed,
            counter: AtomicU64::new(0),
            stats: ChaosNetStats::default(),
        }
    }

    /// Rolls the dice for the next network-boundary message.
    pub fn decide(&self) -> NetFault {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let r = mix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let roll = (r % 1000) as u16;
        let c = &self.cfg;
        if roll < c.drop_per_mille {
            return NetFault::Drop;
        }
        if roll < c.drop_per_mille + c.duplicate_per_mille {
            return NetFault::Duplicate;
        }
        if roll < c.drop_per_mille + c.duplicate_per_mille + c.delay_per_mille {
            let span = c.max_extra_delay.as_nanos().max(1) as u64;
            return NetFault::Delay(Duration::from_nanos((r >> 16) % span));
        }
        NetFault::Deliver
    }

    pub fn snapshot(&self) -> ChaosNetStatsSnapshot {
        ChaosNetStatsSnapshot {
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let a = FaultPlan::from_seed(seed, 3, Duration::from_secs(2));
            let b = FaultPlan::from_seed(seed, 3, Duration::from_secs(2));
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::from_seed(1, 3, Duration::from_secs(2));
        let b = FaultPlan::from_seed(2, 3, Duration::from_secs(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn from_seed_never_kills_silo_zero() {
        for seed in 0..64u64 {
            let plan = FaultPlan::from_seed(seed, 4, Duration::from_secs(1));
            assert!(plan.crashes.iter().all(|c| c.silo.index() != 0));
            assert!(!plan.crashes.is_empty());
        }
    }

    #[test]
    fn single_silo_plan_has_no_crashes() {
        let plan = FaultPlan::from_seed(7, 1, Duration::from_secs(1));
        assert!(plan.crashes.is_empty());
        assert!(plan.net.is_some());
    }

    #[test]
    fn dice_sequence_is_seed_deterministic() {
        let cfg = ChaosNetConfig::default();
        let a = ChaosRuntime::new(99, cfg);
        let b = ChaosRuntime::new(99, cfg);
        for _ in 0..1000 {
            let (x, y) = (a.decide(), b.decide());
            let tag = |f: &NetFault| match f {
                NetFault::Deliver => 0u8,
                NetFault::Drop => 1,
                NetFault::Duplicate => 2,
                NetFault::Delay(_) => 3,
            };
            assert_eq!(tag(&x), tag(&y));
        }
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let cfg = ChaosNetConfig {
            drop_per_mille: 100,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_extra_delay: Duration::from_millis(1),
        };
        let dice = ChaosRuntime::new(5, cfg);
        let drops = (0..10_000)
            .filter(|_| matches!(dice.decide(), NetFault::Drop))
            .count();
        // 10% ± generous slack for the hash's distribution.
        assert!((700..=1300).contains(&drops), "drops = {drops}");
    }
}
