//! Cluster-wide actor directory.
//!
//! Maps each [`ActorId`] to its single current activation, guaranteeing the
//! virtual-actor invariant that at most one activation exists per identity.
//! This is our stand-in for Orleans' distributed directory plus the RDS
//! membership tables from the paper's deployment (Section 6.1); being
//! in-process it is strongly consistent by construction.
//!
//! The map is sharded by identity hash to keep lock contention negligible
//! under the benchmark's multi-million-dispatch load.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::identity::ActorId;
use crate::silo::Activation;

const SHARD_COUNT: usize = 64;

/// Sharded `ActorId → Arc<Activation>` map.
pub(crate) struct Directory {
    shards: Vec<RwLock<HashMap<ActorId, Arc<Activation>>>>,
}

impl Directory {
    pub fn new() -> Self {
        Directory {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, id: &ActorId) -> &RwLock<HashMap<ActorId, Arc<Activation>>> {
        // Use the upper hash bits: the lower bits drive placement modulo,
        // and reusing them here would correlate shard with silo.
        let h = id.stable_hash();
        &self.shards[(h >> 48) as usize % SHARD_COUNT]
    }

    /// Fast-path lookup.
    pub fn get(&self, id: &ActorId) -> Option<Arc<Activation>> {
        self.shard(id).read().get(id).cloned()
    }

    /// Returns the existing activation or inserts the one produced by
    /// `create`. The boolean is `true` when `create` ran and its result was
    /// inserted (the caller must then schedule the fresh activation).
    pub fn get_or_insert_with(
        &self,
        id: &ActorId,
        create: impl FnOnce() -> Arc<Activation>,
    ) -> (Arc<Activation>, bool) {
        let shard = self.shard(id);
        if let Some(existing) = shard.read().get(id) {
            return (Arc::clone(existing), false);
        }
        let mut guard = shard.write();
        if let Some(existing) = guard.get(id) {
            return (Arc::clone(existing), false);
        }
        let act = create();
        guard.insert(id.clone(), Arc::clone(&act));
        (act, true)
    }

    /// Removes the mapping for `id` only if it still points at `act`.
    ///
    /// The pointer check matters: between a sender observing a retired
    /// mailbox and calling this, a fresh activation may already have been
    /// installed, and blindly removing it would orphan live state.
    pub fn remove_entry(&self, id: &ActorId, act: &Arc<Activation>) {
        let mut guard = self.shard(id).write();
        if let Some(current) = guard.get(id) {
            if Arc::ptr_eq(current, act) {
                guard.remove(id);
            }
        }
    }

    /// Number of live activations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when any activation's mailbox is non-quiescent (queued work or
    /// a turn in flight). Early-exits per shard without allocating — this
    /// is the quiesce loop's poll, which previously cloned every `Arc` in
    /// the directory every 2 ms via [`Directory::collect_all`].
    pub fn any_busy(&self) -> bool {
        self.shards
            .iter()
            .any(|shard| shard.read().values().any(|act| !act.mailbox.is_quiescent()))
    }

    /// Snapshot of all activations (janitor scans, shutdown draining).
    pub fn collect_all(&self) -> Vec<Arc<Activation>> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out
    }

    /// Snapshot of all activations hosted on `silo` (crash eviction).
    pub fn collect_on_silo(&self, silo: crate::identity::SiloId) -> Vec<Arc<Activation>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .values()
                    .filter(|act| act.silo == silo)
                    .cloned(),
            );
        }
        out
    }

    /// Activations whose last activity predates `cutoff_ms` (runtime-relative
    /// milliseconds), i.e. candidates for idle deactivation.
    pub fn collect_idle(&self, cutoff_ms: u64) -> Vec<Arc<Activation>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for act in shard.read().values() {
                if act.last_activity_ms() <= cutoff_ms {
                    out.push(Arc::clone(act));
                }
            }
        }
        out
    }
}
