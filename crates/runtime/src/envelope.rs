//! Type-erased message envelopes.
//!
//! An [`Envelope`] packages a typed message, the knowledge of which
//! `Handler` impl processes it, and the reply sink, into a single boxed
//! closure the scheduler can run against a `dyn` actor. The typed-to-erased
//! boundary lives entirely here; everything downstream (mailboxes, silos,
//! the simulated network) moves opaque envelopes.

use crate::actor::{ActorContext, AnyActor, Handler, Message};
use crate::promise::ReplyTo;

type RunFn = Box<dyn FnOnce(&mut dyn AnyActor, &mut ActorContext<'_>) + Send>;

/// What kind of turn an envelope triggers; used for scheduling bookkeeping
/// and metrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EnvelopeKind {
    /// The synthetic first turn of a fresh activation (`on_activate`).
    Lifecycle,
    /// An application message.
    User,
}

/// A message on its way to an activation.
pub struct Envelope {
    run: RunFn,
    kind: EnvelopeKind,
}

impl Envelope {
    /// Wraps message `msg` for actor type `A`.
    pub fn of<A, M>(msg: M, reply: ReplyTo<M::Reply>) -> Envelope
    where
        A: Handler<M>,
        M: Message,
    {
        Envelope {
            run: Box::new(move |actor, ctx| {
                let actor = actor
                    .as_any_mut()
                    .downcast_mut::<A>()
                    .expect("envelope executed against wrong actor type");
                let out = actor.handle(msg, ctx);
                reply.deliver(out);
            }),
            kind: EnvelopeKind::User,
        }
    }

    /// The synthetic `on_activate` turn enqueued as the first message of
    /// every fresh activation.
    pub(crate) fn lifecycle_activate() -> Envelope {
        Envelope {
            run: Box::new(|actor, ctx| actor.activate(ctx)),
            kind: EnvelopeKind::Lifecycle,
        }
    }

    pub(crate) fn kind(&self) -> EnvelopeKind {
        self.kind
    }

    /// Executes the turn.
    pub(crate) fn run(self, actor: &mut dyn AnyActor, ctx: &mut ActorContext<'_>) {
        (self.run)(actor, ctx);
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("kind", &self.kind)
            .finish()
    }
}
