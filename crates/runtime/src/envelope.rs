//! Type-erased message envelopes.
//!
//! An [`Envelope`] packages a typed message, the knowledge of which
//! `Handler` impl processes it, and the reply sink, into a single boxed
//! closure the scheduler can run against a `dyn` actor. The typed-to-erased
//! boundary lives entirely here; everything downstream (mailboxes, silos,
//! the simulated network) moves opaque envelopes.
//!
//! The closure takes a [`Turn`], not the actor directly, so the runtime can
//! consume an envelope in one of two ways without a second allocation:
//! *run* it against the activation, or *abort* it with a typed error (a
//! crashed silo resolving queued requests as
//! [`PromiseError::SiloLost`][crate::PromiseError::SiloLost]).

use crate::actor::{ActorContext, AnyActor, Handler, Message};
use crate::error::PromiseError;
use crate::promise::ReplyTo;

/// How an envelope is consumed: executed as a turn, or aborted with the
/// reason delivered to its reply sink.
pub(crate) enum Turn<'a, 'c> {
    /// Execute the handler against the activation.
    Run(&'a mut dyn AnyActor, &'a mut ActorContext<'c>),
    /// The turn will never run; resolve the reply sink with this error.
    Abort(PromiseError),
}

type RunFn = Box<dyn FnOnce(Turn<'_, '_>) + Send>;

/// What kind of turn an envelope triggers; used for scheduling bookkeeping
/// and metrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EnvelopeKind {
    /// The synthetic first turn of a fresh activation (`on_activate`).
    Lifecycle,
    /// An application message.
    User,
}

/// A message on its way to an activation.
pub struct Envelope {
    run: RunFn,
    kind: EnvelopeKind,
    /// Rebuilds a reply-less copy of this envelope, for chaos
    /// duplicate-delivery injection. Only present for envelopes built via
    /// [`Envelope::replayable`] (requires `M: Clone`); the chaos layer
    /// falls back to delivering non-replayable envelopes exactly once.
    replay: Option<Box<dyn Fn() -> Envelope + Send>>,
}

impl Envelope {
    /// Wraps message `msg` for actor type `A`.
    pub fn of<A, M>(msg: M, reply: ReplyTo<M::Reply>) -> Envelope
    where
        A: Handler<M>,
        M: Message,
    {
        Envelope {
            run: Box::new(move |turn| match turn {
                Turn::Run(actor, ctx) => {
                    let actor = actor
                        .as_any_mut()
                        .downcast_mut::<A>()
                        .expect("envelope executed against wrong actor type");
                    // Stash the sink so the handler may take it via
                    // `ActorContext::defer_reply` and resolve it after
                    // the turn (e.g. from a WAL durability callback).
                    debug_assert!(ctx.reply_slot.is_none(), "reply slot leaked across turns");
                    ctx.reply_slot = Some(Box::new(reply));
                    let out = actor.handle(msg, ctx);
                    if let Some(slot) = ctx.reply_slot.take() {
                        let reply = *slot
                            .downcast::<ReplyTo<M::Reply>>()
                            .expect("foreign value in reply slot after turn");
                        reply.deliver(out);
                    }
                    // Slot empty: the handler deferred the reply; its
                    // returned value is deliberately discarded.
                }
                Turn::Abort(err) => reply.abort(err),
            }),
            kind: EnvelopeKind::User,
            replay: None,
        }
    }

    /// Like [`Envelope::of`], but also carries a factory that can rebuild
    /// the envelope from a clone of the message, letting the chaos layer
    /// inject duplicate deliveries. The duplicate is delivered one-way
    /// (its reply is ignored) — at-least-once delivery duplicates the
    /// *effect*, not the response channel.
    pub fn replayable<A, M>(msg: M, reply: ReplyTo<M::Reply>) -> Envelope
    where
        A: Handler<M>,
        M: Message + Clone,
    {
        let copy = msg.clone();
        let mut env = Envelope::of::<A, M>(msg, reply);
        env.replay = Some(Box::new(move || {
            Envelope::of::<A, M>(copy.clone(), ReplyTo::Ignore)
        }));
        env
    }

    /// The synthetic `on_activate` turn enqueued as the first message of
    /// every fresh activation.
    pub(crate) fn lifecycle_activate() -> Envelope {
        Envelope {
            run: Box::new(|turn| {
                if let Turn::Run(actor, ctx) = turn {
                    actor.activate(ctx)
                }
            }),
            kind: EnvelopeKind::Lifecycle,
            replay: None,
        }
    }

    pub(crate) fn kind(&self) -> EnvelopeKind {
        self.kind
    }

    /// A reply-less copy of this envelope, when it was built replayable.
    pub(crate) fn try_replay(&self) -> Option<Envelope> {
        self.replay.as_ref().map(|f| f())
    }

    /// Executes the turn.
    pub(crate) fn run(self, actor: &mut dyn AnyActor, ctx: &mut ActorContext<'_>) {
        (self.run)(Turn::Run(actor, ctx));
    }

    /// Resolves the envelope's reply sink with `err` without running the
    /// handler (crashed silo, dropped message).
    pub(crate) fn abort(self, err: PromiseError) {
        (self.run)(Turn::Abort(err));
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("kind", &self.kind)
            .field("replayable", &self.replay.is_some())
            .finish()
    }
}
