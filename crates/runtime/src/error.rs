//! Error types for the virtual-actor runtime.

use std::fmt;

/// Errors that can occur when dispatching a message to an actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The target actor type was never registered with the runtime.
    NotRegistered(String),
    /// The runtime is shutting down and no longer accepts messages.
    RuntimeShutdown,
    /// The activation kept retiring under our feet; the dispatch retry
    /// budget was exhausted. This indicates pathological idle-timeout
    /// configuration rather than a transient condition.
    ActivationRace,
    /// Every silo in the cluster is crashed ([`crate::Runtime::kill_silo`]);
    /// there is nowhere to place an activation until a restart.
    NoSiloAvailable,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::NotRegistered(name) => {
                write!(f, "actor type `{name}` is not registered with the runtime")
            }
            SendError::RuntimeShutdown => write!(f, "runtime is shut down"),
            SendError::ActivationRace => {
                write!(f, "dispatch retry budget exhausted due to activation races")
            }
            SendError::NoSiloAvailable => {
                write!(f, "all silos are crashed; no placement target available")
            }
        }
    }
}

impl std::error::Error for SendError {}

/// Errors produced while waiting on a [`crate::Promise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromiseError {
    /// The reply side was dropped without ever producing a value.
    ///
    /// This happens when the target actor panicked during the turn that
    /// should have produced the reply, when the runtime shut down, or when
    /// the chaos layer dropped the message at the network boundary.
    Lost,
    /// The timeout passed to [`crate::Promise::wait_for`] elapsed.
    Timeout,
    /// The silo hosting the target activation crashed
    /// ([`crate::Runtime::kill_silo`]) while the request was queued or in
    /// flight there. Unlike [`PromiseError::Lost`] this names the cause, so
    /// callers can retry: the identity still exists, and the next dispatch
    /// re-places it on a surviving silo and reactivates it from the last
    /// durable state.
    SiloLost,
}

impl fmt::Display for PromiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromiseError::Lost => write!(f, "reply was lost (target panicked or shut down)"),
            PromiseError::Timeout => write!(f, "timed out waiting for reply"),
            PromiseError::SiloLost => {
                write!(f, "silo hosting the target crashed; retry to reactivate")
            }
        }
    }
}

impl std::error::Error for PromiseError {}

/// The error type callers of [`crate::ActorRef::ask`] / `call` see for
/// actor-side failures. An alias of [`PromiseError`]: the interesting
/// variant for fault tolerance is [`ActorError::SiloLost`], which tells the
/// caller the hosting silo crashed and a retry will reactivate the actor
/// elsewhere.
pub type ActorError = PromiseError;

/// Convenience alias for call results: dispatch may fail, and waiting on
/// the reply may fail independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// The message could not be enqueued at all.
    Send(SendError),
    /// The message was enqueued but no reply arrived.
    Reply(PromiseError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Send(e) => write!(f, "send failed: {e}"),
            CallError::Reply(e) => write!(f, "reply failed: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

impl From<SendError> for CallError {
    fn from(e: SendError) -> Self {
        CallError::Send(e)
    }
}

impl From<PromiseError> for CallError {
    fn from(e: PromiseError) -> Self {
        CallError::Reply(e)
    }
}
