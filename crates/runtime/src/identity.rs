//! Actor identity: type identifiers and per-instance keys.
//!
//! Virtual actors are *named*: an [`ActorId`] denotes an actor that logically
//! always exists, whether or not an in-memory activation currently backs it
//! (the Orleans "virtual actor" abstraction the paper builds on).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Dense identifier assigned to an actor *type* at registration time.
///
/// Using a small integer instead of the type name keeps [`ActorId`] hashing
/// and comparison cheap on the hot dispatch path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ActorTypeId(pub(crate) u16);

impl ActorTypeId {
    /// Raw index into the runtime's type registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a type id from a raw registry index. Only useful for
    /// building [`ActorId`]s outside a runtime (tests, tooling); ids made
    /// this way are only meaningful against a runtime whose registration
    /// order matches.
    pub const fn from_raw(index: u16) -> ActorTypeId {
        ActorTypeId(index)
    }
}

/// Per-instance key of a virtual actor.
///
/// Keys are either integers (cheap, preferred for synthetic fleets such as
/// simulated sensors) or interned strings (natural for domain entities such
/// as `"org:great-belt"`).
#[derive(Clone, Debug)]
pub enum ActorKey {
    /// Numeric key.
    U64(u64),
    /// String key (reference counted so clones are cheap).
    Str(Arc<str>),
}

impl ActorKey {
    /// Renders the key for diagnostics and storage-key composition.
    pub fn as_display(&self) -> String {
        match self {
            ActorKey::U64(v) => v.to_string(),
            ActorKey::Str(s) => s.to_string(),
        }
    }

    /// Stable 64-bit hash of the key, used by hash-based placement.
    pub fn stable_hash(&self) -> u64 {
        match self {
            ActorKey::U64(v) => splitmix64(*v),
            ActorKey::Str(s) => fnv1a(s.as_bytes()),
        }
    }
}

impl PartialEq for ActorKey {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ActorKey::U64(a), ActorKey::U64(b)) => a == b,
            (ActorKey::Str(a), ActorKey::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ActorKey {}

impl Hash for ActorKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ActorKey::U64(v) => {
                state.write_u8(0);
                state.write_u64(*v);
            }
            ActorKey::Str(s) => {
                state.write_u8(1);
                state.write(s.as_bytes());
            }
        }
    }
}

impl From<u64> for ActorKey {
    fn from(v: u64) -> Self {
        ActorKey::U64(v)
    }
}

impl From<&str> for ActorKey {
    fn from(s: &str) -> Self {
        ActorKey::Str(Arc::from(s))
    }
}

impl From<String> for ActorKey {
    fn from(s: String) -> Self {
        ActorKey::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for ActorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorKey::U64(v) => write!(f, "{v}"),
            ActorKey::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Fully-qualified identity of a virtual actor: `(type, key)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ActorId {
    /// The registered type of the actor.
    pub type_id: ActorTypeId,
    /// The instance key within the type.
    pub key: ActorKey,
}

impl ActorId {
    /// Creates an identity from its parts.
    pub fn new(type_id: ActorTypeId, key: ActorKey) -> Self {
        ActorId { type_id, key }
    }

    /// Stable hash combining type and key; drives consistent-hash placement
    /// and directory sharding.
    pub fn stable_hash(&self) -> u64 {
        splitmix64(
            self.key.stable_hash() ^ (self.type_id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}:{}", self.type_id.0, self.key)
    }
}

/// Identifier of a silo (one simulated server) within the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SiloId(pub u32);

impl SiloId {
    /// Index into the runtime's silo table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiloId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "silo-{}", self.0)
    }
}

/// Where a message originates, which determines whether it pays simulated
/// network latency and which silo "prefer-local" placement favours.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Origin {
    /// An external client (the benchmarking tool, an example binary, a test).
    Client,
    /// Another actor (or an affine client gateway) running on the given silo.
    Silo(SiloId),
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn u64_and_str_keys_are_distinct() {
        assert_ne!(ActorKey::from(7u64), ActorKey::from("7"));
    }

    #[test]
    fn equal_keys_hash_equally() {
        let a = ActorKey::from("cow-42");
        let b = ActorKey::from(String::from("cow-42"));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn stable_hash_is_deterministic() {
        let id = ActorId::new(ActorTypeId(3), ActorKey::from(99u64));
        assert_eq!(id.stable_hash(), id.stable_hash());
        let id2 = ActorId::new(ActorTypeId(4), ActorKey::from(99u64));
        assert_ne!(id.stable_hash(), id2.stable_hash());
    }

    #[test]
    fn stable_hash_spreads_sequential_keys() {
        // Sequential sensor keys must not collapse onto one silo.
        let mut silos = [0usize; 4];
        for k in 0..1000u64 {
            let id = ActorId::new(ActorTypeId(1), ActorKey::from(k));
            silos[(id.stable_hash() % 4) as usize] += 1;
        }
        for &count in &silos {
            assert!(count > 150, "skewed placement distribution: {silos:?}");
        }
    }

    #[test]
    fn display_forms() {
        let id = ActorId::new(ActorTypeId(2), ActorKey::from("bridge"));
        assert_eq!(id.to_string(), "#2:bridge");
        assert_eq!(SiloId(3).to_string(), "silo-3");
    }
}
