//! # aodb-runtime — a virtual-actor runtime for actor-oriented databases
//!
//! This crate is the Orleans-style substrate the EDBT 2019 paper
//! *"Modeling and Building IoT Data Platforms with Actor-Oriented
//! Databases"* builds on, reimplemented from scratch in safe Rust:
//!
//! * **Virtual actors** — actors are *named* ([`ActorId`]) and logically
//!   always exist. The runtime activates an in-memory instance on the first
//!   message, runs handlers turn-based (at most one turn per activation at
//!   a time), and reclaims idle activations, calling
//!   [`Actor::on_deactivate`] so persistent actors can flush state.
//! * **Silos** — simulated servers: each owns a worker pool and an
//!   activation table. Cross-silo messages pay configurable simulated
//!   network latency ([`NetConfig`]), making placement effects measurable.
//! * **Placement** — [`RandomPlacement`] (the Orleans default),
//!   [`PreferLocalPlacement`] (what the paper's SHM platform adopted for
//!   sensor channels and aggregators), and [`ConsistentHashPlacement`].
//! * **Messaging** — typed [`Message`]/[`Handler`] dispatch, one-way
//!   `tell`, promise-based `ask`, blocking `call` for clients, and
//!   deadlock-free scatter/gather via [`Collector`].
//! * **Metrics** — a concurrent log-bucketed [`Histogram`] delivering the
//!   latency percentiles the paper plots in Figures 8–9.
//!
//! ## Quick example
//!
//! ```
//! use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};
//!
//! struct Counter { value: u64 }
//!
//! impl Actor for Counter {
//!     const TYPE_NAME: &'static str = "example.counter";
//! }
//!
//! struct Add(u64);
//! impl Message for Add { type Reply = u64; }
//!
//! impl Handler<Add> for Counter {
//!     fn handle(&mut self, msg: Add, _ctx: &mut ActorContext<'_>) -> u64 {
//!         self.value += msg.0;
//!         self.value
//!     }
//! }
//!
//! let rt = Runtime::single(2);
//! rt.register(|_id| Counter { value: 0 });
//! let counter = rt.actor_ref::<Counter>("my-counter");
//! assert_eq!(counter.call(Add(5)).unwrap(), 5);
//! assert_eq!(counter.call(Add(2)).unwrap(), 7);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod actor;
pub mod chaos;
mod directory;
mod envelope;
mod error;
mod identity;
mod mailbox;
pub mod metrics;
mod net;
mod placement;
mod promise;
mod runq;
mod runtime;
mod silo;
mod topology;

pub use actor::{Actor, ActorContext, Handler, Message};
pub use chaos::{ChaosNetConfig, ChaosNetStatsSnapshot, CrashEvent, FaultPlan};
pub use envelope::Envelope;
pub use error::{ActorError, CallError, PromiseError, SendError};
pub use identity::{ActorId, ActorKey, ActorTypeId, Origin, SiloId};
pub use metrics::{Histogram, Percentiles, RuntimeMetricsSnapshot, Snapshot};
pub use net::{LatencyModel, NetConfig, TimerHandle};
pub use placement::{ConsistentHashPlacement, Placement, PreferLocalPlacement, RandomPlacement};
pub use promise::{gather, resolved, Collector, Promise, ReplyTo};
pub use runtime::{
    ActorRef, PanicPolicy, Recipient, Runtime, RuntimeBuilder, RuntimeHandle, SiloCrashReport,
};
pub use silo::SiloConfig;
pub use topology::{ActorTopology, CallDecl, CallKind};

/// Internal scheduler/mailbox surface re-exported for the `modelcheck`
/// component models (feature `model` only; not a stable API).
#[cfg(feature = "model")]
pub mod model_api {
    pub use crate::mailbox::{Mailbox, PushOutcome, TurnOutcome};
    pub use crate::runq::{IdleSet, RunQueues, TaskSource, INJECTOR_FIRST_INTERVAL};

    use crate::envelope::Envelope;

    /// An inert envelope usable as an opaque mailbox token in models.
    pub fn inert_envelope() -> Envelope {
        Envelope::lifecycle_activate()
    }
}
