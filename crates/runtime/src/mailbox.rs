//! Per-activation mailbox with the scheduling state machine that upholds the
//! single-threaded-per-activation guarantee.
//!
//! The state machine has three states:
//!
//! ```text
//!            push (first msg)              turn ends, queue empty
//!   Idle ───────────────────▶ Scheduled ───────────────────────▶ Idle
//!    │                            ▲  │ turn ends, queue non-empty
//!    │ janitor try_retire         └──┘ (stays Scheduled, re-enqueued)
//!    ▼
//!  Retired  (terminal: pushes are refused, sender re-activates)
//! ```
//!
//! `Scheduled` covers both "waiting in a silo run queue" and "currently
//! running on a worker" — an activation is in a run queue **xor** running,
//! never both, because only the transition `Idle → Scheduled` enqueues it
//! and only the worker that dequeued it can return it to `Idle` or
//! re-enqueue it.
//!
//! The push path is a single short critical section (state check +
//! `push_back`); the drain path swaps the whole queue out against the
//! worker's reusable scratch buffer when the batch limit allows, so a turn
//! slice holds the lock for O(1) instead of O(batch) element moves. The
//! two buffers circulate between mailbox and worker, amortizing their
//! allocations across turns.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::envelope::Envelope;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MailboxState {
    Idle,
    Scheduled,
    Retired,
}

struct Inner {
    queue: VecDeque<Envelope>,
    state: MailboxState,
}

/// Outcome of pushing an envelope.
#[derive(Debug)]
pub enum PushOutcome {
    /// Enqueued; the activation was idle, so the caller must now put it on
    /// its silo's run queue.
    EnqueuedNeedsSchedule,
    /// Enqueued; the activation is already scheduled or running.
    Enqueued,
    /// The mailbox is retired. The envelope is handed back so the caller
    /// can re-dispatch it to a fresh activation.
    Retired(Envelope),
}

/// Outcome of finishing a turn slice.
#[derive(Debug, PartialEq, Eq)]
pub enum TurnOutcome {
    /// Queue drained; mailbox returned to `Idle`.
    Drained,
    /// More messages pending; caller must re-enqueue the activation.
    MorePending,
    /// A deactivation request was honoured: mailbox is now `Retired` and
    /// the caller must run `on_deactivate` and unregister the activation.
    RetiredForDeactivation,
}

/// FIFO mailbox + scheduling state for one activation.
pub struct Mailbox {
    inner: Mutex<Inner>,
}

impl Mailbox {
    /// Creates a mailbox already in `Scheduled` state holding the synthetic
    /// activation turn, so the creator can enqueue the activation exactly
    /// once without racing concurrent senders.
    pub fn new_scheduled_with(first: Envelope) -> Self {
        let mut queue = VecDeque::with_capacity(4);
        queue.push_back(first);
        Mailbox {
            inner: Mutex::new(Inner {
                queue,
                state: MailboxState::Scheduled,
            }),
        }
    }

    /// Attempts to enqueue an envelope.
    pub fn push(&self, env: Envelope) -> PushOutcome {
        let mut g = self.inner.lock();
        match g.state {
            MailboxState::Retired => PushOutcome::Retired(env),
            MailboxState::Idle => {
                g.queue.push_back(env);
                g.state = MailboxState::Scheduled;
                PushOutcome::EnqueuedNeedsSchedule
            }
            MailboxState::Scheduled => {
                g.queue.push_back(env);
                PushOutcome::Enqueued
            }
        }
    }

    /// Takes up to `max` envelopes for the current turn slice. Only the
    /// worker that dequeued this activation calls this. `out` must be
    /// empty; when the whole queue fits the batch it is swapped out in
    /// O(1), leaving `out`'s old buffer behind as the mailbox's next
    /// queue (capacities circulate instead of being reallocated).
    pub fn drain_batch(&self, max: usize, out: &mut VecDeque<Envelope>) {
        debug_assert!(out.is_empty());
        let mut g = self.inner.lock();
        debug_assert_eq!(g.state, MailboxState::Scheduled);
        if g.queue.len() <= max {
            std::mem::swap(&mut g.queue, out);
        } else {
            out.extend(g.queue.drain(..max));
        }
    }

    /// Ends a turn slice. `deactivate` reflects whether any handler in the
    /// slice asked for deactivation; it is honoured only when the queue is
    /// empty (Orleans defers deactivation past pending work).
    pub fn finish_turn(&self, deactivate: bool) -> TurnOutcome {
        let mut g = self.inner.lock();
        debug_assert_eq!(g.state, MailboxState::Scheduled);
        if !g.queue.is_empty() {
            return TurnOutcome::MorePending;
        }
        if deactivate {
            g.state = MailboxState::Retired;
            TurnOutcome::RetiredForDeactivation
        } else {
            g.state = MailboxState::Idle;
            TurnOutcome::Drained
        }
    }

    /// Faulted-turn entry point: the running worker retires the mailbox
    /// immediately and takes ownership of any still-queued envelopes (the
    /// caller re-dispatches them to a fresh activation). Only the worker
    /// currently executing this activation may call this.
    pub fn retire_and_drain(&self) -> Vec<Envelope> {
        let mut g = self.inner.lock();
        debug_assert_eq!(g.state, MailboxState::Scheduled);
        g.state = MailboxState::Retired;
        g.queue.drain(..).collect()
    }

    /// Janitor entry point: retire the mailbox if it is idle and empty.
    /// On success the caller owns deactivation.
    pub fn try_retire(&self) -> bool {
        let mut g = self.inner.lock();
        if g.state == MailboxState::Idle && g.queue.is_empty() {
            g.state = MailboxState::Retired;
            true
        } else {
            false
        }
    }

    /// Number of queued envelopes (diagnostics).
    #[allow(dead_code)] // used by tests and kept for debugging
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no envelopes are queued (diagnostics counterpart of
    /// [`len`](Self::len); a turn may still be in flight — see
    /// [`is_quiescent`](Self::is_quiescent) for the scheduler's notion).
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    /// True when the mailbox holds no work and no turn is in flight
    /// (state `Idle` or `Retired` with an empty queue). Used by the
    /// runtime's quiesce check.
    pub fn is_quiescent(&self) -> bool {
        let g = self.inner.lock();
        g.queue.is_empty() && g.state != MailboxState::Scheduled
    }

    /// True once retired.
    pub fn is_retired(&self) -> bool {
        self.inner.lock().state == MailboxState::Retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promise::ReplyTo;

    fn dummy_env() -> Envelope {
        // A lifecycle envelope is the cheapest valid envelope to construct
        // without a registered actor type.
        Envelope::lifecycle_activate()
    }

    fn drained_mailbox() -> Mailbox {
        let mb = Mailbox::new_scheduled_with(dummy_env());
        let mut out = VecDeque::new();
        mb.drain_batch(16, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(mb.finish_turn(false), TurnOutcome::Drained);
        mb
    }

    #[test]
    fn new_mailbox_is_scheduled() {
        let mb = Mailbox::new_scheduled_with(dummy_env());
        // A push while scheduled must not request another schedule.
        match mb.push(dummy_env()) {
            PushOutcome::Enqueued => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn idle_push_requests_schedule() {
        let mb = drained_mailbox();
        match mb.push(dummy_env()) {
            PushOutcome::EnqueuedNeedsSchedule => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        // Second push: already scheduled.
        match mb.push(dummy_env()) {
            PushOutcome::Enqueued => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn finish_turn_with_pending_work() {
        let mb = Mailbox::new_scheduled_with(dummy_env());
        mb.push(dummy_env());
        let mut out = VecDeque::new();
        mb.drain_batch(1, &mut out);
        assert_eq!(mb.finish_turn(false), TurnOutcome::MorePending);
        out.clear();
        mb.drain_batch(8, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(mb.finish_turn(false), TurnOutcome::Drained);
    }

    #[test]
    fn deactivation_deferred_past_pending_messages() {
        let mb = Mailbox::new_scheduled_with(dummy_env());
        mb.push(dummy_env());
        let mut out = VecDeque::new();
        mb.drain_batch(1, &mut out);
        // Handler asked to deactivate but a message is pending.
        assert_eq!(mb.finish_turn(true), TurnOutcome::MorePending);
        out.clear();
        mb.drain_batch(8, &mut out);
        assert_eq!(mb.finish_turn(true), TurnOutcome::RetiredForDeactivation);
        assert!(mb.is_retired());
    }

    #[test]
    fn retired_mailbox_refuses_pushes() {
        let mb = drained_mailbox();
        assert!(mb.try_retire());
        match mb.push(dummy_env()) {
            PushOutcome::Retired(_) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn retire_fails_when_scheduled_or_nonempty() {
        let mb = Mailbox::new_scheduled_with(dummy_env());
        assert!(!mb.try_retire(), "scheduled mailbox must not retire");
        let mb = drained_mailbox();
        mb.push(dummy_env());
        assert!(!mb.try_retire(), "non-empty mailbox must not retire");
    }

    #[test]
    fn concurrent_pushers_schedule_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        for _ in 0..50 {
            let mb = Arc::new(drained_mailbox());
            let schedules = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let mb = Arc::clone(&mb);
                    let schedules = Arc::clone(&schedules);
                    std::thread::spawn(move || {
                        if matches!(
                            mb.push(Envelope::lifecycle_activate()),
                            PushOutcome::EnqueuedNeedsSchedule
                        ) {
                            schedules.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(schedules.load(Ordering::SeqCst), 1);
            assert_eq!(mb.len(), 8);
        }
    }

    // Silence unused import warning for ReplyTo in this test module; it is
    // used indirectly by future envelope-based tests.
    #[allow(dead_code)]
    fn _reply_ignored() -> ReplyTo<()> {
        ReplyTo::Ignore
    }
}
