//! Runtime metrics: a concurrent log-bucketed latency histogram (the
//! percentile machinery behind Figures 8 and 9) and coarse runtime
//! counters.
//!
//! The histogram uses HdrHistogram-style bucketing: exact counts below
//! 64 µs, then 64 linear sub-buckets per power of two, giving a relative
//! error below 1.6 % across the full range while staying allocation-free
//! and lock-free on the record path.
//!
//! # Atomic-ordering policy
//!
//! Every atomic in this module is `Ordering::Relaxed`, on both the write
//! and read side — deliberately and uniformly. These are *statistical*
//! counters: each is independently meaningful, per-counter monotonicity
//! is all the RMW operations need, and no code path derives a
//! happens-before relationship from them. Consequently snapshots
//! ([`Histogram::snapshot`], [`RuntimeMetrics::read`]) may tear across
//! counters (e.g. `sum` momentarily ahead of `count`); consumers must
//! tolerate that, and tests only assert on quiesced values. An atomic
//! that *synchronizes* (publishes data, gates a state machine) does not
//! belong here — put it next to the state it orders, with the stronger
//! ordering written at the use site.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6; // log2(SUB_BUCKETS)
/// Supports values up to 2^40 µs ≈ 12.7 days, far beyond any latency here.
const MAX_EXP: u32 = 40;
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * ((MAX_EXP - SUB_BITS + 1) as usize + 1);

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // value in [2^exp, 2^(exp+1))
    let exp = exp.min(MAX_EXP);
    // Keep the 6 bits below the leading one as the linear sub-bucket.
    let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    ((exp - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub
}

fn bucket_lower_bound(index: usize) -> u64 {
    let group = index / SUB_BUCKETS as usize;
    let sub = (index % SUB_BUCKETS as usize) as u64;
    if group == 0 {
        sub
    } else {
        let exp = group as u32 + SUB_BITS - 1;
        (SUB_BUCKETS + sub) << (exp - SUB_BITS)
    }
}

/// Concurrent latency histogram. Values are recorded in microseconds.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (µs). Lock-free; callable from any thread.
    pub fn record(&self, value_us: u64) {
        self.buckets[bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
        self.max.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`].
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time snapshot for percentile queries.
    pub fn snapshot(&self) -> Snapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        Snapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters (between measurement windows).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Immutable histogram snapshot with percentile queries.
#[derive(Clone, Debug)]
pub struct Snapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Snapshot {
    /// Empty snapshot (identity for [`Snapshot::merge`]).
    pub fn empty() -> Self {
        Snapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (µs), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value (µs).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value (µs) at quantile `q` in `[0, 1]`, e.g. `0.999` for p99.9.
    /// Returns the lower bound of the bucket containing the quantile.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Report the bucket midpoint-ish (lower bound of next step
                // would overestimate); clamp to max for the tail bucket.
                return bucket_lower_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience for the percentile set the paper plots.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p95: self.value_at_quantile(0.95),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
            max: self.max,
            mean: self.mean(),
            count: self.count,
        }
    }

    /// Merges another snapshot into this one (for combining per-window or
    /// per-thread histograms).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// The latency percentiles reported by the paper's Figures 8 and 9.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Median latency (µs).
    pub p50: u64,
    /// 90th percentile (µs).
    pub p90: u64,
    /// 95th percentile (µs).
    pub p95: u64,
    /// 99th percentile (µs).
    pub p99: u64,
    /// 99.9th percentile (µs).
    pub p999: u64,
    /// Maximum observed (µs).
    pub max: u64,
    /// Mean (µs).
    pub mean: f64,
    /// Number of samples.
    pub count: u64,
}

/// Coarse counters maintained by the runtime itself.
#[derive(Default)]
pub struct RuntimeMetrics {
    /// Application messages processed across all silos.
    pub messages_processed: AtomicU64,
    /// Activations created.
    pub activations: AtomicU64,
    /// Activations reclaimed (idle, explicit, or shutdown).
    pub deactivations: AtomicU64,
    /// Handler panics caught and isolated.
    pub handler_panics: AtomicU64,
    /// Envelopes that crossed silos (paid simulated network latency).
    pub remote_messages: AtomicU64,
    /// Envelopes delivered silo-locally.
    pub local_messages: AtomicU64,
    /// Scheduler: tasks a worker popped off its own LIFO deque.
    pub scheduler_local_pops: AtomicU64,
    /// Scheduler: tasks taken from a silo's shared injector queue.
    pub scheduler_injector_pops: AtomicU64,
    /// Scheduler: tasks stolen from a sibling worker's deque.
    pub scheduler_steals: AtomicU64,
    /// Scheduler: times a worker parked after finding no work anywhere.
    /// Stable across an idle window — workers park once and stay parked
    /// (no periodic polling), which tests assert on.
    pub worker_parks: AtomicU64,
    /// Silos killed via [`kill_silo`](crate::Runtime::kill_silo).
    pub silo_crashes: AtomicU64,
    /// Activations re-created for an identity previously evicted by a silo
    /// crash (the recovery half of the crash metric).
    pub reactivations: AtomicU64,
    /// User envelopes aborted by silo crashes — turns that were queued or
    /// salvaged-but-unrunnable when their silo died. Their reply sinks
    /// resolved as `SiloLost`.
    pub lost_turns: AtomicU64,
    /// Persistence write attempts that were *retries* under a
    /// `RetryPolicy` (shared with the persistence layer by `Arc`: the cell
    /// lives in application crates that cannot see this struct).
    pub persist_retries: std::sync::Arc<AtomicU64>,
    /// Group-commit WAL: groups flushed (shared with the store layer's
    /// committer thread by `Arc`, like `persist_retries` — the store crate
    /// cannot see this struct, so the platform wires these cells into the
    /// WAL's counter mirror).
    pub wal_groups: std::sync::Arc<AtomicU64>,
    /// Group-commit WAL: frames coalesced into those groups.
    /// `wal_grouped_frames / wal_groups` is the mean group size — the
    /// direct measure of how much write coalescing the ingest path gets.
    pub wal_grouped_frames: std::sync::Arc<AtomicU64>,
    /// Group-commit WAL: fsyncs issued. Under `FsyncPolicy::PerGroup` this
    /// tracks `wal_groups`; the gap to `wal_grouped_frames` is the number
    /// of fsyncs group commit *saved* versus sync-per-append.
    pub wal_fsyncs: std::sync::Arc<AtomicU64>,
}

impl RuntimeMetrics {
    /// Cheap copy of all counter values.
    pub fn read(&self) -> RuntimeMetricsSnapshot {
        RuntimeMetricsSnapshot {
            messages_processed: self.messages_processed.load(Ordering::Relaxed),
            activations: self.activations.load(Ordering::Relaxed),
            deactivations: self.deactivations.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            remote_messages: self.remote_messages.load(Ordering::Relaxed),
            local_messages: self.local_messages.load(Ordering::Relaxed),
            scheduler_local_pops: self.scheduler_local_pops.load(Ordering::Relaxed),
            scheduler_injector_pops: self.scheduler_injector_pops.load(Ordering::Relaxed),
            scheduler_steals: self.scheduler_steals.load(Ordering::Relaxed),
            worker_parks: self.worker_parks.load(Ordering::Relaxed),
            silo_crashes: self.silo_crashes.load(Ordering::Relaxed),
            reactivations: self.reactivations.load(Ordering::Relaxed),
            lost_turns: self.lost_turns.load(Ordering::Relaxed),
            persist_retries: self.persist_retries.load(Ordering::Relaxed),
            wal_groups: self.wal_groups.load(Ordering::Relaxed),
            wal_grouped_frames: self.wal_grouped_frames.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            parked_workers: 0,
        }
    }
}

/// Point-in-time copy of [`RuntimeMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeMetricsSnapshot {
    /// Application messages processed across all silos.
    pub messages_processed: u64,
    /// Activations created.
    pub activations: u64,
    /// Activations reclaimed.
    pub deactivations: u64,
    /// Handler panics caught and isolated.
    pub handler_panics: u64,
    /// Envelopes that crossed silos.
    pub remote_messages: u64,
    /// Envelopes delivered silo-locally.
    pub local_messages: u64,
    /// Tasks workers popped off their own LIFO deques.
    pub scheduler_local_pops: u64,
    /// Tasks taken from silo injector queues.
    pub scheduler_injector_pops: u64,
    /// Tasks stolen from sibling workers.
    pub scheduler_steals: u64,
    /// Times a worker parked (idle workers park once; no periodic polling).
    pub worker_parks: u64,
    /// Silos killed via `kill_silo`.
    pub silo_crashes: u64,
    /// Activations re-created after a crash evicted their identity.
    pub reactivations: u64,
    /// User envelopes aborted (`SiloLost`) by silo crashes.
    pub lost_turns: u64,
    /// Persistence write retries performed under a `RetryPolicy`.
    pub persist_retries: u64,
    /// Group-commit WAL groups flushed.
    pub wal_groups: u64,
    /// Frames coalesced into those WAL groups.
    pub wal_grouped_frames: u64,
    /// Fsyncs issued by the WAL committer.
    pub wal_fsyncs: u64,
    /// Gauge: workers parked at snapshot time ([`RuntimeMetrics::read`]
    /// itself cannot see the silos, so it reports 0 here; the runtime's
    /// `metrics()` accessor fills it in).
    pub parked_workers: u64,
}

impl RuntimeMetricsSnapshot {
    /// Mean frames per WAL group (0 when no groups were flushed) — the
    /// coalescing factor achieved by group commit.
    pub fn wal_group_size(&self) -> f64 {
        if self.wal_groups == 0 {
            0.0
        } else {
            self.wal_grouped_frames as f64 / self.wal_groups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..64 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [64u64, 100, 1_000, 12_345, 1_000_000, 123_456_789] {
            let lb = bucket_lower_bound(bucket_index(v));
            assert!(lb <= v, "lower bound {lb} exceeds value {v}");
            let err = (v - lb) as f64 / v as f64;
            assert!(err < 0.032, "relative error {err} too large for {v}");
        }
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = bucket_index(v);
            assert!(idx >= last, "index decreased at {v}");
            last = idx;
        }
    }

    #[test]
    fn percentiles_of_uniform_data() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        let p50 = s.value_at_quantile(0.5);
        assert!((4700..=5100).contains(&p50), "p50 = {p50}");
        let p99 = s.value_at_quantile(0.99);
        assert!((9500..=10_000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.max(), 10_000);
        assert!((s.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn tail_quantile_reflects_outliers() {
        let h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert!(s.value_at_quantile(0.5) <= 101);
        assert!(s.value_at_quantile(0.9999) >= 900_000);
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.value_at_quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for v in 0..100 {
            h1.record(v);
            h2.record(v + 1000);
        }
        let mut s = h1.snapshot();
        s.merge(&h2.snapshot());
        assert_eq!(s.count(), 200);
        assert!(s.value_at_quantile(1.0) >= 1000);
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().max(), 0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 100);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 80_000);
    }
}
