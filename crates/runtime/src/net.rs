//! Simulated network and delayed delivery ("clock") service.
//!
//! In the paper's deployment, messages between the client and the silos and
//! between silos traverse a real datacenter network. In-process we charge a
//! configurable latency to every hop that would have been remote: the
//! envelope is parked in a timing heap and delivered when due. Local
//! deliveries bypass this entirely, which is what makes the prefer-local
//! placement ablation measurable.
//!
//! The same machinery implements actor timers (`notify_self_after`,
//! interval timers).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::envelope::Envelope;
use crate::identity::{ActorId, Origin, SiloId};
use crate::runtime::RuntimeCore;

/// Latency distribution of one network hop: `base ± uniform(0..jitter)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum latency of the hop.
    pub base: Duration,
    /// Additional uniformly distributed jitter.
    pub jitter: Duration,
}

impl LatencyModel {
    /// A fixed-latency hop.
    pub const fn fixed(base: Duration) -> Self {
        LatencyModel {
            base,
            jitter: Duration::ZERO,
        }
    }

    fn sample(&self, seed: &AtomicU64) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        // xorshift on a shared seed: contention is irrelevant here (the
        // value only needs to look noisy) and Relaxed updates are fine.
        let mut x = seed.load(Ordering::Relaxed) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        seed.store(x, Ordering::Relaxed);
        self.base + Duration::from_nanos(x % self.jitter.as_nanos().max(1) as u64)
    }
}

/// Network simulation settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Latency charged to messages between two different silos.
    pub cross_silo: Option<LatencyModel>,
    /// Latency charged to messages from external clients
    /// ([`Origin::Client`]). Clients with silo affinity
    /// (`Runtime::handle_on`) model a co-located gateway and never pay it.
    pub client: Option<LatencyModel>,
}

impl NetConfig {
    /// No simulated network at all (unit tests, single-machine semantics).
    pub const fn disabled() -> Self {
        NetConfig {
            cross_silo: None,
            client: None,
        }
    }

    /// A LAN-like profile: 250 µs ± 100 µs between silos, free client hop.
    pub const fn lan() -> Self {
        NetConfig {
            cross_silo: Some(LatencyModel {
                base: Duration::from_micros(250),
                jitter: Duration::from_micros(100),
            }),
            client: None,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::disabled()
    }
}

enum ClockJob {
    /// Deliver an envelope to an actor, dispatching as if from `origin`.
    Deliver {
        target: ActorId,
        origin: Origin,
        env: Envelope,
    },
    /// Repeating timer: build a fresh envelope each period until cancelled.
    Repeat {
        target: ActorId,
        make: Box<dyn Fn() -> Envelope + Send>,
        every: Duration,
        cancelled: Arc<AtomicBool>,
    },
    /// No-op that exists to interrupt a blocked `recv`: the loop re-checks
    /// the shutdown flag after every message. Sent by [`ClockHandle::wake`].
    Wake,
    /// Scheduled runtime surgery (chaos silo crashes). The closure runs on
    /// the clock thread and must not block — long operations spawn their
    /// own thread.
    Control(ControlFn),
}

/// A deferred action against the runtime core, run on the clock thread.
pub(crate) type ControlFn = Box<dyn FnOnce(&Arc<RuntimeCore>) + Send>;

pub(crate) struct HeapItem {
    due: Instant,
    seq: u64,
    job: ClockJob,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-due first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Handle for cancelling an interval timer.
#[derive(Clone)]
pub struct TimerHandle {
    cancelled: Arc<AtomicBool>,
}

impl TimerHandle {
    /// Stops future firings. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the timer has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Sender half of the clock service, embedded in the runtime core.
pub(crate) struct ClockHandle {
    tx: Sender<HeapItem>,
    seq: AtomicU64,
    rng_seed: AtomicU64,
    pub config: NetConfig,
}

impl ClockHandle {
    /// Latency to charge for a hop from `origin` to `target`, if any.
    pub fn hop_delay(&self, origin: Origin, target: SiloId) -> Option<Duration> {
        match origin {
            Origin::Client => self.config.client.map(|m| m.sample(&self.rng_seed)),
            Origin::Silo(s) if s != target => {
                self.config.cross_silo.map(|m| m.sample(&self.rng_seed))
            }
            Origin::Silo(_) => None,
        }
    }

    pub fn deliver_after(&self, target: ActorId, origin: Origin, env: Envelope, delay: Duration) {
        let item = HeapItem {
            due: Instant::now() + delay,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            job: ClockJob::Deliver {
                target,
                origin,
                env,
            },
        };
        let _ = self.tx.send(item);
    }

    /// Interrupts the clock thread's blocking wait so it notices shutdown
    /// immediately instead of at its next due timer.
    pub fn wake(&self) {
        let item = HeapItem {
            due: Instant::now(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            job: ClockJob::Wake,
        };
        let _ = self.tx.send(item);
    }

    /// Schedules a control action (e.g. a fault-plan silo crash) to run on
    /// the clock thread after `delay`.
    pub fn control(&self, delay: Duration, f: ControlFn) {
        let item = HeapItem {
            due: Instant::now() + delay,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            job: ClockJob::Control(f),
        };
        let _ = self.tx.send(item);
    }

    pub fn repeat(
        &self,
        target: ActorId,
        make: Box<dyn Fn() -> Envelope + Send>,
        every: Duration,
    ) -> TimerHandle {
        let cancelled = Arc::new(AtomicBool::new(false));
        let item = HeapItem {
            due: Instant::now() + every,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            job: ClockJob::Repeat {
                target,
                make,
                every,
                cancelled: Arc::clone(&cancelled),
            },
        };
        let _ = self.tx.send(item);
        TimerHandle { cancelled }
    }
}

pub(crate) fn clock_channel(config: NetConfig) -> (ClockHandle, Receiver<HeapItem>) {
    let (tx, rx) = unbounded();
    (
        ClockHandle {
            tx,
            seq: AtomicU64::new(0),
            rng_seed: AtomicU64::new(0x0DDB_1A5E_5BAD_5EED),
            config,
        },
        rx,
    )
}

/// Body of the clock thread. Blocks indefinitely while the heap is empty
/// (no periodic polling — [`ClockHandle::wake`] interrupts the wait at
/// shutdown); otherwise sleeps exactly until the next job is due.
pub(crate) fn clock_loop(core: Weak<RuntimeCore>, rx: Receiver<HeapItem>) {
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    loop {
        match heap.peek() {
            None => match rx.recv() {
                Ok(item) => heap.push(item),
                Err(_) => return,
            },
            Some(next) => {
                let timeout = next.due.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(item) => heap.push(item),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
        // Drain the channel opportunistically so a burst of sends does not
        // serialize behind per-item heap wakeups.
        while let Ok(item) = rx.try_recv() {
            heap.push(item);
        }
        let Some(core) = core.upgrade() else { return };
        if core.is_shutdown() {
            return;
        }
        let now = Instant::now();
        while heap.peek().is_some_and(|item| item.due <= now) {
            let item = heap.pop().expect("peeked item");
            match item.job {
                ClockJob::Deliver {
                    target,
                    origin,
                    env,
                } => {
                    // Latency (if any) was charged when the job was
                    // scheduled; delivery itself is free. Failure means
                    // shutdown or a persistent race; replies resolve as
                    // Lost, which is the contract.
                    let _ = core.dispatch_free(target, env, origin);
                }
                ClockJob::Repeat {
                    target,
                    make,
                    every,
                    cancelled,
                } => {
                    if cancelled.load(Ordering::Relaxed) {
                        continue;
                    }
                    let env = make();
                    let _ = core.dispatch_free(target.clone(), env, Origin::Client);
                    heap.push(HeapItem {
                        due: item.due + every,
                        seq: item.seq,
                        job: ClockJob::Repeat {
                            target,
                            make,
                            every,
                            cancelled,
                        },
                    });
                }
                ClockJob::Wake => {}
                ClockJob::Control(f) => f(&core),
            }
        }
    }
}
