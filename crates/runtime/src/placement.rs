//! Activation placement strategies.
//!
//! When a message targets a virtual actor with no current activation, the
//! placement strategy chooses which silo hosts the new activation. The
//! paper (Section 5, "Virtual actor durability and deployment") reports
//! that Orleans' default random placement spreads load but inflates
//! cross-silo communication for chatty actor pairs, and that the SHM
//! platform switched sensor channels and aggregators to *prefer-local*
//! placement. The `placement` ablation bench quantifies that choice.

use std::cell::Cell;

use crate::identity::{ActorId, Origin, SiloId};

/// Chooses a silo for a fresh activation.
pub trait Placement: Send + Sync + 'static {
    /// Picks a silo among `n_silos` for actor `id`, given where the
    /// triggering message originated.
    fn place(&self, id: &ActorId, origin: Origin, n_silos: usize) -> SiloId;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Uniform random placement (the Orleans default).
#[derive(Default)]
pub struct RandomPlacement;

thread_local! {
    static PLACEMENT_RNG: Cell<u64> = const { Cell::new(0x853C_49E6_748F_EA9B) };
}

fn thread_rand() -> u64 {
    PLACEMENT_RNG.with(|cell| {
        // xorshift64*: tiny, fast, good enough for load spreading. Seeded
        // per thread with a fixed constant XORed with the thread's stack
        // address entropy on first use would be overkill — determinism per
        // thread is actually desirable for reproducible experiments.
        let mut x = cell.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        cell.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

impl Placement for RandomPlacement {
    fn place(&self, _id: &ActorId, _origin: Origin, n_silos: usize) -> SiloId {
        SiloId((thread_rand() % n_silos as u64) as u32)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Prefer the silo the triggering message came from; fall back to
/// consistent hashing for client-originated messages.
///
/// This is the strategy the paper adopted for sensor channels and
/// aggregators: a sensor's ingest gateway and its channel actors end up
/// co-located, eliminating remote hops on the hot path.
#[derive(Default)]
pub struct PreferLocalPlacement;

impl Placement for PreferLocalPlacement {
    fn place(&self, id: &ActorId, origin: Origin, n_silos: usize) -> SiloId {
        match origin {
            Origin::Silo(s) if s.index() < n_silos => s,
            _ => SiloId((id.stable_hash() % n_silos as u64) as u32),
        }
    }

    fn name(&self) -> &'static str {
        "prefer-local"
    }
}

/// Deterministic placement by stable hash of the actor identity.
///
/// Guarantees that related keys can be *engineered* to co-locate (e.g. all
/// actors of one organization share a hash prefix) and that placement is
/// reproducible across runs.
#[derive(Default)]
pub struct ConsistentHashPlacement;

impl Placement for ConsistentHashPlacement {
    fn place(&self, id: &ActorId, _origin: Origin, n_silos: usize) -> SiloId {
        SiloId((id.stable_hash() % n_silos as u64) as u32)
    }

    fn name(&self) -> &'static str {
        "consistent-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{ActorKey, ActorTypeId};

    fn id(k: u64) -> ActorId {
        ActorId::new(ActorTypeId(1), ActorKey::from(k))
    }

    #[test]
    fn random_spreads_over_silos() {
        let p = RandomPlacement;
        let mut counts = [0usize; 4];
        for k in 0..4000 {
            counts[p.place(&id(k), Origin::Client, 4).index()] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "distribution too skewed: {counts:?}");
        }
    }

    #[test]
    fn prefer_local_uses_origin_silo() {
        let p = PreferLocalPlacement;
        assert_eq!(p.place(&id(1), Origin::Silo(SiloId(2)), 4), SiloId(2));
    }

    #[test]
    fn prefer_local_falls_back_for_clients() {
        let p = PreferLocalPlacement;
        let s1 = p.place(&id(1), Origin::Client, 4);
        let s2 = p.place(&id(1), Origin::Client, 4);
        assert_eq!(s1, s2, "client fallback must be deterministic");
    }

    #[test]
    fn prefer_local_ignores_out_of_range_origin() {
        let p = PreferLocalPlacement;
        let s = p.place(&id(1), Origin::Silo(SiloId(9)), 2);
        assert!(s.index() < 2);
    }

    #[test]
    fn consistent_hash_is_stable() {
        let p = ConsistentHashPlacement;
        for k in 0..100 {
            assert_eq!(
                p.place(&id(k), Origin::Client, 8),
                p.place(&id(k), Origin::Silo(SiloId(3)), 8)
            );
        }
    }
}
