//! Request/response plumbing: reply sinks, promises, and scatter/gather
//! collectors.
//!
//! The runtime's core reply primitive is a *callback* ([`ReplyTo`]): the
//! worker thread that finishes handling a request invokes the callback with
//! the reply value. [`Promise`] layers a blocking wait on top of that for
//! external clients, and [`Collector`] provides deadlock-free fan-in for
//! multi-actor scatter/gather (an actor must never block its turn waiting
//! for another actor — see the paper's discussion of non-blocking
//! interactions in Section 3).

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::PromiseError;

/// Destination for a reply value.
pub enum ReplyTo<R> {
    /// The sender does not care about the reply (one-way `tell`).
    Ignore,
    /// Invoke this callback with the reply, on the worker thread that
    /// produced it. Callbacks must be cheap and non-blocking.
    Callback(Box<dyn FnOnce(R) + Send>),
    /// Resolve a [`Promise`]. A dedicated variant (rather than a callback
    /// closing over the sender) so the runtime can *abort* the promise with
    /// a typed error — e.g. [`PromiseError::SiloLost`] when the hosting
    /// silo crashes with the request still queued.
    Promise(Sender<Result<R, PromiseError>>),
}

impl<R> ReplyTo<R> {
    /// Delivers the reply, consuming the sink.
    pub fn deliver(self, value: R) {
        match self {
            ReplyTo::Ignore => {}
            ReplyTo::Callback(f) => {
                // The callback continues the *requesting* actor's logic on
                // this (replier's) thread; don't attribute its dispatches
                // to the replier's declared call edges.
                let _not_a_turn = crate::topology::TurnGuard::suspend();
                f(value)
            }
            ReplyTo::Promise(tx) => {
                let _ = tx.send(Ok(value));
            }
        }
    }

    /// Resolves the sink with an error instead of a value. Promise waiters
    /// observe the error; callbacks (collector slots, continuations) cannot
    /// carry an error value, so they are dropped — their collector then
    /// resolves as [`PromiseError::Lost`] once all slots are gone.
    pub fn abort(self, err: PromiseError) {
        match self {
            ReplyTo::Ignore => {}
            ReplyTo::Callback(f) => drop(f),
            ReplyTo::Promise(tx) => {
                let _ = tx.send(Err(err));
            }
        }
    }

    /// True when a reply is actually wanted; lets handlers skip building
    /// expensive reply values for one-way messages.
    pub fn is_wanted(&self) -> bool {
        !matches!(self, ReplyTo::Ignore)
    }
}

impl<R: Send + 'static> ReplyTo<R> {
    /// Creates a promise/reply pair. The promise resolves when the reply
    /// sink is delivered, and fails with [`PromiseError::Lost`] if the sink
    /// is dropped undelivered (e.g. the target actor panicked), or with the
    /// given error if the runtime aborts it via [`ReplyTo::abort`].
    pub fn promise() -> (ReplyTo<R>, Promise<R>) {
        let (tx, rx) = bounded(1);
        (ReplyTo::Promise(tx), Promise { rx })
    }
}

/// A value that will arrive later, produced by an actor turn.
///
/// Only external clients should block on promises. Actors must use
/// [`Collector`] or continuation messages instead; blocking a worker thread
/// inside an actor turn can starve the scheduler.
#[derive(Debug)]
pub struct Promise<T> {
    rx: Receiver<Result<T, PromiseError>>,
}

impl<T> Promise<T> {
    /// Blocks until the reply arrives.
    pub fn wait(self) -> Result<T, PromiseError> {
        self.rx.recv().map_err(|_| PromiseError::Lost)?
    }

    /// Blocks up to `timeout` for the reply.
    pub fn wait_for(self, timeout: Duration) -> Result<T, PromiseError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => PromiseError::Timeout,
            RecvTimeoutError::Disconnected => PromiseError::Lost,
        })?
    }

    /// Non-blocking poll. An aborted promise reads as `None` here; use
    /// [`Promise::wait`] to observe the error.
    pub fn try_take(&self) -> Option<T> {
        self.rx.try_recv().ok().and_then(Result::ok)
    }
}

/// Creates a promise resolved immediately with `value`; useful in tests and
/// for code paths that sometimes answer locally.
pub fn resolved<T: Send + 'static>(value: T) -> Promise<T> {
    let (sink, promise) = ReplyTo::promise();
    sink.deliver(value);
    promise
}

struct CollectorInner<T, F: FnOnce(Vec<T>)> {
    items: Vec<T>,
    expected: usize,
    on_complete: Option<F>,
}

/// Deadlock-free fan-in for scatter/gather queries.
///
/// Create a collector expecting `n` replies with a completion closure, hand
/// each target a [`ReplyTo`] obtained from [`Collector::slot`], and the
/// closure runs (exactly once, on whichever worker thread delivers the
/// final reply) once all `n` replies have arrived.
///
/// The canonical use, from the SHM platform's live-data query: an
/// `Organization` actor receives `GetLiveData` with a reply sink, creates a
/// collector over its channels whose completion closure forwards the
/// aggregate into the original sink, and fans out `GetLatest` to every
/// channel actor with collector slots as reply sinks. No actor ever blocks.
pub struct Collector<T, F: FnOnce(Vec<T>)> {
    inner: Arc<Mutex<CollectorInner<T, F>>>,
}

impl<T, F: FnOnce(Vec<T>)> Clone for Collector<T, F> {
    fn clone(&self) -> Self {
        Collector {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static, F: FnOnce(Vec<T>) + Send + 'static> Collector<T, F> {
    /// Creates a collector expecting `expected` replies.
    ///
    /// If `expected` is zero the completion closure runs immediately with an
    /// empty vector (an organization with no sensors still answers live-data
    /// queries).
    pub fn new(expected: usize, on_complete: F) -> Self {
        if expected == 0 {
            on_complete(Vec::new());
            return Collector {
                inner: Arc::new(Mutex::new(CollectorInner {
                    items: Vec::new(),
                    expected: 0,
                    on_complete: None,
                })),
            };
        }
        Collector {
            inner: Arc::new(Mutex::new(CollectorInner {
                items: Vec::with_capacity(expected),
                expected,
                on_complete: Some(on_complete),
            })),
        }
    }

    /// Produces a reply sink feeding this collector.
    pub fn slot(&self) -> ReplyTo<T> {
        let inner = Arc::clone(&self.inner);
        ReplyTo::Callback(Box::new(move |value| {
            let complete = {
                let mut guard = inner.lock();
                guard.items.push(value);
                if guard.items.len() >= guard.expected {
                    guard
                        .on_complete
                        .take()
                        .map(|f| (f, std::mem::take(&mut guard.items)))
                } else {
                    None
                }
            };
            if let Some((f, items)) = complete {
                f(items);
            }
        }))
    }

    /// Feeds a value directly (for mixed local/remote gathers).
    pub fn push(&self, value: T) {
        self.slot().deliver(value);
    }
}

/// Convenience: a collector that resolves a [`Promise`] with all replies.
#[allow(clippy::type_complexity)]
pub fn gather<T: Send + 'static>(
    expected: usize,
) -> (
    Collector<T, impl FnOnce(Vec<T>) + Send + 'static>,
    Promise<Vec<T>>,
) {
    let (tx, rx) = bounded(1);
    let collector = Collector::new(expected, move |items: Vec<T>| {
        let _ = tx.send(Ok(items));
    });
    (collector, Promise { rx })
}

#[allow(dead_code)]
pub(crate) fn promise_from_channel<T>(rx: Receiver<Result<T, PromiseError>>) -> Promise<T> {
    Promise { rx }
}

#[allow(dead_code)]
pub(crate) fn channel_pair<T>() -> (Sender<Result<T, PromiseError>>, Promise<T>) {
    let (tx, rx) = bounded(1);
    (tx, Promise { rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promise_resolves() {
        let (sink, promise) = ReplyTo::<u32>::promise();
        sink.deliver(7);
        assert_eq!(promise.wait(), Ok(7));
    }

    #[test]
    fn dropped_sink_is_lost() {
        let (sink, promise) = ReplyTo::<u32>::promise();
        drop(sink);
        assert_eq!(promise.wait(), Err(PromiseError::Lost));
    }

    #[test]
    fn aborted_sink_reports_typed_error() {
        let (sink, promise) = ReplyTo::<u32>::promise();
        sink.abort(PromiseError::SiloLost);
        assert_eq!(promise.wait(), Err(PromiseError::SiloLost));
        // try_take on an aborted promise reads as None.
        let (sink, promise) = ReplyTo::<u32>::promise();
        sink.abort(PromiseError::SiloLost);
        assert!(promise.try_take().is_none());
    }

    #[test]
    fn wait_for_times_out() {
        let (_sink, promise) = ReplyTo::<u32>::promise();
        assert_eq!(
            promise.wait_for(Duration::from_millis(10)),
            Err(PromiseError::Timeout)
        );
    }

    #[test]
    fn ignore_discards() {
        ReplyTo::<String>::Ignore.deliver("dropped".into());
    }

    #[test]
    fn collector_completes_on_last_reply() {
        let (collector, promise) = gather::<u32>(3);
        collector.slot().deliver(1);
        collector.slot().deliver(2);
        assert!(promise.try_take().is_none());
        collector.slot().deliver(3);
        let mut got = promise.wait().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_collector_completes_immediately() {
        let (_collector, promise) = gather::<u32>(0);
        assert_eq!(promise.wait().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn collector_from_many_threads() {
        let n = 64;
        let (collector, promise) = gather::<usize>(n);
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let slot = collector.slot();
                std::thread::spawn(move || slot.deliver(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = promise.wait().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn resolved_promise() {
        assert_eq!(resolved(42).wait(), Ok(42));
    }
}
