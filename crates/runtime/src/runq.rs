//! The silo scheduler's run-queue fabric, extracted from `silo.rs` so the
//! exact production protocol (deques + injector + park/unpark) can be
//! driven by the model checker over a toy task type (`modelcheck`'s
//! scheduler model instantiates [`RunQueues<usize>`]) while the silo
//! instantiates it over `Arc<Activation>`.
//!
//! Under the `model` feature the thread handles used for park/unpark come
//! from `modelcheck::thread`, so the lost-wakeup-free parking protocol is
//! explored schedule-by-schedule; without it they are plain `std::thread`.

use std::sync::OnceLock;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

#[cfg(feature = "model")]
use modelcheck::atomic::AtomicUsize;
#[cfg(feature = "model")]
use modelcheck::thread as mthread;
#[cfg(not(feature = "model"))]
use std::sync::atomic::AtomicUsize;
#[cfg(not(feature = "model"))]
use std::thread as mthread;

use std::sync::atomic::Ordering;

/// How often (in scan rounds) a worker checks the injector before its own
/// deque. Prime, so the pattern does not resonate with workload periods
/// (the same trick tokio's scheduler uses).
pub const INJECTOR_FIRST_INTERVAL: u64 = 61;

/// Which queue satisfied a [`RunQueues::find_task`] scan (metrics label).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskSource {
    /// The worker's own LIFO deque.
    Local,
    /// The shared FIFO injector.
    Injector,
    /// A sibling worker's deque.
    Steal,
}

/// Parked-worker registry of one silo: who is parked, and how to wake them.
///
/// The parking protocol closes the lost-wakeup race without a condvar:
///
/// 1. A worker that found no work **registers** itself here
///    ([`IdleSet::prepare_park`], which publishes the incremented parked
///    count), **re-checks** every queue, and only then parks. Queue pushes
///    and the parked count are ordered by the queue mutexes, so if a
///    producer's push was missed by the re-check, that producer's
///    subsequent count read must observe the registration and wake.
/// 2. A producer pushes work first, then calls [`IdleSet::wake_one`],
///    which is a single relaxed load when nobody is parked.
/// 3. `unpark` tokens are sticky, so an unpark delivered between re-check
///    and `park()` is not lost; spurious `park` returns make the worker
///    re-scan, which is always safe.
pub struct IdleSet {
    /// Worker slots currently parked (LIFO wake order: the most recently
    /// parked worker has the warmest cache).
    parked: Mutex<Vec<usize>>,
    /// Cached `parked.len()`, readable without the lock on the push path.
    count: AtomicUsize,
    /// Thread handles, registered once by each worker at startup.
    threads: Vec<OnceLock<mthread::Thread>>,
}

impl IdleSet {
    /// Registry for `workers` worker slots.
    pub fn new(workers: usize) -> Self {
        IdleSet {
            parked: Mutex::new(Vec::with_capacity(workers)),
            count: AtomicUsize::new(0),
            threads: (0..workers).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Called once per worker thread before its first scan.
    pub fn register_thread(&self, worker: usize) {
        let _ = self.threads[worker].set(mthread::current());
    }

    /// Registers `worker` as parked. The caller must re-check all work
    /// sources afterwards and call [`IdleSet::cancel_park`] after waking
    /// (or instead of parking).
    pub fn prepare_park(&self, worker: usize) {
        let mut parked = self.parked.lock();
        parked.push(worker);
        self.count.store(parked.len(), Ordering::SeqCst);
    }

    /// Removes `worker` from the parked set if a waker has not already.
    pub fn cancel_park(&self, worker: usize) {
        let mut parked = self.parked.lock();
        if let Some(pos) = parked.iter().position(|&w| w == worker) {
            parked.swap_remove(pos);
            self.count.store(parked.len(), Ordering::SeqCst);
        }
    }

    /// Parks the calling worker thread (sticky-token semantics).
    pub fn park_current(&self) {
        mthread::park();
    }

    /// Wakes one parked worker, if any. Cheap when none are parked.
    pub fn wake_one(&self) {
        if self.count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let woken = {
            let mut parked = self.parked.lock();
            let woken = parked.pop();
            self.count.store(parked.len(), Ordering::SeqCst);
            woken
        };
        if let Some(w) = woken {
            if let Some(t) = self.threads[w].get() {
                t.unpark();
            }
        }
    }

    /// Wakes every worker thread (shutdown). Ignores the parked set so a
    /// worker between re-check and `park()` still gets its sticky token.
    pub fn wake_all(&self) {
        for slot in &self.threads {
            if let Some(t) = slot.get() {
                t.unpark();
            }
        }
    }

    /// Number of currently parked workers (metrics gauge).
    pub fn parked_count(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }
}

/// Work-stealing run queues of one silo: per-worker LIFO deques plus one
/// shared FIFO injector.
pub struct RunQueues<T> {
    injector: Injector<T>,
    locals: Vec<Worker<T>>,
    stealers: Vec<Stealer<T>>,
}

impl<T> RunQueues<T> {
    /// Queues for `workers` worker slots.
    pub fn new(workers: usize) -> Self {
        let locals: Vec<Worker<T>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        RunQueues {
            injector: Injector::new(),
            locals,
            stealers,
        }
    }

    /// Pushes onto `worker`'s own LIFO deque, returning its resulting
    /// length (callers wake a sibling when it exceeds one).
    pub fn push_local(&self, worker: usize, task: T) -> usize {
        let local = &self.locals[worker];
        local.push(task);
        local.len()
    }

    /// Pushes onto the shared FIFO injector.
    pub fn push_injector(&self, task: T) {
        self.injector.push(task);
    }

    /// Injector backlog length.
    pub fn injector_len(&self) -> usize {
        self.injector.len()
    }

    /// Total queued tasks (diagnostics only).
    pub fn queued_len(&self) -> usize {
        self.injector.len() + self.locals.iter().map(|w| w.len()).sum::<usize>()
    }

    /// True when any queue holds runnable work for `worker`.
    pub fn has_work(&self, worker: usize) -> bool {
        !self.locals[worker].is_empty()
            || !self.injector.is_empty()
            || self
                .stealers
                .iter()
                .enumerate()
                .any(|(i, s)| i != worker && !s.is_empty())
    }

    /// Empties every queue, returning the tasks (crash-path drain; each
    /// popped task is owned exclusively by the caller).
    pub fn drain_all(&self) -> Vec<T> {
        let mut out = Vec::new();
        loop {
            match self.injector.steal() {
                Steal::Success(task) => out.push(task),
                Steal::Empty => break,
                Steal::Retry => mthread::yield_now(),
            }
        }
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(task) => out.push(task),
                    Steal::Empty => break,
                    Steal::Retry => mthread::yield_now(),
                }
            }
        }
        out
    }

    /// One scan for runnable work: own deque (cache-hot LIFO pop) →
    /// injector (steal-half batch) → siblings' deques (steal-half,
    /// rotating start). `injector_first` periodically prefers injected
    /// work over the local deque (anti-starvation, see module docs).
    pub fn find_task(&self, worker: usize, injector_first: bool) -> Option<(T, TaskSource)> {
        let local = &self.locals[worker];
        if !injector_first {
            if let Some(task) = local.pop() {
                return Some((task, TaskSource::Local));
            }
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(task) => return Some((task, TaskSource::Injector)),
                Steal::Empty => break,
                Steal::Retry => mthread::yield_now(),
            }
        }
        if injector_first {
            if let Some(task) = local.pop() {
                return Some((task, TaskSource::Local));
            }
        }
        // Steal from siblings, starting after our own slot so victims
        // rotate instead of every thief hammering worker 0.
        let n = self.stealers.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            loop {
                match self.stealers[victim].steal_batch_and_pop(local) {
                    Steal::Success(task) => return Some((task, TaskSource::Steal)),
                    Steal::Empty => break,
                    Steal::Retry => mthread::yield_now(),
                }
            }
        }
        None
    }
}
